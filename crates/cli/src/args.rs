//! A small dependency-free argument parser.
//!
//! Supports `--key value`, `--flag`, and positional arguments. No external
//! crates are available offline, so this is hand-rolled and fully tested.

use std::collections::HashMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Error produced while parsing or validating arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// `known_flags` lists the valueless options; everything else starting
    /// with `--` consumes the next token as its value.
    ///
    /// # Errors
    ///
    /// Returns an error for an option missing its value or a repeated
    /// option.
    pub fn parse<I, S>(raw: I, known_flags: &[&str]) -> Result<Args, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = raw.into_iter().map(Into::into).peekable();
        while let Some(token) = iter.next() {
            if let Some(name) = token.strip_prefix("--") {
                if known_flags.contains(&name) {
                    if !out.flags.iter().any(|f| f == name) {
                        out.flags.push(name.to_owned());
                    }
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                if out.options.insert(name.to_owned(), value).is_some() {
                    return Err(ArgError(format!("--{name} given more than once")));
                }
            } else {
                out.positional.push(token);
            }
        }
        Ok(out)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of `--name`, if given.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// The value of `--name` or a default.
    pub fn opt_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.opt(name).unwrap_or(default)
    }

    /// `true` if `--name` was given as a flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--name` as a value of type `T`.
    ///
    /// # Errors
    ///
    /// Returns an error if present but unparsable.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.opt(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError(format!("--{name}: cannot parse {raw:?}"))),
        }
    }

    /// Exactly one positional argument, or an error naming it.
    ///
    /// # Errors
    ///
    /// Returns an error if the count differs.
    pub fn single_positional(&self, what: &str) -> Result<&str, ArgError> {
        match self.positional.as_slice() {
            [one] => Ok(one),
            [] => Err(ArgError(format!("missing {what}"))),
            _ => Err(ArgError(format!("expected exactly one {what}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().copied(), &["verbose", "netram"])
    }

    #[test]
    fn mixed_arguments() {
        let a = parse(&[
            "trace.vrt",
            "--seed",
            "42",
            "--verbose",
            "--policy",
            "vrecon",
        ])
        .unwrap();
        assert_eq!(a.positional(), &["trace.vrt"]);
        assert_eq!(a.opt("seed"), Some("42"));
        assert_eq!(a.opt("policy"), Some("vrecon"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("netram"));
        assert_eq!(a.opt_parse::<u64>("seed").unwrap(), Some(42));
        assert_eq!(a.opt_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn missing_value_is_an_error() {
        let err = parse(&["--seed"]).unwrap_err();
        assert!(err.0.contains("requires a value"));
    }

    #[test]
    fn duplicate_option_is_an_error() {
        let err = parse(&["--seed", "1", "--seed", "2"]).unwrap_err();
        assert!(err.0.contains("more than once"));
    }

    #[test]
    fn bad_parse_is_an_error() {
        let a = parse(&["--seed", "not-a-number"]).unwrap();
        assert!(a.opt_parse::<u64>("seed").is_err());
    }

    #[test]
    fn single_positional_validation() {
        assert!(parse(&[]).unwrap().single_positional("trace").is_err());
        assert!(parse(&["a", "b"])
            .unwrap()
            .single_positional("trace")
            .is_err());
        assert_eq!(
            parse(&["a"]).unwrap().single_positional("trace").unwrap(),
            "a"
        );
    }

    #[test]
    fn repeated_flag_is_idempotent() {
        let a = parse(&["--verbose", "--verbose"]).unwrap();
        assert!(a.flag("verbose"));
    }
}
