//! Fairness metrics over per-job slowdowns.
//!
//! Fairness is the paper's second design constraint: "the policy should be
//! beneficial to both large and other jobs" (§2.2), and the suspension
//! alternative is rejected precisely because it "will not be fair to the
//! large jobs" (§1). [`jain_index`] quantifies that: 1.0 means every job
//! suffered equally; `1/n` means one job absorbed all the slowdown.

/// Jain's fairness index over non-negative values:
/// `(Σx)² / (n · Σx²)`, in `(0, 1]`.
///
/// Returns 1.0 for an empty slice (vacuously fair).
///
/// # Panics
///
/// Panics if any value is negative or NaN.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for v in values {
        assert!(
            v.is_finite() && *v >= 0.0,
            "fairness over invalid value {v}"
        );
        sum += v;
        sum_sq += v * v;
    }
    // vr-lint::allow(float-eq, reason = "exact zero-guard before division: a zero sum of squares means every share is exactly zero")
    if sum_sq == 0.0 {
        return 1.0; // all zeros: equally (non-)served
    }
    (sum * sum) / (values.len() as f64 * sum_sq)
}

/// The worst-to-mean slowdown ratio: how much worse the most-punished job
/// fared than the average one. 1.0 is perfectly fair; the suspension
/// strawman drives this up for large jobs.
///
/// Returns 1.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is negative or NaN.
pub fn worst_to_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for v in values {
        assert!(
            v.is_finite() && *v >= 0.0,
            "fairness over invalid value {v}"
        );
        sum += v;
        max = max.max(*v);
    }
    let mean = sum / values.len() as f64;
    // vr-lint::allow(float-eq, reason = "exact zero-guard before dividing by the mean")
    if mean == 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_perfectly_fair() {
        assert!((jain_index(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
        assert!((worst_to_mean(&[3.0, 3.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_job_absorbing_everything_is_maximally_unfair() {
        let values = [0.0, 0.0, 0.0, 12.0];
        assert!((jain_index(&values) - 0.25).abs() < 1e-12); // 1/n
        assert!((worst_to_mean(&values) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((jain_index(&a) - jain_index(&b)).abs() < 1e-12);
        assert!((worst_to_mean(&a) - worst_to_mean(&b)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_edge_cases() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(worst_to_mean(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(worst_to_mean(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn negative_values_panic() {
        jain_index(&[1.0, -2.0]);
    }
}
