//! The sweep orchestrator: cache → pool → telemetry → BENCH report.
//!
//! [`Runner::run`] executes a [`SweepPlan`] on the work-stealing pool,
//! consulting the content-addressed [`ResultCache`] per scenario and
//! streaming [`SweepEvent`]s to a renderer thread. Results come back in
//! **plan order** whatever the completion order, so any figure table
//! printed from a [`SweepOutcome`] is bit-identical across `--jobs`
//! settings — determinism under parallelism is the contract, not an
//! accident.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use vr_simcore::jsonio::Json;
use vrecon::RunReport;

use crate::cache::{CacheStats, ResultCache};
use crate::pool::{effective_workers, run_indexed};
use crate::scenario::{Scenario, SweepPlan};
use crate::telemetry::{drain_progress, render_progress, SweepEvent};

/// Knobs for one sweep execution.
#[derive(Debug)]
pub struct SweepOptions {
    /// Worker threads; `0` selects [`std::thread::available_parallelism`].
    pub jobs: usize,
    /// Result cache (use [`ResultCache::disabled`] for `--no-cache`).
    pub cache: ResultCache,
    /// Render live progress lines to stderr.
    pub progress: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 0,
            cache: ResultCache::at(crate::cache::default_cache_dir()),
            progress: false,
        }
    }
}

/// One finished scenario inside a [`SweepOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario's display label.
    pub label: String,
    /// Its content hash (the cache key).
    pub hash: String,
    /// The simulation report (from cache or a fresh run — identical either
    /// way, which is the whole point of content addressing).
    pub report: RunReport,
    /// Wall time this worker spent on the scenario.
    pub wall: Duration,
    /// Whether the report came from the cache.
    pub cache_hit: bool,
}

impl ScenarioResult {
    /// Simulator events replayed per wall-clock second (`0.0` for cache
    /// hits, whose wall time measures only the decode).
    pub fn events_per_sec(&self) -> f64 {
        if self.cache_hit || self.wall.is_zero() {
            0.0
        } else {
            self.report.events.entries().len() as f64 / self.wall.as_secs_f64()
        }
    }
}

/// Everything a sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One slot per plan entry, in plan order; `None` iff that scenario's
    /// worker panicked.
    pub results: Vec<Option<ScenarioResult>>,
    /// `(plan index, panic message)` for failed scenarios.
    pub failures: Vec<(usize, String)>,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Sum of per-scenario wall times — what a sequential run would have
    /// cost. `busy / wall` is the measured speedup.
    pub busy: Duration,
    /// Effective worker count used.
    pub jobs: usize,
    /// Cache hit/miss counters for this sweep.
    pub cache: CacheStats,
    /// One-shot warnings surfaced via telemetry (cache write failures,
    /// export errors), in arrival order.
    pub notes: Vec<String>,
}

impl SweepOutcome {
    /// Measured speedup versus a sequential execution of the same work.
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }

    /// The reports in plan order, panicking if any scenario failed.
    /// Convenience for bench binaries whose scenarios must all succeed.
    pub fn expect_reports(self) -> Vec<RunReport> {
        if let Some((index, message)) = self.failures.first() {
            // vr-lint::allow(panic-in-lib, reason = "expect_reports is the documented panic-on-failure convenience for bench binaries")
            panic!("scenario {index} failed: {message}");
        }
        self.results
            .into_iter()
            // vr-lint::allow(panic-in-lib, reason = "guarded by the failures check above: every scenario produced a report")
            .map(|slot| slot.expect("no failures recorded").report)
            .collect()
    }
}

/// Executes sweep plans. See the [module docs](self) for the data flow.
#[derive(Debug, Default)]
pub struct Runner {
    options: SweepOptions,
}

impl Runner {
    /// A runner with the given options.
    pub fn new(options: SweepOptions) -> Runner {
        Runner { options }
    }

    /// A quiet runner with `jobs` workers and the cache disabled — the
    /// configuration unit tests and in-process callers usually want.
    pub fn uncached(jobs: usize) -> Runner {
        Runner::new(SweepOptions {
            jobs,
            cache: ResultCache::disabled(),
            progress: false,
        })
    }

    /// Runs every scenario in `plan`, returning results in plan order.
    pub fn run(&self, plan: &SweepPlan) -> SweepOutcome {
        let jobs = effective_workers(self.options.jobs, plan.len());
        let cache = &self.options.cache;
        let (tx, rx) = mpsc::channel::<SweepEvent>();
        let total = plan.len();
        let progress = self.options.progress;
        let renderer = std::thread::spawn(move || {
            if progress {
                // Hand the renderer the *unlocked* handle: it locks per
                // `writeln!`. Passing `stderr().lock()` here pinned the
                // global stderr lock for the whole sweep, so any worker
                // `eprintln!` (panic reports included) would deadlock
                // against a renderer that never yields the lock.
                render_progress(rx, total, std::io::stderr())
            } else {
                drain_progress(rx)
            }
        });

        let started = Instant::now();
        let pooled = run_indexed(&plan.scenarios, jobs, |index, scenario: &Scenario| {
            let _ = tx.send(SweepEvent::Started {
                index,
                label: scenario.label.clone(),
            });
            let t0 = Instant::now();
            let hash = scenario.content_hash();
            let (report, cache_hit) = match cache.lookup(&hash) {
                Some(report) => (report, true),
                None => {
                    let report = scenario.run();
                    if let Err((path, error)) = cache.store(&hash, &report) {
                        let _ = tx.send(SweepEvent::Note(format!(
                            "result cache write failed at {}: {error}",
                            path.display()
                        )));
                    }
                    (report, false)
                }
            };
            let result = ScenarioResult {
                label: scenario.label.clone(),
                hash,
                report,
                wall: t0.elapsed(),
                cache_hit,
            };
            let _ = tx.send(SweepEvent::Finished {
                index,
                label: result.label.clone(),
                wall: result.wall,
                cache_hit,
                events_per_sec: result.events_per_sec(),
            });
            result
        });
        let wall = started.elapsed();

        for (index, message) in &pooled.panics {
            let _ = tx.send(SweepEvent::Failed {
                index: *index,
                label: plan.scenarios[*index].label.clone(),
                message: message.clone(),
            });
        }
        drop(tx);
        // vr-lint::allow(panic-in-lib, reason = "the telemetry renderer only panics if stderr writes fail; propagating the panic is the only sane handling")
        let notes = renderer.join().expect("telemetry renderer panicked");

        let busy = pooled
            .results
            .iter()
            .flatten()
            .map(|r| r.wall)
            .sum::<Duration>();
        SweepOutcome {
            results: pooled.results,
            failures: pooled.panics,
            wall,
            busy,
            jobs,
            cache: cache.stats(),
            notes,
        }
    }
}

/// Schema version of the `BENCH_sweep.json` document.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Renders a machine-readable benchmark document for a finished sweep:
/// matrix shape, wall/busy time, measured speedup versus sequential, cache
/// counters, and per-scenario throughput.
pub fn bench_json(outcome: &SweepOutcome) -> Json {
    let throughput = vr_metrics::ThroughputSummary::of_runs(
        outcome
            .results
            .iter()
            .flatten()
            .filter(|r| !r.cache_hit)
            .map(|r| (r.report.events.entries().len() as u64, r.wall.as_secs_f64())),
    );
    let scenarios = outcome
        .results
        .iter()
        .map(|slot| match slot {
            Some(r) => Json::obj([
                ("label", Json::str(&r.label)),
                ("hash", Json::str(&r.hash)),
                ("wall_secs", Json::f64(r.wall.as_secs_f64())),
                ("cache_hit", Json::Bool(r.cache_hit)),
                (
                    "sim_events",
                    Json::U64(r.report.events.entries().len() as u64),
                ),
                ("events_per_sec", Json::f64(r.events_per_sec())),
                ("avg_slowdown", Json::f64(r.report.avg_slowdown())),
            ]),
            None => Json::Null,
        })
        .collect();
    Json::obj([
        ("schema", Json::U64(BENCH_SCHEMA_VERSION)),
        (
            "matrix",
            Json::obj([("scenarios", Json::U64(outcome.results.len() as u64))]),
        ),
        ("jobs", Json::U64(outcome.jobs as u64)),
        (
            "available_parallelism",
            Json::U64(std::thread::available_parallelism().map_or(1, usize::from) as u64),
        ),
        ("wall_secs", Json::f64(outcome.wall.as_secs_f64())),
        ("sequential_secs", Json::f64(outcome.busy.as_secs_f64())),
        ("speedup", Json::f64(outcome.speedup())),
        (
            "cache",
            Json::obj([
                ("hits", Json::U64(outcome.cache.hits)),
                ("misses", Json::U64(outcome.cache.misses)),
                ("corrupt_entries", Json::U64(outcome.cache.corrupt_entries)),
            ]),
        ),
        (
            "throughput",
            Json::obj([
                ("simulated_runs", Json::U64(throughput.runs as u64)),
                ("total_events", Json::U64(throughput.total_events)),
                (
                    "aggregate_events_per_sec",
                    Json::f64(throughput.aggregate_events_per_sec),
                ),
                ("per_run_mean", Json::f64(throughput.per_run.mean)),
                ("per_run_min", Json::f64(throughput.per_run.min)),
                ("per_run_max", Json::f64(throughput.per_run.max)),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
        (
            "failures",
            Json::Arr(
                outcome
                    .failures
                    .iter()
                    .map(|(index, message)| {
                        Json::Arr(vec![Json::U64(*index as u64), Json::str(message)])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Writes [`bench_json`] to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_bench_json(path: &std::path::Path, outcome: &SweepOutcome) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut text = bench_json(outcome).render();
    text.push('\n');
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vr_cluster::params::ClusterParams;
    use vr_cluster::units::Bytes;
    use vrecon::{PolicyKind, SimConfig};

    fn plan(n_scenarios: usize) -> SweepPlan {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(2);
        let trace = Arc::new(vr_workload::synth::blocking_scenario(2, Bytes::from_mb(64)));
        (0..n_scenarios)
            .map(|i| {
                Scenario::new(
                    SimConfig::new(cluster.clone(), PolicyKind::GLoadSharing)
                        .with_seed(10 + i as u64),
                    Arc::clone(&trace),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_returns_results_in_plan_order() {
        let plan = plan(5);
        let outcome = Runner::uncached(4).run(&plan);
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.results.len(), 5);
        for (i, slot) in outcome.results.iter().enumerate() {
            let r = slot.as_ref().unwrap();
            assert_eq!(r.report.seed, 10 + i as u64);
            assert!(!r.cache_hit);
        }
        // Disabled cache: every scenario was a miss.
        assert_eq!(
            outcome.cache,
            CacheStats {
                hits: 0,
                misses: 5,
                corrupt_entries: 0
            }
        );
        assert_eq!(outcome.jobs, 4);
    }

    #[test]
    fn bench_json_reports_shape_and_cache() {
        let plan = plan(2);
        let outcome = Runner::uncached(1).run(&plan);
        let doc = bench_json(&outcome);
        assert_eq!(doc.get("schema").unwrap().as_u64(), Some(1));
        assert_eq!(
            doc.get("matrix")
                .unwrap()
                .get("scenarios")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(doc.get("jobs").unwrap().as_u64(), Some(1));
        let rendered = doc.render();
        // The document round-trips through the parser.
        assert!(Json::parse(&rendered).is_ok());
    }
}
