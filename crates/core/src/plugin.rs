//! The policy plugin layer: a [`Policy`] trait, a typed parameter bag,
//! and a string-keyed registry.
//!
//! [`PolicyKind`](crate::policy::PolicyKind) names the scheduling
//! families; this module makes each of them a *plugin*: the engine holds
//! a `Box<dyn Policy>` and consults it for placement, capability flags,
//! the admission slot cap, and resize directives, so adding a family
//! means adding a registry entry — not editing the engine. The design
//! mirrors dslab's `Scheduler`/`SchedulerParams` pair: a policy is
//! constructed from its registry name plus a [`ParamBag`] of `key=value`
//! strings, validated up front (unknown keys are rejected).
//!
//! The seven classic policies delegate placement and capabilities to
//! their `PolicyKind`, which pins the refactor: a registry-built classic
//! policy is byte-identical to the historical enum dispatch (locked by
//! golden and metamorphic tests). The two parameterized families are
//! [`PolicyKind::Malleable`] (`max_step`) and [`PolicyKind::Fractional`]
//! (`oversub`).

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use vr_cluster::job::{JobId, RunningJob};
use vr_cluster::loadinfo::LoadIndex;
use vr_cluster::node::{NodeId, Workstation};
use vr_simcore::rng::SimRng;

use crate::policy::{Placement, PolicyKind};

/// A typed `key=value` parameter bag for policy construction.
///
/// Keys and values are stored as strings in a deterministic order
/// (`BTreeMap`); typed access happens at policy build time via
/// [`ParamBag::get`], so a malformed value is a build error, not a silent
/// default. The wire grammar is `key=value[,key=value...]` — the CLI's
/// `--policy name:k=v,...` suffix and the fuzzer's `policy-params` line
/// both parse with [`ParamBag::parse`] and re-render byte-identically
/// with [`ParamBag::render`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamBag {
    entries: BTreeMap<String, String>,
}

impl ParamBag {
    /// An empty bag.
    pub fn new() -> Self {
        ParamBag::default()
    }

    /// Parses the `key=value[,key=value...]` grammar. The empty string is
    /// the empty bag.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or duplicate entry.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut bag = ParamBag::new();
        for part in text.split(',') {
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("parameter `{part}` is not of the form key=value"))?;
            if key.is_empty() {
                return Err(format!("parameter `{part}` has an empty key"));
            }
            if bag.entries.insert(key.to_owned(), value.to_owned()).is_some() {
                return Err(format!("duplicate parameter key `{key}`"));
            }
        }
        Ok(bag)
    }

    /// Renders the canonical `key=value[,key=value...]` form (keys in
    /// sorted order); parsing it back yields an equal bag.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in &self.entries {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(key);
            out.push('=');
            out.push_str(value);
        }
        out
    }

    /// `true` if the bag holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets one parameter (builder-style).
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.entries.insert(key.to_owned(), value.to_string());
        self
    }

    /// The raw string value of `key`, if present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// The value of `key` parsed as `T`, if present.
    ///
    /// # Errors
    ///
    /// Returns a description when the value fails to parse.
    pub fn get<T: FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        match self.entries.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("parameter `{key}={raw}` is not a valid value")),
        }
    }

    /// The keys present in the bag, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Rejects any key outside `known` — policies call this first so a
    /// typo'd parameter fails construction instead of being ignored.
    ///
    /// # Errors
    ///
    /// Names the first unknown key and the accepted set.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for key in self.entries.keys() {
            if !known.contains(&key.as_str()) {
                return Err(if known.is_empty() {
                    format!("unknown parameter `{key}` (this policy takes no parameters)")
                } else {
                    format!(
                        "unknown parameter `{key}` (accepted: {})",
                        known.join(", ")
                    )
                });
            }
        }
        Ok(())
    }
}

/// A width change a policy wants applied to one resident malleable job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeDirective {
    /// Raise the job's slot width to `to`.
    Grow {
        /// The resident job to widen.
        job: JobId,
        /// Its new width (> current, ≤ its `max_width`).
        to: u32,
    },
    /// Lower the job's slot width to `to`.
    Shrink {
        /// The resident job to narrow.
        job: JobId,
        /// Its new width (< current, ≥ its `min_width`).
        to: u32,
    },
}

impl ResizeDirective {
    /// The job the directive concerns.
    pub fn job(self) -> JobId {
        match self {
            ResizeDirective::Grow { job, .. } | ResizeDirective::Shrink { job, .. } => job,
        }
    }

    /// The target width.
    pub fn to(self) -> u32 {
        match self {
            ResizeDirective::Grow { to, .. } | ResizeDirective::Shrink { to, .. } => to,
        }
    }
}

/// A scheduling policy plugin: placement plus the capability hooks the
/// engine consults.
///
/// Implementations must be deterministic — any randomness draws from the
/// `rng` handed to [`Policy::place`], and the resize hook sees only the
/// node and a recomputable pressure flag, so the independent oracle can
/// restate every decision bit-for-bit.
pub trait Policy: fmt::Debug {
    /// The policy family this plugin implements (reported in
    /// [`RunReport::policy`](crate::report::RunReport::policy)).
    fn kind(&self) -> PolicyKind;

    /// Decides where a newly submitted (or pending-retried) job goes.
    fn place(
        &self,
        job: &RunningJob,
        home: NodeId,
        index: &LoadIndex,
        rng: &mut SimRng,
    ) -> Placement;

    /// `true` if the policy performs fault-driven preemptive migration.
    fn migrates_on_overload(&self) -> bool {
        self.kind().migrates_on_overload()
    }

    /// `true` if the policy runs the adaptive virtual-reconfiguration
    /// routine on blocking.
    fn reconfigures(&self) -> bool {
        self.kind().reconfigures()
    }

    /// `true` if the policy suspends the most memory-intensive job on
    /// blocking (the §1 strawman).
    fn suspends_on_blocking(&self) -> bool {
        self.kind().suspends_on_blocking()
    }

    /// `true` if commit-aware placement applies to this policy (the
    /// load-index family; random/CPU-only baselines ignore it).
    fn commit_aware_placement(&self) -> bool {
        matches!(
            self.kind(),
            PolicyKind::GLoadSharing
                | PolicyKind::VReconfiguration
                | PolicyKind::SuspendLargest
                | PolicyKind::Malleable
                | PolicyKind::Fractional
        )
    }

    /// The admission slot cap for a workstation with `hardware_slots`
    /// job slots. The default is whole-slot reservation; the fractional
    /// family oversubscribes.
    fn slot_cap(&self, hardware_slots: u32) -> u32 {
        hardware_slots
    }

    /// `true` if the policy issues [`ResizeDirective`]s at load-exchange
    /// ticks (the malleable family).
    fn resizes(&self) -> bool {
        false
    }

    /// At most one width change for `node` at a load-exchange tick.
    /// `pressure` is `true` when the cluster pending queue is non-empty —
    /// a flag both the engine and the oracle can recompute exactly.
    fn resize(&self, node: &Workstation, pressure: bool) -> Option<ResizeDirective> {
        let _ = (node, pressure);
        None
    }
}

/// The seven pre-plugin policies: placement and capabilities delegate to
/// [`PolicyKind`], which is what makes registry-built reports
/// byte-identical to the historical enum dispatch.
#[derive(Debug, Clone, Copy)]
struct ClassicPolicy(PolicyKind);

impl Policy for ClassicPolicy {
    fn kind(&self) -> PolicyKind {
        self.0
    }

    fn place(
        &self,
        job: &RunningJob,
        home: NodeId,
        index: &LoadIndex,
        rng: &mut SimRng,
    ) -> Placement {
        self.0.place(job, home, index, rng)
    }
}

/// Tunables of the malleable family, parsed from its [`ParamBag`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MalleableParams {
    /// Maximum width change per job per load-exchange tick (default 1).
    pub max_step: u32,
}

impl MalleableParams {
    /// Parameter keys the malleable family accepts.
    pub const KNOWN_KEYS: &'static [&'static str] = &["max_step"];

    /// Parses and validates the malleable parameters.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, unparsable values, and `max_step = 0`.
    pub fn from_bag(bag: &ParamBag) -> Result<Self, String> {
        bag.reject_unknown(Self::KNOWN_KEYS)?;
        let max_step = bag.get::<u32>("max_step")?.unwrap_or(1);
        if max_step == 0 {
            return Err("max_step must be at least 1".into());
        }
        Ok(MalleableParams { max_step })
    }
}

/// The malleable scheduling family: G-Loadsharing placement plus width
/// resize directives.
#[derive(Debug, Clone, Copy)]
struct MalleablePolicy {
    params: MalleableParams,
}

impl MalleablePolicy {
    /// The widest resizable job on `node` that can shrink (width above
    /// its declared minimum); ties broken toward the smallest id.
    fn shrink_candidate<'a>(&self, node: &'a Workstation) -> Option<&'a RunningJob> {
        node.jobs()
            .iter()
            .filter(|j| j.spec.malleable.is_some_and(|m| j.width > m.min_width))
            .max_by_key(|j| (j.width, std::cmp::Reverse(j.spec.id)))
    }

    /// The narrowest resizable job on `node` that can grow (width below
    /// its declared maximum); ties broken toward the smallest id.
    fn grow_candidate<'a>(&self, node: &'a Workstation) -> Option<&'a RunningJob> {
        node.jobs()
            .iter()
            .filter(|j| j.spec.malleable.is_some_and(|m| j.width < m.max_width))
            .min_by_key(|j| (j.width, j.spec.id))
    }
}

impl Policy for MalleablePolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Malleable
    }

    fn place(
        &self,
        job: &RunningJob,
        home: NodeId,
        index: &LoadIndex,
        rng: &mut SimRng,
    ) -> Placement {
        PolicyKind::Malleable.place(job, home, index, rng)
    }

    fn resizes(&self) -> bool {
        true
    }

    fn resize(&self, node: &Workstation, pressure: bool) -> Option<ResizeDirective> {
        if !node.is_up() || node.is_reserved() {
            return None;
        }
        let free = node.slot_cap().saturating_sub(node.used_slots());
        if pressure && free == 0 {
            // Queue pressure and no free slot: narrow the widest
            // malleable job so a pending admission can land here.
            let job = self.shrink_candidate(node)?;
            let min = job.spec.malleable.map_or(1, |m| m.min_width);
            let to = job.width.saturating_sub(self.params.max_step).max(min);
            return Some(ResizeDirective::Shrink {
                job: job.spec.id,
                to,
            });
        }
        if !pressure && free > 0 {
            // Idle capacity and an empty queue: widen the narrowest
            // malleable job into the spare slots.
            let job = self.grow_candidate(node)?;
            let max = job.spec.malleable.map_or(job.width, |m| m.max_width);
            let to = (job.width + self.params.max_step.min(free)).min(max);
            return Some(ResizeDirective::Grow {
                job: job.spec.id,
                to,
            });
        }
        None
    }
}

/// Tunables of the fractional family, parsed from its [`ParamBag`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FractionalParams {
    /// Slot oversubscription factor: the admission cap is
    /// `floor(slots × oversub)` (default 2.0, must be ≥ 1).
    pub oversub: f64,
}

impl FractionalParams {
    /// Parameter keys the fractional family accepts.
    pub const KNOWN_KEYS: &'static [&'static str] = &["oversub"];

    /// Parses and validates the fractional parameters.
    ///
    /// # Errors
    ///
    /// Rejects unknown keys, unparsable values, and `oversub < 1`.
    pub fn from_bag(bag: &ParamBag) -> Result<Self, String> {
        bag.reject_unknown(Self::KNOWN_KEYS)?;
        let oversub = bag.get::<f64>("oversub")?.unwrap_or(2.0);
        if !oversub.is_finite() || oversub < 1.0 {
            return Err(format!("oversub must be a finite value >= 1, got {oversub}"));
        }
        Ok(FractionalParams { oversub })
    }

    /// The admission cap for a workstation with `hardware_slots` slots.
    pub fn slot_cap(&self, hardware_slots: u32) -> u32 {
        ((hardware_slots as f64 * self.oversub).floor() as u32).max(hardware_slots)
    }
}

/// The fractional resource scheduling family: G-Loadsharing placement
/// over an oversubscribed slot cap.
#[derive(Debug, Clone, Copy)]
struct FractionalPolicy {
    params: FractionalParams,
}

impl Policy for FractionalPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Fractional
    }

    fn place(
        &self,
        job: &RunningJob,
        home: NodeId,
        index: &LoadIndex,
        rng: &mut SimRng,
    ) -> Placement {
        PolicyKind::Fractional.place(job, home, index, rng)
    }

    fn slot_cap(&self, hardware_slots: u32) -> u32 {
        self.params.slot_cap(hardware_slots)
    }
}

/// One registry entry: the stable name, the family it builds, the
/// parameter keys it accepts, and the builder.
pub struct PolicyEntry {
    /// The stable registry name (kebab-case; the `--policy` key).
    pub name: &'static str,
    /// The policy family the entry builds.
    pub kind: PolicyKind,
    /// Parameter keys the builder accepts (empty = takes no parameters).
    pub known_keys: &'static [&'static str],
    build: fn(&ParamBag) -> Result<Box<dyn Policy>, String>,
}

/// The policy registry: every [`PolicyKind`] as an addressable entry.
/// Order matches [`PolicyKind::ALL`]. Classic builders are capture-free
/// closures (coerced to `fn` pointers) that reject any parameter.
pub fn registry() -> [PolicyEntry; 9] {
    [
        PolicyEntry {
            name: "no-loadsharing",
            kind: PolicyKind::NoLoadSharing,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::NoLoadSharing)))
            },
        },
        PolicyEntry {
            name: "random",
            kind: PolicyKind::Random,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::Random)))
            },
        },
        PolicyEntry {
            name: "cpu-only",
            kind: PolicyKind::CpuOnly,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::CpuOnly)))
            },
        },
        PolicyEntry {
            name: "weighted-cpu-mem",
            kind: PolicyKind::WeightedCpuMem,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::WeightedCpuMem)))
            },
        },
        PolicyEntry {
            name: "g-loadsharing",
            kind: PolicyKind::GLoadSharing,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::GLoadSharing)))
            },
        },
        PolicyEntry {
            name: "suspend-largest",
            kind: PolicyKind::SuspendLargest,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::SuspendLargest)))
            },
        },
        PolicyEntry {
            name: "v-reconfiguration",
            kind: PolicyKind::VReconfiguration,
            known_keys: &[],
            build: |bag| {
                bag.reject_unknown(&[])?;
                Ok(Box::new(ClassicPolicy(PolicyKind::VReconfiguration)))
            },
        },
        PolicyEntry {
            name: "malleable",
            kind: PolicyKind::Malleable,
            known_keys: MalleableParams::KNOWN_KEYS,
            build: |bag| {
                Ok(Box::new(MalleablePolicy {
                    params: MalleableParams::from_bag(bag)?,
                }))
            },
        },
        PolicyEntry {
            name: "fractional",
            kind: PolicyKind::Fractional,
            known_keys: FractionalParams::KNOWN_KEYS,
            build: |bag| {
                Ok(Box::new(FractionalPolicy {
                    params: FractionalParams::from_bag(bag)?,
                }))
            },
        },
    ]
}

/// The stable registry name of `kind`.
pub fn policy_name(kind: PolicyKind) -> &'static str {
    match kind {
        PolicyKind::NoLoadSharing => "no-loadsharing",
        PolicyKind::Random => "random",
        PolicyKind::CpuOnly => "cpu-only",
        PolicyKind::WeightedCpuMem => "weighted-cpu-mem",
        PolicyKind::GLoadSharing => "g-loadsharing",
        PolicyKind::SuspendLargest => "suspend-largest",
        PolicyKind::VReconfiguration => "v-reconfiguration",
        PolicyKind::Malleable => "malleable",
        PolicyKind::Fractional => "fractional",
    }
}

/// Builds the plugin for `kind` with `params`.
///
/// # Errors
///
/// Returns the builder's description of a bad parameter bag.
pub fn build_policy(kind: PolicyKind, params: &ParamBag) -> Result<Box<dyn Policy>, String> {
    let entries = registry();
    let entry = entries
        .iter()
        .find(|e| e.kind == kind)
        // vr-lint::allow(panic-in-lib, reason = "registry() enumerates every PolicyKind variant by construction, pinned by the registry_covers_every_kind test")
        .expect("every PolicyKind has a registry entry");
    (entry.build)(params)
        .map_err(|e| format!("policy `{}`: {e}", entry.name))
}

/// Builds a policy by registry name with `params`.
///
/// # Errors
///
/// Returns an error for an unknown name or a bad parameter bag.
pub fn build_named(name: &str, params: &ParamBag) -> Result<Box<dyn Policy>, String> {
    let entries = registry();
    match entries.iter().find(|e| e.name == name) {
        Some(entry) => (entry.build)(params).map_err(|e| format!("policy `{name}`: {e}")),
        None => Err(format!(
            "unknown policy `{name}` (known: {})",
            entries
                .iter()
                .map(|e| e.name)
                .collect::<Vec<_>>()
                .join(", ")
        )),
    }
}

/// Looks up the [`PolicyKind`] a registry name builds.
pub fn kind_of(name: &str) -> Option<PolicyKind> {
    registry().iter().find(|e| e.name == name).map(|e| e.kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_kind() {
        let entries = registry();
        assert_eq!(entries.len(), PolicyKind::ALL.len());
        for kind in PolicyKind::ALL {
            let entry = entries.iter().find(|e| e.kind == kind).unwrap();
            assert_eq!(kind_of(entry.name), Some(kind));
            assert_eq!(policy_name(kind), entry.name);
            let built = build_policy(kind, &ParamBag::new()).unwrap();
            assert_eq!(built.kind(), kind);
            let named = build_named(entry.name, &ParamBag::new()).unwrap();
            assert_eq!(named.kind(), kind);
        }
    }

    #[test]
    fn param_bag_parse_render_round_trip() {
        for text in ["", "a=1", "a=1,b=two", "oversub=1.5,max_step=2"] {
            let bag = ParamBag::parse(text).unwrap();
            let rendered = bag.render();
            assert_eq!(ParamBag::parse(&rendered).unwrap(), bag, "{text}");
            // Canonical render is sorted, so re-rendering is a fixpoint.
            assert_eq!(ParamBag::parse(&rendered).unwrap().render(), rendered);
        }
        let bag = ParamBag::parse("b=2,a=1").unwrap();
        assert_eq!(bag.render(), "a=1,b=2");
    }

    #[test]
    fn param_bag_rejects_malformed_and_duplicate() {
        assert!(ParamBag::parse("noequals").is_err());
        assert!(ParamBag::parse("=v").is_err());
        assert!(ParamBag::parse("a=1,a=2").is_err());
        // Empty value is allowed (key present, value empty string).
        let bag = ParamBag::parse("a=").unwrap();
        assert_eq!(bag.get_str("a"), Some(""));
    }

    #[test]
    fn unknown_keys_are_rejected_per_policy() {
        let bag = ParamBag::new().with("bogus", 1);
        for kind in PolicyKind::ALL {
            let err = build_policy(kind, &bag).unwrap_err();
            assert!(err.contains("unknown parameter `bogus`"), "{kind:?}: {err}");
        }
        // Known keys of one family are unknown to another.
        let oversub = ParamBag::new().with("oversub", 1.5);
        assert!(build_policy(PolicyKind::Fractional, &oversub).is_ok());
        assert!(build_policy(PolicyKind::Malleable, &oversub).is_err());
        assert!(build_policy(PolicyKind::GLoadSharing, &oversub).is_err());
    }

    #[test]
    fn parameter_values_are_validated() {
        assert!(build_policy(
            PolicyKind::Fractional,
            &ParamBag::new().with("oversub", 0.5)
        )
        .is_err());
        assert!(build_policy(
            PolicyKind::Fractional,
            &ParamBag::new().with("oversub", "NaN")
        )
        .is_err());
        assert!(build_policy(
            PolicyKind::Malleable,
            &ParamBag::new().with("max_step", 0)
        )
        .is_err());
        assert!(build_policy(
            PolicyKind::Malleable,
            &ParamBag::new().with("max_step", "many")
        )
        .is_err());
    }

    #[test]
    fn fractional_slot_cap_oversubscribes() {
        let unit = FractionalParams { oversub: 1.0 };
        assert_eq!(unit.slot_cap(4), 4);
        let double = FractionalParams { oversub: 2.0 };
        assert_eq!(double.slot_cap(4), 8);
        let frac = FractionalParams { oversub: 1.5 };
        assert_eq!(frac.slot_cap(4), 6);
        // floor() never goes below the hardware slots.
        assert_eq!(frac.slot_cap(1), 1);
    }

    #[test]
    fn classic_capabilities_match_the_enum() {
        for kind in PolicyKind::ALL {
            let built = build_policy(kind, &ParamBag::new()).unwrap();
            assert_eq!(built.migrates_on_overload(), kind.migrates_on_overload());
            assert_eq!(built.reconfigures(), kind.reconfigures());
            assert_eq!(built.suspends_on_blocking(), kind.suspends_on_blocking());
        }
    }

    #[test]
    fn unknown_name_lists_the_registry() {
        let err = build_named("magic", &ParamBag::new()).unwrap_err();
        assert!(err.contains("unknown policy `magic`"), "{err}");
        assert!(err.contains("v-reconfiguration"), "{err}");
    }
}
