//! Plain-text trace serialization.
//!
//! Traces round-trip through a line-oriented CSV-like format so they can be
//! archived, diffed, and shared without a serde format crate (none is
//! available offline). One header line, one comment line with the trace
//! name, then one line per job:
//!
//! ```text
//! #vrecon-trace v1
//! #name=SPEC-Trace-3
//! id,name,class,submit_us,cpu_work_us,io_rate,phases
//! 0,mcf,mem,15000000,1820000000,0.2,30000000:52428800;max:199229440
//! ```
//!
//! `phases` is a `;`-separated list of `until_us:working_set_bytes`, with
//! `max` denoting an unbounded final phase.

use std::fmt;
use std::io::{self, BufRead, Write};

use vr_cluster::job::{JobClass, JobId, JobSpec, MalleableSpec, MemoryProfile};
use vr_cluster::units::Bytes;
use vr_simcore::time::{SimSpan, SimTime};

use crate::trace::Trace;

const MAGIC: &str = "#vrecon-trace v1";

/// Error reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a v1 trace file.
    BadMagic,
    /// A malformed line, with its (1-based) line number and a description.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => f.write_str("input is not a vrecon-trace v1 file"),
            ReadTraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn class_tag(class: JobClass) -> &'static str {
    match class {
        JobClass::CpuIntensive => "cpu",
        JobClass::MemoryIntensive => "mem",
        JobClass::CpuMemoryIntensive => "cpumem",
        JobClass::IoActive => "io",
    }
}

fn parse_class(tag: &str) -> Option<JobClass> {
    match tag {
        "cpu" => Some(JobClass::CpuIntensive),
        "mem" => Some(JobClass::MemoryIntensive),
        "cpumem" => Some(JobClass::CpuMemoryIntensive),
        "io" => Some(JobClass::IoActive),
        _ => None,
    }
}

/// Writes `trace` in the v1 text format.
///
/// A `&mut` writer can be passed (the `Write` impl for `&mut W` applies).
///
/// # Errors
///
/// Returns an error on I/O failure, or [`io::ErrorKind::InvalidInput`] if a
/// job name contains a comma or newline (which the format cannot represent).
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "{MAGIC}")?;
    writeln!(w, "#name={}", trace.name)?;
    writeln!(w, "id,name,class,submit_us,cpu_work_us,io_rate,phases")?;
    for job in &trace.jobs {
        if job.name.contains(',') || job.name.contains('\n') {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("job name {:?} cannot be serialized", job.name),
            ));
        }
        let phases: Vec<String> = job
            .memory
            .phases()
            .iter()
            .map(|p| {
                let until = if p.until_progress == SimSpan::MAX {
                    "max".to_owned()
                } else {
                    p.until_progress.as_micros().to_string()
                };
                format!("{until}:{}", p.working_set.as_u64())
            })
            .collect();
        write!(
            w,
            "{},{},{},{},{},{},{}",
            job.id.0,
            job.name,
            class_tag(job.class),
            job.submit.as_micros(),
            job.cpu_work.as_micros(),
            job.io_rate,
            phases.join(";")
        )?;
        // Malleable jobs carry an optional eighth column `min:max`; rigid
        // jobs keep the classic seven so pre-existing traces round-trip
        // byte for byte.
        if let Some(m) = job.malleable {
            write!(w, ",{}:{}", m.min_width, m.max_width)?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a trace previously written with [`write_trace`].
///
/// A `&mut` reader can be passed (the `BufRead` impl for `&mut R` applies).
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure or malformed input.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ReadTraceError> {
    let mut lines = r.lines().enumerate();
    let bad = |line: usize, message: &str| ReadTraceError::Parse {
        line: line + 1,
        message: message.to_owned(),
    };
    let (n, magic) = lines.next().ok_or(ReadTraceError::BadMagic)?;
    if magic?.trim() != MAGIC {
        return Err(bad(n, "missing magic header"));
    }
    let (n, name_line) = lines.next().ok_or_else(|| bad(1, "missing name line"))?;
    let name_line = name_line?;
    let name = name_line
        .strip_prefix("#name=")
        .ok_or_else(|| bad(n, "expected #name= line"))?
        .to_owned();
    let (_, _header) = lines
        .next()
        .ok_or_else(|| bad(2, "missing column header"))?;
    let mut jobs = Vec::new();
    for (n, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 7 && fields.len() != 8 {
            return Err(bad(n, "expected 7 or 8 comma-separated fields"));
        }
        let id: u64 = fields[0].parse().map_err(|_| bad(n, "bad id"))?;
        let class = parse_class(fields[2]).ok_or_else(|| bad(n, "unknown class"))?;
        let submit: u64 = fields[3].parse().map_err(|_| bad(n, "bad submit time"))?;
        let cpu_work: u64 = fields[4].parse().map_err(|_| bad(n, "bad cpu work"))?;
        let io_rate: f64 = fields[5].parse().map_err(|_| bad(n, "bad io rate"))?;
        let mut phases = Vec::new();
        for part in fields[6].split(';') {
            let (until, ws) = part
                .split_once(':')
                .ok_or_else(|| bad(n, "bad phase (expected until:bytes)"))?;
            let until = if until == "max" {
                SimSpan::MAX
            } else {
                SimSpan::from_micros(until.parse().map_err(|_| bad(n, "bad phase boundary"))?)
            };
            let ws: u64 = ws.parse().map_err(|_| bad(n, "bad working set"))?;
            phases.push((until, Bytes::new(ws)));
        }
        let memory = MemoryProfile::from_phases(phases)
            .map_err(|e| bad(n, &format!("invalid memory profile: {e}")))?;
        let malleable = match fields.get(7) {
            None => None,
            Some(field) => {
                let (min, max) = field
                    .split_once(':')
                    .ok_or_else(|| bad(n, "bad malleable spec (expected min:max)"))?;
                let spec = MalleableSpec {
                    min_width: min.parse().map_err(|_| bad(n, "bad malleable min width"))?,
                    max_width: max.parse().map_err(|_| bad(n, "bad malleable max width"))?,
                };
                spec.validate()
                    .map_err(|e| bad(n, &format!("invalid malleable spec: {e}")))?;
                Some(spec)
            }
        };
        jobs.push(JobSpec {
            id: JobId(id),
            name: fields[1].to_owned(),
            class,
            submit: SimTime::from_micros(submit),
            cpu_work: SimSpan::from_micros(cpu_work),
            memory,
            io_rate,
            malleable,
        });
    }
    Ok(Trace { name, jobs })
}

const ACTIVITY_MAGIC: &str = "#vrecon-activity v1";

/// Writes an [`ActivityRecord`](crate::activity::ActivityRecord) in a
/// line-oriented text format:
///
/// ```text
/// #vrecon-activity v1
/// #name=mcf class=mem interval_us=10000
/// mem_bytes,io_ops
/// 52428800,0.002
/// ...
/// ```
///
/// # Errors
///
/// Returns an error on I/O failure or if the name contains characters the
/// format cannot represent.
pub fn write_activity<W: Write>(
    record: &crate::activity::ActivityRecord,
    mut w: W,
) -> io::Result<()> {
    if record.name.contains([' ', '\n', '=']) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("activity name {:?} cannot be serialized", record.name),
        ));
    }
    writeln!(w, "{ACTIVITY_MAGIC}")?;
    writeln!(
        w,
        "#name={} class={} interval_us={}",
        record.name,
        class_tag(record.class),
        record.interval.as_micros()
    )?;
    writeln!(w, "mem_bytes,io_ops")?;
    for s in &record.samples {
        writeln!(w, "{},{}", s.memory.as_u64(), s.io_ops)?;
    }
    Ok(())
}

/// Reads an activity record previously written with [`write_activity`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure or malformed input.
pub fn read_activity<R: BufRead>(r: R) -> Result<crate::activity::ActivityRecord, ReadTraceError> {
    let mut lines = r.lines().enumerate();
    let bad = |line: usize, message: &str| ReadTraceError::Parse {
        line: line + 1,
        message: message.to_owned(),
    };
    let (n, magic) = lines.next().ok_or(ReadTraceError::BadMagic)?;
    if magic?.trim() != ACTIVITY_MAGIC {
        return Err(bad(n, "missing activity magic header"));
    }
    let (n, header) = lines.next().ok_or_else(|| bad(1, "missing header line"))?;
    let header = header?;
    let mut name = None;
    let mut class = None;
    let mut interval = None;
    for part in header.trim_start_matches('#').split_whitespace() {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| bad(n, "header fields are key=value"))?;
        match key {
            "name" => name = Some(value.to_owned()),
            "class" => class = parse_class(value),
            "interval_us" => {
                interval = Some(SimSpan::from_micros(
                    value.parse().map_err(|_| bad(n, "bad interval"))?,
                ))
            }
            _ => return Err(bad(n, "unknown header field")),
        }
    }
    let (name, class, interval) = match (name, class, interval) {
        (Some(a), Some(b), Some(c)) => (a, b, c),
        _ => return Err(bad(n, "header must carry name, class, interval_us")),
    };
    let (_, _columns) = lines
        .next()
        .ok_or_else(|| bad(2, "missing column header"))?;
    let mut samples = Vec::new();
    for (n, line) in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (mem, io) = line
            .split_once(',')
            .ok_or_else(|| bad(n, "expected mem_bytes,io_ops"))?;
        samples.push(crate::activity::ActivitySample {
            memory: Bytes::new(mem.parse().map_err(|_| bad(n, "bad memory"))?),
            io_ops: io.parse().map_err(|_| bad(n, "bad io ops"))?,
        });
    }
    Ok(crate::activity::ActivityRecord {
        name,
        class,
        interval,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{spec_trace, TraceLevel};
    use vr_simcore::rng::SimRng;

    #[test]
    fn round_trip_preserves_trace() {
        let trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(5));
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let parsed = read_trace(buf.as_slice()).unwrap();
        assert_eq!(parsed.name, trace.name);
        assert_eq!(parsed.len(), trace.len());
        for (a, b) in trace.jobs.iter().zip(parsed.jobs.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.class, b.class);
            assert_eq!(a.submit, b.submit);
            assert_eq!(a.cpu_work, b.cpu_work);
            assert_eq!(a.memory, b.memory);
            assert!((a.io_rate - b.io_rate).abs() < 1e-12);
            assert_eq!(a.malleable, b.malleable);
        }
    }

    #[test]
    fn malleable_column_round_trips() {
        let mut trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(99));
        trace.jobs[1].malleable = Some(MalleableSpec {
            min_width: 1,
            max_width: 3,
        });
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.jobs[0].malleable, None);
        assert_eq!(
            back.jobs[1].malleable,
            Some(MalleableSpec {
                min_width: 1,
                max_width: 3,
            })
        );
    }

    #[test]
    fn rejects_bad_malleable_column() {
        let base =
            format!("{MAGIC}\n#name=x\nid,name,class,submit_us,cpu_work_us,io_rate,phases\n");
        for bad in ["2", "0:2", "3:1", "a:b"] {
            let line = format!("{base}0,j,cpu,0,1000,0,max:100,{bad}\n");
            assert!(
                read_trace(line.as_bytes()).is_err(),
                "malleable column {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_trace("not a trace\n".as_bytes()),
            Err(ReadTraceError::Parse { .. })
        ));
        assert!(matches!(
            read_trace("".as_bytes()),
            Err(ReadTraceError::BadMagic)
        ));
    }

    #[test]
    fn rejects_malformed_job_line() {
        let input = format!(
            "{MAGIC}\n#name=x\nid,name,class,submit_us,cpu_work_us,io_rate,phases\n1,2,3\n"
        );
        let err = read_trace(input.as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Parse { line, .. } => assert_eq!(line, 4),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_bad_class_and_bad_phase() {
        let base =
            format!("{MAGIC}\n#name=x\nid,name,class,submit_us,cpu_work_us,io_rate,phases\n");
        let bad_class = format!("{base}0,j,warp,0,1000,0,max:100\n");
        assert!(read_trace(bad_class.as_bytes()).is_err());
        let bad_phase = format!("{base}0,j,cpu,0,1000,0,nonsense\n");
        assert!(read_trace(bad_phase.as_bytes()).is_err());
    }

    #[test]
    fn refuses_names_with_commas() {
        let mut trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(5));
        trace.jobs[0].name = "a,b".to_owned();
        let err = write_trace(&trace, Vec::new()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn activity_records_round_trip() {
        use crate::activity::ActivityRecord;
        let spec = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(5)).jobs[0].clone();
        let record =
            ActivityRecord::record_dedicated(&spec, vr_simcore::time::SimSpan::from_millis(500))
                .unwrap();
        let mut buf = Vec::new();
        write_activity(&record, &mut buf).unwrap();
        let parsed = read_activity(buf.as_slice()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn activity_parser_rejects_garbage() {
        assert!(read_activity("nope\n".as_bytes()).is_err());
        let bad_header = format!("{ACTIVITY_MAGIC}\n#name only\nmem,io\n");
        assert!(read_activity(bad_header.as_bytes()).is_err());
        let bad_sample =
            format!("{ACTIVITY_MAGIC}\n#name=x class=cpu interval_us=1000\nmem,io\nabc,def\n");
        assert!(read_activity(bad_sample.as_bytes()).is_err());
    }

    #[test]
    fn activity_writer_rejects_awkward_names() {
        use crate::activity::{ActivityRecord, ActivitySample};
        let record = ActivityRecord {
            name: "has space".into(),
            class: vr_cluster::job::JobClass::CpuIntensive,
            interval: vr_simcore::time::SimSpan::from_millis(10),
            samples: vec![ActivitySample {
                memory: Bytes::new(1),
                io_ops: 0.0,
            }],
        };
        assert!(write_activity(&record, Vec::new()).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let err = ReadTraceError::Parse {
            line: 7,
            message: "bad id".to_owned(),
        };
        assert_eq!(err.to_string(), "trace parse error at line 7: bad id");
        assert_eq!(
            ReadTraceError::BadMagic.to_string(),
            "input is not a vrecon-trace v1 file"
        );
    }
}
