//! Property-based tests of workload generation.

use proptest::prelude::*;
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};
use vr_workload::arrival::{LognormalArrivals, PoissonArrivals};
use vr_workload::trace::{app_trace_scaled, spec_trace_scaled, TraceLevel};

fn level_strategy() -> impl Strategy<Value = TraceLevel> {
    prop::sample::select(TraceLevel::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Lognormal arrivals always produce exactly the requested count,
    /// sorted, inside the window, for any reasonable (σ, μ).
    #[test]
    fn lognormal_arrivals_are_well_formed(
        sigma in 0.2f64..5.0,
        mu in 0.2f64..5.0,
        count in 1usize..400,
        horizon in 60u64..7_200,
        seed in any::<u64>(),
    ) {
        let gen = LognormalArrivals {
            sigma,
            mu,
            count,
            horizon: SimSpan::from_secs(horizon),
        };
        let times = gen.generate(&mut SimRng::seed_from(seed));
        prop_assert_eq!(times.len(), count);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(times.iter().all(|t| *t <= SimTime::from_secs(horizon)));
    }

    /// Poisson arrivals are sorted and strictly positive.
    #[test]
    fn poisson_arrivals_are_well_formed(
        rate in 0.01f64..10.0,
        count in 1usize..300,
        seed in any::<u64>(),
    ) {
        let times = PoissonArrivals { rate_per_sec: rate, count }
            .generate(&mut SimRng::seed_from(seed));
        prop_assert_eq!(times.len(), count);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(times[0] > SimTime::ZERO);
    }

    /// Every generated paper trace validates, has the paper's job count,
    /// and scales its CPU work linearly with the lifetime scale.
    #[test]
    fn paper_traces_scale_linearly(
        level in level_strategy(),
        seed in any::<u64>(),
        scale in 0.05f64..1.0,
        spec_group in any::<bool>(),
    ) {
        let build = |s: f64| {
            if spec_group {
                spec_trace_scaled(level, &mut SimRng::seed_from(seed), s)
            } else {
                app_trace_scaled(level, &mut SimRng::seed_from(seed), s)
            }
        };
        let base = build(scale);
        prop_assert!(base.validate().is_ok());
        prop_assert_eq!(base.len(), level.jobs());
        let doubled = build(scale * 2.0);
        let ratio = doubled.total_cpu_work_secs() / base.total_cpu_work_secs();
        prop_assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
        // Working sets are unaffected by lifetime scaling.
        for (a, b) in base.jobs.iter().zip(doubled.jobs.iter()) {
            prop_assert_eq!(a.max_working_set(), b.max_working_set());
        }
    }
}
