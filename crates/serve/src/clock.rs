//! The wall-clock injection boundary.
//!
//! The serving tier is the one place in the workspace where real time is
//! load-bearing: request latencies, socket read deadlines, and retry
//! hints are wall-clock quantities, not simulated ones. To keep that from
//! leaking into code that must stay deterministic, this module is the
//! **only** file in `vr-serve` allowed to name [`std::time::Instant`]:
//! it declares itself a wall-clock boundary (the `vr-analyze::boundary`
//! directive below) and `vrecon analyze` proves the taint property —
//! any function that transitively reaches `Instant::now` must absorb
//! the taint here or carry its own reasoned allow. Everything else in
//! the crate handles opaque [`Stopwatch`] values and plain `Duration`s,
//! so a future virtual clock for tests only has to replace this file.

// vr-analyze::boundary(wall-clock, reason = "the serving tier's only clock-injection seam: latencies, deadlines, and retry hints are real-time quantities by design")

// vr-lint::allow(wall-clock, reason = "this file is the declared boundary; see the vr-analyze directive above")
use std::time::{Duration, Instant};

/// A started timer. The rest of the crate can measure elapsed time but
/// cannot mint or compare raw instants.
#[derive(Debug, Clone, Copy)]
// vr-lint::allow(wall-clock, reason = "the boundary type wraps the raw instant so nothing else has to")
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a timer at the current wall-clock instant.
    pub fn start() -> Stopwatch {
        // vr-lint::allow(wall-clock, reason = "the one sanctioned clock read in vr-serve")
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Whether more than `limit` has elapsed since the start.
    pub fn expired(&self, limit: Duration) -> bool {
        self.0.elapsed() > limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_secs() > 0.0);
        assert!(sw.elapsed_ms() >= 5.0 * 0.5, "{}", sw.elapsed_ms());
        assert!(sw.expired(Duration::from_millis(1)));
        assert!(!sw.expired(Duration::from_secs(3600)));
    }
}
