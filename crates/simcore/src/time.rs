//! Fixed-point simulation time.
//!
//! Simulation time is kept in integer microseconds so that event ordering is
//! exact and runs are bit-for-bit reproducible. Two newtypes keep instants and
//! durations apart ([`SimTime`] vs [`SimSpan`]); mixing them up is a compile
//! error rather than a latent bug.
//!
//! ```
//! use vr_simcore::time::{SimTime, SimSpan};
//!
//! let start = SimTime::ZERO;
//! let t = start + SimSpan::from_millis(10) + SimSpan::from_secs(2);
//! assert_eq!(t.as_micros(), 2_010_000);
//! assert_eq!(t - start, SimSpan::from_micros(2_010_000));
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, measured in microseconds since the
/// start of the run.
///
/// `SimTime` is totally ordered and cheap to copy. Subtracting two instants
/// yields a [`SimSpan`]; adding a [`SimSpan`] yields a later instant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A non-negative span of simulation time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimSpan(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimTime((secs * 1e6).round() as u64)
    }

    /// This instant as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`, or [`SimSpan::ZERO`] if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, span: SimSpan) -> Option<SimTime> {
        self.0.checked_add(span.0).map(SimTime)
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimSpan {
    /// The empty span.
    pub const ZERO: SimSpan = SimSpan(0);
    /// The largest representable span.
    pub const MAX: SimSpan = SimSpan(u64::MAX);

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimSpan(micros)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimSpan(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimSpan(secs * 1_000_000)
    }

    /// Creates a span from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimSpan::from_secs_f64 requires a finite non-negative value, got {secs}"
        );
        SimSpan((secs * 1e6).round() as u64)
    }

    /// This span as integer microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// `true` if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> SimSpan {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "SimSpan::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        SimSpan((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: SimSpan) -> Option<SimSpan> {
        self.0.checked_add(other.0).map(SimSpan)
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.min(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimSpan) -> SimSpan {
        SimSpan(self.0.max(other.0))
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: simulated-time overflow is a fatal logic error")
                .expect("SimTime overflow: instant + span exceeds u64 microseconds"),
        )
    }
}

impl AddAssign<SimSpan> for SimTime {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimSpan;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when the ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimSpan {
        assert!(
            self.0 >= rhs.0,
            "SimTime subtraction would be negative ({} - {})",
            self,
            rhs
        );
        SimSpan(self.0 - rhs.0)
    }
}

impl Sub<SimSpan> for SimTime {
    type Output = SimTime;
    /// The instant `rhs` earlier than `self`.
    ///
    /// # Panics
    ///
    /// Panics if the result would precede the start of the run.
    fn sub(self, rhs: SimSpan) -> SimTime {
        assert!(
            self.0 >= rhs.0,
            "SimTime - SimSpan would precede the start of the run"
        );
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(
            self.0
                .checked_add(rhs.0)
                // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: simulated-time overflow is a fatal logic error")
                .expect("SimSpan overflow: span + span exceeds u64 microseconds"),
        )
    }
}

impl AddAssign for SimSpan {
    fn add_assign(&mut self, rhs: SimSpan) {
        *self = *self + rhs;
    }
}

impl Sub for SimSpan {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`SimSpan::saturating_sub`] otherwise.
    fn sub(self, rhs: SimSpan) -> SimSpan {
        assert!(self.0 >= rhs.0, "SimSpan subtraction would be negative");
        SimSpan(self.0 - rhs.0)
    }
}

impl SubAssign for SimSpan {
    fn sub_assign(&mut self, rhs: SimSpan) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimSpan {
    type Output = SimSpan;
    fn mul(self, rhs: u64) -> SimSpan {
        // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: simulated-time overflow is a fatal logic error")
        SimSpan(self.0.checked_mul(rhs).expect("SimSpan overflow in Mul"))
    }
}

impl Div<u64> for SimSpan {
    type Output = SimSpan;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> SimSpan {
        SimSpan(self.0 / rhs)
    }
}

impl Div for SimSpan {
    type Output = f64;
    /// The ratio between two spans.
    fn div(self, rhs: SimSpan) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimSpan {
    fn sum<I: Iterator<Item = SimSpan>>(iter: I) -> SimSpan {
        iter.fold(SimSpan::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl From<SimSpan> for SimTime {
    /// Interprets a span as an offset from the start of the run.
    fn from(span: SimSpan) -> SimTime {
        SimTime(span.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimSpan::from_secs(7).as_secs_f64(), 7.0);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimSpan::from_secs_f64(0.0000015).as_micros(), 2); // rounds
    }

    #[test]
    fn instant_span_arithmetic() {
        let t = SimTime::from_secs(10);
        let s = SimSpan::from_millis(250);
        assert_eq!((t + s).as_micros(), 10_250_000);
        assert_eq!((t + s) - t, s);
        assert_eq!((t + s) - s, t);
        let mut u = t;
        u += s;
        assert_eq!(u, t + s);
    }

    #[test]
    fn span_arithmetic() {
        let a = SimSpan::from_secs(2);
        let b = SimSpan::from_secs(3);
        assert_eq!(a + b, SimSpan::from_secs(5));
        assert_eq!(b - a, SimSpan::from_secs(1));
        assert_eq!(a * 4, SimSpan::from_secs(8));
        assert_eq!(b / 3, SimSpan::from_secs(1));
        assert!((b / a - 1.5).abs() < 1e-12);
        assert_eq!(a.mul_f64(2.5), SimSpan::from_secs(5));
        assert_eq!(a.saturating_sub(b), SimSpan::ZERO);
        assert_eq!([a, b].into_iter().sum::<SimSpan>(), SimSpan::from_secs(5));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(4);
        assert_eq!(late.saturating_since(early), SimSpan::from_secs(3));
        assert_eq!(early.saturating_since(late), SimSpan::ZERO);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_instant_subtraction_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn min_max_ordering() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a < b);
        assert_eq!(
            SimSpan::from_secs(1).max(SimSpan::from_secs(2)),
            SimSpan::from_secs(2)
        );
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimSpan::from_micros(1).to_string(), "0.000001s");
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimTime::MAX.checked_add(SimSpan::from_micros(1)).is_none());
        assert!(SimSpan::MAX.checked_add(SimSpan::from_micros(1)).is_none());
        assert_eq!(
            SimTime::ZERO.checked_add(SimSpan::from_secs(1)),
            Some(SimTime::from_secs(1))
        );
    }
}
