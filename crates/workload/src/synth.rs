//! Synthetic adversarial workloads for the paper's "when V-R does not help"
//! conditions (§2.3, §5) and for stress ablations.
//!
//! * [`equal_memory`] — every job demands the same memory: §5 condition 2
//!   predicts virtual reconfiguration is ineffective because "the chance of
//!   unsuitable resource allocations is very small".
//! * [`big_job_dominant`] — most jobs are large: §2.3 warns V-R "may not
//!   work well for specific workloads where big jobs are dominant" and the
//!   reservation cap must protect normal jobs.
//! * [`light_load`] — sparse arrivals: §5 condition 1, blocking never
//!   happens, so V-R should adaptively never activate.
//! * [`blocking_scenario`] — a crafted minimal workload that provokes the
//!   job blocking problem quickly, used by examples and integration tests.

use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile};
use vr_cluster::units::Bytes;
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};

use crate::arrival::{BurstyArrivals, PoissonArrivals};
use crate::catalog::{PhaseShape, ProgramSpec};
use crate::trace::Trace;

/// A workload where every job has an identical memory demand (§5
/// condition 2).
// vr-analyze::allow(panic-path, reason = "the only span minted is a ±15% jitter of the constant 180 s lifetime, always positive and finite")
pub fn equal_memory(jobs: usize, working_set: Bytes, rng: &mut SimRng) -> Trace {
    let program = ProgramSpec {
        name: "equal",
        description: "equal-memory synthetic job",
        input: "-",
        class: JobClass::MemoryIntensive,
        working_set_mb: working_set.as_mb_f64(),
        lifetime_secs: 180.0,
        io_rate: 0.0,
        shape: PhaseShape::Flat,
    };
    let arrivals = PoissonArrivals {
        rate_per_sec: 0.25,
        count: jobs,
    }
    .generate(rng);
    // No working-set jitter: the point is equal sizing. Mild lifetime-only
    // jitter is applied manually.
    let specs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &submit)| {
            let mut spec = program.instantiate(JobId(i as u64), submit, rng, 0.0);
            spec.cpu_work = SimSpan::from_secs_f64(rng.jitter(180.0, 0.15));
            spec
        })
        .collect();
    Trace {
        name: format!("Synth-EqualMem-{}MB", working_set.as_mb_f64().round()),
        jobs: specs,
    }
}

/// A workload dominated by large-memory jobs (§2.3's caveat).
///
/// `big_fraction` of jobs demand ~90 % of `node_memory`; the rest are small.
///
/// # Panics
///
/// Panics if `big_fraction` is outside `[0, 1]`.
pub fn big_job_dominant(
    jobs: usize,
    node_memory: Bytes,
    big_fraction: f64,
    rng: &mut SimRng,
) -> Trace {
    assert!(
        (0.0..=1.0).contains(&big_fraction),
        "big_fraction must be in [0, 1], got {big_fraction}"
    );
    let big = ProgramSpec {
        name: "big",
        description: "large-memory synthetic job",
        input: "-",
        class: JobClass::MemoryIntensive,
        working_set_mb: node_memory.as_mb_f64() * 0.9,
        lifetime_secs: 600.0,
        io_rate: 0.0,
        shape: PhaseShape::Ramp,
    };
    let small = ProgramSpec {
        name: "small",
        description: "small synthetic job",
        input: "-",
        class: JobClass::CpuIntensive,
        working_set_mb: node_memory.as_mb_f64() * 0.08,
        lifetime_secs: 120.0,
        io_rate: 0.0,
        shape: PhaseShape::Flat,
    };
    let arrivals = PoissonArrivals {
        rate_per_sec: 0.3,
        count: jobs,
    }
    .generate(rng);
    let specs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &submit)| {
            let program = if rng.uniform() < big_fraction {
                &big
            } else {
                &small
            };
            program.instantiate(JobId(i as u64), submit, rng, 0.1)
        })
        .collect();
    Trace {
        name: format!("Synth-BigDominant-{:.0}pct", big_fraction * 100.0),
        jobs: specs,
    }
}

/// A lightly loaded workload: arrivals far apart, modest memory (§5
/// condition 1 — V-R should never activate).
pub fn light_load(jobs: usize, rng: &mut SimRng) -> Trace {
    let program = ProgramSpec {
        name: "light",
        description: "short small synthetic job",
        input: "-",
        class: JobClass::CpuIntensive,
        working_set_mb: 20.0,
        lifetime_secs: 60.0,
        io_rate: 0.0,
        shape: PhaseShape::Flat,
    };
    let arrivals = PoissonArrivals {
        rate_per_sec: 0.02,
        count: jobs,
    }
    .generate(rng);
    let specs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &submit)| program.instantiate(JobId(i as u64), submit, rng, 0.1))
        .collect();
    Trace {
        name: "Synth-LightLoad".to_owned(),
        jobs: specs,
    }
}

/// A bursty fluctuating workload: ON/OFF arrival phases over the group-2
/// catalog. The conclusion's motivation — "accommodating expected and
/// unexpected workload fluctuation of service demands is highly desirable"
/// — made measurable: bursts overwhelm the cluster transiently, quiet
/// phases let reservations drain.
// vr-analyze::allow(panic-path, reason = "Trace::build's asserts cannot fire: the catalog is the static group-2 table and jitter is the constant 0.2")
pub fn bursty(jobs: usize, rng: &mut SimRng) -> Trace {
    let catalog = crate::apps::programs()
        .iter()
        .map(|p| p.scale_lifetime(crate::trace::APP_LIFETIME_SCALE))
        .collect::<Vec<_>>();
    let arrivals = BurstyArrivals {
        on_rate_per_sec: 1.0,
        mean_on_secs: 60.0,
        mean_off_secs: 240.0,
        count: jobs,
    }
    .generate(rng);
    Trace::build("Synth-Bursty", &catalog, &arrivals, rng, 0.2)
}

/// A minimal deterministic workload that provokes the job blocking problem,
/// sized against `node_memory` (call it `U`):
///
/// 1. **Wave A** (first seconds): two "filler" jobs per node at `0.38·U`
///    each — every node ends up ~76 % full, leaving ~`0.24·U` idle. No node
///    can host a large job, yet the *accumulated* idle memory is ~`1.9·U`:
///    exactly the paper's observation that resources sit idle while
///    placements are blocked.
/// 2. **Giants** (t ≈ 60 s): one per four nodes, admitted while demanding
///    only `0.1·U`, then ballooning to `0.72·U` after 20 s of progress. The
///    hosting node oversubscribes by ~50 % and thrashes; no other node has
///    `0.72·U` idle, so migration is blocked — the blocking problem.
/// 3. **Wave B** (t ≈ 340 s on): another round of fillers that suffer under
///    G-Loadsharing (they land next to thrashing giants) but flow freely
///    once V-Reconfiguration has corralled the giants onto reserved nodes.
// vr-analyze::allow(panic-path, reason = "every submit/lifetime is a compile-time constant and memory sizes scale a non-negative Bytes")
pub fn blocking_scenario(nodes: usize, node_memory: Bytes) -> Trace {
    let u = node_memory.as_mb_f64();
    let filler_ws = u * 0.38;
    let giant_peak = u * 0.72;
    let giant_start = u * 0.10;
    let mut jobs = Vec::new();
    let mut id = 0u64;
    let mut push =
        |submit_s: f64, name: &str, class: JobClass, life_s: f64, memory: MemoryProfile| {
            jobs.push(JobSpec {
                id: JobId(id),
                name: name.to_owned(),
                class,
                submit: SimTime::from_secs_f64(submit_s),
                cpu_work: SimSpan::from_secs_f64(life_s),
                memory,
                io_rate: 0.0,
                malleable: None,
            });
            id += 1;
        };
    // Wave A: two fillers per node, one second apart, establishing the
    // steady ~76 % occupancy.
    for s in 0..(2 * nodes) {
        push(
            1.0 + s as f64,
            "filler",
            JobClass::CpuIntensive,
            150.0,
            MemoryProfile::constant(Bytes::from_mb_f64(filler_ws)),
        );
    }
    // Giants: admitted small, ballooning after 20s of progress.
    let giants = (nodes / 4).max(2);
    for g in 0..giants {
        let ramp = MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(20), Bytes::from_mb_f64(giant_start)),
            (SimSpan::MAX, Bytes::from_mb_f64(giant_peak)),
        ])
        // vr-lint::allow(panic-in-lib, reason = "phase boundaries are literal spans in ascending order")
        .expect("static boundaries are increasing");
        push(
            60.0 + g as f64 * 7.0,
            "giant",
            JobClass::MemoryIntensive,
            900.0,
            ramp,
        );
    }
    // A steady filler stream keeps every node occupied for the whole run,
    // so (without reconfiguration) no migration destination ever opens up.
    let steady = 6 * nodes;
    for s in 0..steady {
        push(
            20.0 + s as f64 * (1020.0 / steady as f64),
            "filler",
            JobClass::CpuIntensive,
            150.0,
            MemoryProfile::constant(Bytes::from_mb_f64(filler_ws)),
        );
    }
    // Interleave by submission time with stable ids.
    jobs.sort_by_key(|j| j.submit);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = JobId(i as u64);
    }
    Trace {
        name: "Synth-Blocking".to_owned(),
        jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_memory_is_truly_equal() {
        let mut rng = SimRng::seed_from(1);
        let trace = equal_memory(50, Bytes::from_mb(64), &mut rng);
        assert_eq!(trace.len(), 50);
        trace.validate().unwrap();
        for job in &trace.jobs {
            assert_eq!(job.max_working_set(), Bytes::from_mb(64));
        }
    }

    #[test]
    fn big_dominant_mixes_to_the_requested_fraction() {
        let mut rng = SimRng::seed_from(2);
        let trace = big_job_dominant(400, Bytes::from_mb(128), 0.7, &mut rng);
        trace.validate().unwrap();
        let big = trace.jobs.iter().filter(|j| j.name == "big").count();
        let frac = big as f64 / 400.0;
        assert!((frac - 0.7).abs() < 0.08, "big fraction {frac}");
    }

    #[test]
    fn light_load_spreads_arrivals() {
        let mut rng = SimRng::seed_from(3);
        let trace = light_load(20, &mut rng);
        trace.validate().unwrap();
        // Mean gap 50s: the 20th arrival should be far out.
        assert!(trace.last_submission() > SimTime::from_secs(300));
    }

    #[test]
    fn blocking_scenario_structure() {
        let trace = blocking_scenario(32, Bytes::from_mb(128));
        trace.validate().unwrap();
        let giants = trace.jobs.iter().filter(|j| j.name == "giant").count();
        let fillers = trace.jobs.iter().filter(|j| j.name == "filler").count();
        assert_eq!(giants, 8);
        assert_eq!(fillers, 8 * 32);
        // Giants ramp: small at admission, giant later.
        let giant = trace.jobs.iter().find(|j| j.name == "giant").unwrap();
        assert!(
            giant.memory.working_set_at(SimSpan::ZERO)
                < giant.memory.working_set_at(SimSpan::from_secs(60))
        );
        // The ballooned giant cannot fit next to a filler: 0.72 + 0.38 > 1.
        let giant_peak = giant.max_working_set().as_mb_f64();
        let filler = trace.jobs.iter().find(|j| j.name == "filler").unwrap();
        assert!(giant_peak + filler.max_working_set().as_mb_f64() > 128.0);
    }

    #[test]
    fn blocking_scenario_is_deterministic() {
        assert_eq!(
            blocking_scenario(16, Bytes::from_mb(128)),
            blocking_scenario(16, Bytes::from_mb(128))
        );
    }

    #[test]
    fn bursty_workload_is_valid_and_clustered() {
        let mut rng = SimRng::seed_from(9);
        let trace = bursty(200, &mut rng);
        trace.validate().unwrap();
        assert_eq!(trace.len(), 200);
    }

    #[test]
    #[should_panic(expected = "big_fraction")]
    fn invalid_fraction_panics() {
        big_job_dominant(10, Bytes::from_mb(128), 1.5, &mut SimRng::seed_from(0));
    }
}
