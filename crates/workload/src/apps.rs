//! Workload group 2: the seven scientific/system programs of Table 2.
//!
//! Table 2 of the source text preserves the program names, the data-size
//! column fragments (m-m 1,024; t-sim 31,000; metis 1M–4M; r-sphere 150,000;
//! r-wing 500,000) and the qualitative description in §3.2: "representative
//! CPU-intensive, memory-intensive, and/or I/O-active jobs" whose "memory
//! demands ... are smaller than the ones in workload group 1", measured on a
//! 233 MHz Pentium with 128 MB. Working sets and lifetimes are
//! **reconstructed** to preserve the structure the paper's group-2 results
//! depend on:
//!
//! * working sets are mostly well below the 128 MB node memory — so, unlike
//!   group 1, memory is rarely the bottleneck and V-R's gains come from job
//!   *balancing* (§4.2), with near-unchanged idle-memory volumes;
//! * a small minority (metis at its 4M mesh, r-wing) approach node memory,
//!   so occasional blocking still occurs at moderate arrival rates;
//! * lifetimes are minutes, not hours.

use vr_cluster::job::JobClass;

use crate::catalog::{PhaseShape, ProgramSpec};

/// The seven application programs of workload group 2 (Table 2).
pub fn programs() -> Vec<ProgramSpec> {
    vec![
        ProgramSpec {
            name: "bit-r",
            description: "bit-reversals",
            input: "2^22 elements",
            class: JobClass::CpuIntensive,
            working_set_mb: 34.0,
            lifetime_secs: 95.0,
            io_rate: 0.1,
            shape: PhaseShape::Flat,
        },
        ProgramSpec {
            name: "m-sort",
            description: "merge-sort",
            input: "2^23 keys",
            class: JobClass::MemoryIntensive,
            working_set_mb: 66.0,
            lifetime_secs: 148.0,
            io_rate: 0.5,
            shape: PhaseShape::Ramp,
        },
        ProgramSpec {
            name: "m-m",
            description: "matrix multiplication",
            input: "1,024 x 1,024",
            class: JobClass::CpuIntensive,
            working_set_mb: 25.0,
            lifetime_secs: 236.0,
            io_rate: 0.1,
            shape: PhaseShape::Flat,
        },
        ProgramSpec {
            name: "t-sim",
            description: "trace-driven simulation",
            input: "31,000 records",
            class: JobClass::IoActive,
            working_set_mb: 18.0,
            lifetime_secs: 427.0,
            io_rate: 20.0,
            shape: PhaseShape::Flat,
        },
        ProgramSpec {
            name: "metis",
            description: "partitioning meshes",
            input: "1M-4M nodes",
            class: JobClass::MemoryIntensive,
            working_set_mb: 108.0, // 4M-node mesh approaches the 128 MB node
            lifetime_secs: 312.0,
            io_rate: 1.0,
            shape: PhaseShape::Ramp,
        },
        ProgramSpec {
            name: "r-sphere",
            description: "cell-projection volume rendering (sphere)",
            input: "150,000 cells",
            class: JobClass::IoActive,
            working_set_mb: 44.0,
            lifetime_secs: 358.0,
            io_rate: 12.0,
            shape: PhaseShape::RampDecay,
        },
        ProgramSpec {
            name: "r-wing",
            description: "cell-projection volume rendering (aircraft wing)",
            input: "500,000 cells",
            class: JobClass::MemoryIntensive,
            working_set_mb: 114.0, // the group's large job
            lifetime_secs: 565.0,
            io_rate: 10.0,
            shape: PhaseShape::Ramp,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::units::Bytes;

    #[test]
    fn seven_programs_as_in_table_2() {
        let p = programs();
        assert_eq!(p.len(), 7);
        let names: Vec<&str> = p.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["bit-r", "m-sort", "m-m", "t-sim", "metis", "r-sphere", "r-wing"]
        );
    }

    #[test]
    fn demands_are_smaller_than_group_1() {
        // §3.2: "The program memory demands in this group are smaller than
        // the ones in workload group 1."
        let max_g2 = programs()
            .iter()
            .map(|p| p.working_set_mb)
            .fold(0.0, f64::max);
        let max_g1 = crate::spec2000::programs()
            .iter()
            .map(|p| p.working_set_mb)
            .fold(0.0, f64::max);
        assert!(max_g2 < max_g1);
    }

    #[test]
    fn only_a_minority_approach_node_memory() {
        // The group-2 "large jobs" are rare: 2 of 7 programs near 128 MB.
        let near_full = programs()
            .iter()
            .filter(|p| p.working_set() > Bytes::from_mb(100))
            .count();
        assert_eq!(near_full, 2);
    }

    #[test]
    fn all_fit_in_a_dedicated_128mb_node() {
        // §3.2 measured each program without major page faults on 128 MB.
        for p in programs() {
            assert!(
                p.working_set() < Bytes::from_mb(128),
                "{} does not fit dedicated",
                p.name
            );
        }
    }

    #[test]
    fn group_has_io_active_members() {
        assert!(programs().iter().any(|p| p.io_rate >= 10.0));
    }
}
