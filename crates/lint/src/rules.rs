//! The rule set and its per-crate scoping.
//!
//! Each rule targets a hazard this codebase has actually had (or is one
//! refactor away from having). The scoping tables below are the project's
//! determinism contract in machine-checkable form: the simulation crates
//! must be bit-reproducible from `(plan, seed)`, so anything that injects
//! host state — hash iteration order, wall clocks, environment variables —
//! is banned there and only allowed in the orchestration layer.

use crate::lexer::{Tok, TokKind};

/// Crates whose output must be a pure function of `(plan, seed)`. The
/// cross-`--jobs` byte-equality tests and the golden figures rest on this.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "check", "cluster", "core", "faults", "metrics", "simcore", "trace", "workload",
];

/// Crates allowed to read wall clocks (orchestration / reporting layer).
/// Public because the semantic wall-clock taint pass (`vr-analyze`) shares
/// the same scoping table. There is deliberately no per-file allowlist any
/// more: a crate outside this set that must read the clock declares an
/// in-source `vr-analyze::boundary(wall-clock, ...)` directive, and every
/// token-level finding in that file carries its own reasoned allow — the
/// boundary is a checked property, not a filename.
pub const WALL_CLOCK_ALLOWED: &[&str] = &["bench", "cli", "lint", "runner"];

/// Crates allowed to read the process environment (config / CLI layer).
const ENV_ALLOWED: &[&str] = &["bench", "cli", "lint", "runner"];

/// Memory-accounting modules where a narrowing `as` cast can silently
/// truncate a byte count; everything there is `u64`/`f64`.
pub const MEMORY_ACCOUNTING_MODULES: &[&str] = &[
    "crates/cluster/src/memory.rs",
    "crates/cluster/src/netram.rs",
    "crates/cluster/src/units.rs",
];

/// What kind of file a path is, for rule exemptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Ordinary library code — every rule applies.
    Lib,
    /// A binary entry point (`main.rs`, `src/bin/*`, `build.rs`).
    Bin,
    /// Integration tests and benches (`tests/`, `benches/`).
    Test,
    /// `examples/`.
    Example,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name under `crates/` (`core`, `simcore`, ...) or
    /// `repro` for the umbrella crate's own `src/`, `tests/`, `examples/`.
    pub krate: String,
    pub role: Role,
}

/// A rule's finding sink: `(line, col, message)`.
pub type Emit<'a> = &'a mut dyn FnMut(u32, u32, String);

/// One lint rule.
pub struct Rule {
    /// Kebab-case name, used in diagnostics and allow directives.
    pub name: &'static str,
    /// One-line description for docs and `--help`.
    pub summary: &'static str,
    /// Skip findings in test code (`tests/`, `benches/`, `#[cfg(test)]`).
    pub skip_test_code: bool,
    /// Skip findings in binary entry points and examples.
    pub skip_bin_code: bool,
    /// Whether the rule is active for a file (crate + path scoping).
    pub applies: fn(krate: &str, rel_path: &str) -> bool,
    /// Scans the token stream, emitting `(line, col, message)` findings.
    pub run: fn(&[Tok], Emit<'_>),
}

/// The rule table. Order is the order findings are reported in within a
/// position tie, so keep it alphabetical.
pub const RULES: &[Rule] = &[
    Rule {
        name: "env-read",
        summary: "process environment reads outside the config/CLI layer",
        skip_test_code: false,
        skip_bin_code: false,
        applies: |krate, _| !ENV_ALLOWED.contains(&krate),
        run: run_env_read,
    },
    Rule {
        name: "float-eq",
        summary: "== / != against a float literal",
        skip_test_code: true,
        skip_bin_code: false,
        applies: |_, _| true,
        run: run_float_eq,
    },
    Rule {
        name: "narrowing-as-cast",
        summary: "narrowing integer `as` cast in memory-accounting modules",
        skip_test_code: true,
        skip_bin_code: false,
        applies: |_, rel| MEMORY_ACCOUNTING_MODULES.contains(&rel),
        run: run_narrowing_as_cast,
    },
    Rule {
        name: "nondeterministic-collection",
        summary: "HashMap/HashSet in the deterministic simulation crates",
        skip_test_code: false,
        skip_bin_code: false,
        applies: |krate, _| DETERMINISTIC_CRATES.contains(&krate),
        run: run_nondeterministic_collection,
    },
    Rule {
        name: "panic-in-lib",
        summary: "unwrap/expect/panic!/todo! in library code",
        skip_test_code: true,
        skip_bin_code: true,
        applies: |_, _| true,
        run: run_panic_in_lib,
    },
    Rule {
        name: "unsafe-block",
        summary: "`unsafe` in the deterministic simulation crates",
        skip_test_code: false,
        skip_bin_code: false,
        applies: |krate, _| DETERMINISTIC_CRATES.contains(&krate),
        run: run_unsafe_block,
    },
    Rule {
        name: "wall-clock",
        summary: "Instant/SystemTime outside the orchestration layer",
        skip_test_code: false,
        skip_bin_code: false,
        applies: |krate, _| !WALL_CLOCK_ALLOWED.contains(&krate),
        run: run_wall_clock,
    },
];

/// Looks a rule up by name (for validating allow directives).
pub fn rule_named(name: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.name == name)
}

fn run_nondeterministic_collection(tokens: &[Tok], emit: Emit<'_>) {
    for t in tokens {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            emit(
                t.line,
                t.col,
                format!(
                    "`{}` iteration order is nondeterministic; use \
                     `BTreeMap`/`BTreeSet` or an index-keyed `Vec` in \
                     deterministic simulation crates",
                    t.text
                ),
            );
        }
    }
}

fn run_wall_clock(tokens: &[Tok], emit: Emit<'_>) {
    for t in tokens {
        if t.kind == TokKind::Ident && (t.text == "Instant" || t.text == "SystemTime") {
            emit(
                t.line,
                t.col,
                format!(
                    "`{}` reads the host clock; simulation code must use \
                     `SimTime` so runs are a pure function of (plan, seed)",
                    t.text
                ),
            );
        }
    }
}

fn run_env_read(tokens: &[Tok], emit: Emit<'_>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Only runtime reads are hazards: `std::env::...` or `env::var(...)`
        // through a re-export. The `env!`/`option_env!` macros resolve at
        // compile time (CARGO_MANIFEST_DIR etc.) and cannot vary per run.
        let flagged = t.text == "env" && {
            let after_std = i >= 2 && tokens[i - 2].is_ident("std") && tokens[i - 1].is_punct("::");
            let before_path = tokens.get(i + 1).is_some_and(|n| n.is_punct("::"));
            after_std || before_path
        };
        if flagged {
            emit(
                t.line,
                t.col,
                "environment read outside the config/CLI layer makes runs \
                 depend on host state; plumb the value through `SimConfig` \
                 or CLI options instead"
                    .to_owned(),
            );
        }
    }
}

fn run_panic_in_lib(tokens: &[Tok], emit: Emit<'_>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let is_method_call = i >= 1
                    && tokens[i - 1].is_punct(".")
                    && tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
                if is_method_call {
                    emit(
                        t.line,
                        t.col,
                        format!(
                            "`.{}()` panics in library code; return a \
                             `Result`/`Option` or document the invariant \
                             with an allow directive",
                            t.text
                        ),
                    );
                }
            }
            "panic" | "todo" | "unimplemented"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
            {
                emit(
                    t.line,
                    t.col,
                    format!(
                        "`{}!` aborts the caller; library code should \
                         surface an error value instead",
                        t.text
                    ),
                );
            }
            _ => {}
        }
    }
}

fn run_float_eq(tokens: &[Tok], emit: Emit<'_>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct || (t.text != "==" && t.text != "!=") {
            continue;
        }
        let prev_float = i >= 1 && tokens[i - 1].kind == TokKind::Float;
        // Allow one unary minus on the right-hand side: `x == -1.0`.
        let rhs = match tokens.get(i + 1) {
            Some(n) if n.is_punct("-") => tokens.get(i + 2),
            other => other,
        };
        let next_float = rhs.is_some_and(|n| n.kind == TokKind::Float);
        if prev_float || next_float {
            emit(
                t.line,
                t.col,
                format!(
                    "`{}` against a float literal is exact bit equality; \
                     compare with a tolerance, or allow with a reason if \
                     the exact comparison is intentional",
                    t.text
                ),
            );
        }
    }
}

fn run_unsafe_block(tokens: &[Tok], emit: Emit<'_>) {
    for t in tokens {
        if t.is_ident("unsafe") {
            emit(
                t.line,
                t.col,
                "`unsafe` voids the compiler's aliasing and initialization \
                 guarantees the determinism contract leans on; the \
                 simulation crates are `#![forbid(unsafe_code)]` territory"
                    .to_owned(),
            );
        }
    }
}

fn run_narrowing_as_cast(tokens: &[Tok], emit: Emit<'_>) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (i, t) in tokens.iter().enumerate() {
        if t.is_ident("as") {
            if let Some(target) = tokens.get(i + 1) {
                if target.kind == TokKind::Ident && NARROW.contains(&target.text.as_str()) {
                    emit(
                        t.line,
                        t.col,
                        format!(
                            "`as {}` can silently truncate a byte count in \
                             memory accounting; use `try_from` or widen the \
                             target type",
                            target.text
                        ),
                    );
                }
            }
        }
    }
}

/// Line ranges (1-based, inclusive) of `#[cfg(test)]` items, so rules with
/// `skip_test_code` can exempt in-file test modules. Handles attributes
/// stacked after the cfg and both `;`-terminated and brace-bodied items.
pub fn test_regions(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_cfg_test_at(tokens, i) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        let mut j = i + 7; // past `# [ cfg ( test ) ]`
                           // Skip any further attributes.
        while j < tokens.len() && tokens[j].is_punct("#") {
            let mut depth = 0usize;
            j += 1;
            while j < tokens.len() {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Consume one item: it ends at a `;` at depth zero, or at the close
        // of the first top-level `{ ... }` block.
        let mut end_line = start_line;
        let mut depth = 0i32;
        let mut saw_block = false;
        while j < tokens.len() {
            let t = &tokens[j];
            end_line = t.line;
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => {
                        depth += 1;
                        if t.text == "{" {
                            saw_block = true;
                        }
                    }
                    "}" | ")" | "]" => {
                        depth -= 1;
                        if depth == 0 && saw_block && t.text == "}" {
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

fn is_cfg_test_at(tokens: &[Tok], i: usize) -> bool {
    tokens.len() > i + 6
        && tokens[i].is_punct("#")
        && tokens[i + 1].is_punct("[")
        && tokens[i + 2].is_ident("cfg")
        && tokens[i + 3].is_punct("(")
        && tokens[i + 4].is_ident("test")
        && tokens[i + 5].is_punct(")")
        && tokens[i + 6].is_punct("]")
}

/// `true` if `line` falls inside any of `regions`.
pub fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn regions(src: &str) -> Vec<(u32, u32)> {
        test_regions(&lex(src).tokens)
    }

    #[test]
    fn cfg_test_mod_region() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() {}\n}\nfn after() {}";
        assert_eq!(regions(src), vec![(2, 5)]);
    }

    #[test]
    fn cfg_test_use_statement() {
        let src = "#[cfg(test)]\nuse super::*;\nfn live() {}";
        assert_eq!(regions(src), vec![(1, 2)]);
    }

    #[test]
    fn stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn helper() {\n  body();\n}\nfn live() {}";
        assert_eq!(regions(src), vec![(1, 5)]);
    }

    #[test]
    fn nested_braces_inside_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { if x { y(); } }\n}\nfn live() {}";
        assert_eq!(regions(src), vec![(1, 4)]);
        assert!(in_regions(&regions(src), 3));
        assert!(!in_regions(&regions(src), 5));
    }

    #[test]
    fn semicolon_inside_array_type_does_not_end_item() {
        let src = "#[cfg(test)]\nconst X: [u8; 4] = [0; 4];\nfn live() {}";
        assert_eq!(regions(src), vec![(1, 2)]);
    }

    #[test]
    fn cfg_not_test_is_ignored() {
        assert!(regions("#[cfg(unix)]\nfn f() {}").is_empty());
        assert!(regions("#[cfg(feature = \"test\")]\nfn f() {}").is_empty());
    }
}
