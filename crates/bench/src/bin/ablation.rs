//! Ablations for the design points DESIGN.md calls out:
//!
//! 1. **§5 negative conditions** — light load, equal memory demands, and
//!    big-job-dominant workloads, where V-Reconfiguration is predicted to
//!    help little (or to need its reservation cap).
//! 2. **Reserving-period end condition** — the paper's primary
//!    `AllJobsComplete` vs the §2.1 alternative `EnoughMemory`.
//! 3. **Pending-queue discipline** — the paper-faithful FIFO vs the
//!    backfilling baseline.
//! 4. **Fault-model shape** — linear vs quadratic overflow vs no faults.
//! 5. **Baseline policies** — no load sharing / random / CPU-only vs
//!    G-Loadsharing vs V-Reconfiguration on the blocking scenario.
//! 6. **Network speed** — 10 Mbps vs 1 Gbps migration costs (§5 point 4).
//! 7. **Suspension strawman** — the §1 alternative the paper rejects,
//!    with the fairness numbers that justify rejecting it.
//! 8. **Network RAM** — §2.3's escape hatch for jobs too big for any node.
//! 9. **Load-information staleness** — §6's first deployment concern:
//!    sensitivity to the exchange period.
//! 10. **Reservation cap** — sensitivity to `max_reserved_fraction`.
//! 11. **Heterogeneous cluster** — §2.3/§6: large-memory nodes preferred
//!     as reserved workstations.
//! 12. **Bursty fluctuation** — the conclusion's motivating scenario:
//!     ON/OFF workload bursts.
//! 13. **Thrashing protection (TPF)** — the paper's ref \[6] as an
//!     intra-node alternative/complement to reconfiguration.
//! 14. **Plugin families** — the registry's malleable (grow/shrink width
//!     directives) and fractional (oversubscribed slot cap) schedulers
//!     against the G-LS baseline.
//!
//! Every section's runs execute on the shared experiment runner
//! (`--jobs N`, `--no-cache`): scenarios go out as a sweep plan and come
//! back in plan order, so the tables are identical for any worker count.

use std::sync::Arc;

use vr_bench::{BenchArgs, SIM_SEED};
use vr_cluster::memory::FaultModel;
use vr_cluster::network::NetworkParams;
use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_metrics::table::{fmt_f, TextTable};
use vr_runner::{Runner, Scenario, SweepPlan};
use vr_simcore::rng::SimRng;
use vr_simcore::stats::reduction_pct;
use vr_workload::synth;
use vr_workload::trace::Trace;
use vrecon::config::{PendingDiscipline, ReservationOptions, ReservingEnd, SimConfig};
use vrecon::policy::PolicyKind;
use vrecon::report::RunReport;

fn cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(16);
    c
}

fn blocking_trace() -> Arc<Trace> {
    Arc::new(synth::blocking_scenario(16, Bytes::from_mb(128)))
}

/// Runs one section's scenarios as a sweep, returning reports in order.
fn sweep(runner: &Runner, scenarios: Vec<Scenario>) -> Vec<RunReport> {
    let plan: SweepPlan = scenarios.into_iter().collect();
    let outcome = runner.run(&plan);
    vr_bench::warn_truncated(outcome.results.iter().flatten());
    outcome.expect_reports()
}

fn base_config(policy: PolicyKind) -> SimConfig {
    SimConfig::new(cluster(), policy).with_seed(SIM_SEED)
}

fn main() {
    let runner = BenchArgs::from_env().runner(true);
    negative_conditions(&runner);
    end_condition(&runner);
    pending_discipline(&runner);
    fault_model(&runner);
    baselines(&runner);
    network_speed(&runner);
    suspension_fairness(&runner);
    network_ram(&runner);
    staleness(&runner);
    reservation_cap(&runner);
    heterogeneous(&runner);
    bursty_fluctuation(&runner);
    thrashing_protection(&runner);
    plugin_families(&runner);
}

/// §5's three negative conditions: V-R should gain little (adaptively doing
/// nothing) instead of hurting.
fn negative_conditions(runner: &Runner) {
    println!("ablation 1 — §5 negative conditions (16-node cluster 2)\n");
    let rng = SimRng::seed_from(3);
    let workloads = [
        (
            "light-load",
            Arc::new(synth::light_load(40, &mut rng.fork(0))),
        ),
        (
            "equal-memory",
            Arc::new(synth::equal_memory(
                160,
                Bytes::from_mb(60),
                &mut rng.fork(1),
            )),
        ),
        (
            "big-dominant-70pct",
            Arc::new(synth::big_job_dominant(
                160,
                Bytes::from_mb(128),
                0.7,
                &mut rng.fork(2),
            )),
        ),
        ("blocking (positive control)", blocking_trace()),
    ];
    let reports = sweep(
        runner,
        workloads
            .iter()
            .flat_map(|(_, trace)| {
                [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration]
                    .map(|policy| Scenario::new(base_config(policy), Arc::clone(trace)))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "workload",
        "G-LS slowdown",
        "V-R slowdown",
        "reduction",
        "reservations",
        "served",
    ]);
    for ((name, _), pair) in workloads.iter().zip(reports.chunks_exact(2)) {
        let [gls, vr] = pair else { unreachable!() };
        table.row(vec![
            (*name).to_owned(),
            fmt_f(gls.avg_slowdown(), 2),
            fmt_f(vr.avg_slowdown(), 2),
            format!(
                "{:.1}%",
                reduction_pct(gls.avg_slowdown(), vr.avg_slowdown())
            ),
            vr.reservations.started.to_string(),
            vr.reservations.jobs_served.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// §2.1's two reserving-period end conditions.
fn end_condition(runner: &Runner) {
    println!("ablation 2 — reserving-period end condition (blocking scenario)\n");
    let trace = blocking_trace();
    let cases = [
        ("AllJobsComplete", ReservingEnd::AllJobsComplete),
        ("EnoughMemory", ReservingEnd::EnoughMemory),
    ];
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(_, end)| {
                let config = base_config(PolicyKind::VReconfiguration).with_reservation(
                    ReservationOptions {
                        end_condition: *end,
                        ..ReservationOptions::default()
                    },
                );
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "end condition",
        "avg slowdown",
        "T_que (s)",
        "reservations",
        "served",
        "timed out",
    ]);
    for ((name, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.total_queue_secs(), 0),
            report.reservations.started.to_string(),
            report.reservations.jobs_served.to_string(),
            report.reservations.timed_out.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// FIFO ("submissions blocked") vs backfill pending queues.
fn pending_discipline(runner: &Runner) {
    println!("ablation 3 — pending-queue discipline (blocking scenario)\n");
    let trace = blocking_trace();
    let mut cases = Vec::new();
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        for (name, d) in [
            ("fifo", PendingDiscipline::Fifo),
            ("backfill", PendingDiscipline::Backfill),
        ] {
            cases.push((policy, name, d));
        }
    }
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(policy, _, d)| {
                let mut config = base_config(*policy);
                config.pending_discipline = *d;
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "policy",
        "discipline",
        "avg slowdown",
        "T_que (s)",
        "blocked submissions",
    ]);
    for ((policy, name, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            policy.to_string(),
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.total_queue_secs(), 0),
            report.counters.blocked_submissions.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// Linear vs quadratic vs disabled page-fault models.
fn fault_model(runner: &Runner) {
    println!("ablation 4 — page-fault model shape (blocking scenario, V-R)\n");
    let trace = blocking_trace();
    let cases = [
        ("linear k=4", FaultModel::LinearOverflow { kappa: 4.0 }),
        ("linear k=8", FaultModel::LinearOverflow { kappa: 8.0 }),
        (
            "quadratic k=4",
            FaultModel::QuadraticOverflow { kappa: 4.0 },
        ),
        ("off", FaultModel::Off),
    ];
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(_, model)| {
                let mut config = base_config(PolicyKind::VReconfiguration);
                for node in &mut config.cluster.nodes {
                    node.fault_model = *model;
                }
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec!["fault model", "avg slowdown", "T_page (s)"]);
    for ((name, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.summary.totals.page, 0),
        ]);
    }
    println!("{}", table.render());
}

/// All five policies on the blocking scenario.
fn baselines(runner: &Runner) {
    println!("ablation 5 — policy baselines (blocking scenario)\n");
    let trace = blocking_trace();
    let reports = sweep(
        runner,
        PolicyKind::ALL
            .into_iter()
            .map(|policy| Scenario::new(base_config(policy), Arc::clone(&trace)))
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "policy",
        "avg slowdown",
        "T_exe (s)",
        "T_que (s)",
        "migrations",
    ]);
    for (policy, report) in PolicyKind::ALL.into_iter().zip(&reports) {
        table.row(vec![
            policy.to_string(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.total_execution_secs(), 0),
            fmt_f(report.total_queue_secs(), 0),
            (report.counters.overload_migrations + report.counters.reserved_migrations).to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// §1's rejected alternative: suspension resolves blocking for the small
/// jobs but starves the large ones under a sustained flow.
fn suspension_fairness(runner: &Runner) {
    println!("ablation 7 — suspension strawman vs reconfiguration (sustained blocking)\n");
    // Extend the blocking scenario's filler stream threefold so submissions
    // "continue to flow" for several multiples of a giant's runtime.
    let base = blocking_trace();
    let mut jobs = base.jobs.clone();
    let fillers: Vec<_> = base
        .jobs
        .iter()
        .filter(|j| j.name == "filler")
        .cloned()
        .collect();
    for round in 1..=3u64 {
        for f in &fillers {
            let mut j = f.clone();
            j.submit += vr_simcore::time::SimSpan::from_secs(1040 * round);
            jobs.push(j);
        }
    }
    jobs.sort_by_key(|j| j.submit);
    for (i, j) in jobs.iter_mut().enumerate() {
        j.id = vr_cluster::job::JobId(i as u64);
    }
    let trace = Arc::new(Trace {
        name: "Synth-Blocking-Sustained".into(),
        jobs,
    });
    let policies = [
        PolicyKind::GLoadSharing,
        PolicyKind::SuspendLargest,
        PolicyKind::VReconfiguration,
    ];
    let reports = sweep(
        runner,
        policies
            .iter()
            .map(|&policy| Scenario::new(base_config(policy), Arc::clone(&trace)))
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "policy",
        "overall slowdown",
        "giant slowdown",
        "filler slowdown",
        "Jain fairness",
        "suspensions/reservations",
    ]);
    for (policy, report) in policies.into_iter().zip(&reports) {
        let mean = |name: &str| {
            let v: Vec<f64> = report
                .jobs
                .iter()
                .filter(|j| j.spec.name == name)
                .map(|j| j.slowdown())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let slowdowns: Vec<f64> = report.jobs.iter().map(|j| j.slowdown()).collect();
        table.row(vec![
            policy.to_string(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(mean("giant"), 2),
            fmt_f(mean("filler"), 2),
            fmt_f(vr_metrics::fairness::jain_index(&slowdowns), 3),
            format!(
                "{}/{}",
                report.counters.suspensions, report.reservations.started
            ),
        ]);
    }
    println!("{}", table.render());
}

/// §2.3 / ref \[12]: serving page faults from remote idle memory.
fn network_ram(runner: &Runner) {
    println!("ablation 8 — network RAM (blocking scenario)\n");
    let trace = blocking_trace();
    let cases = [
        ("G-LS, local disk", false, PolicyKind::GLoadSharing),
        ("G-LS + network RAM", true, PolicyKind::GLoadSharing),
        ("V-R, local disk", false, PolicyKind::VReconfiguration),
        ("V-R + network RAM", true, PolicyKind::VReconfiguration),
    ];
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(_, netram, policy)| {
                let mut config = base_config(*policy);
                if *netram {
                    config = config.with_network_ram();
                }
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec!["configuration", "avg slowdown", "T_page (s)"]);
    for ((name, _, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.summary.totals.page, 0),
        ]);
    }
    println!("{}", table.render());
}

/// §6 deployment concern 1: "the globally shared load information ...
/// needs to be delivered timely and consistently."
fn staleness(runner: &Runner) {
    println!("ablation 9 — load-information exchange period (blocking scenario, V-R)\n");
    let trace = blocking_trace();
    let periods = [1u64, 5, 15, 30];
    let reports = sweep(
        runner,
        periods
            .iter()
            .map(|&secs| {
                let mut config = base_config(PolicyKind::VReconfiguration);
                config.cluster.load_exchange_period = vr_simcore::time::SimSpan::from_secs(secs);
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "exchange period",
        "avg slowdown",
        "stale bounces",
        "blocking detections",
    ]);
    for (secs, report) in periods.into_iter().zip(&reports) {
        table.row(vec![
            format!("{secs}s"),
            fmt_f(report.avg_slowdown(), 2),
            report.counters.stale_rejections.to_string(),
            report.counters.blocking_detections.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// Sensitivity to the reservation cap (§2.2 point 4's protection knob).
fn reservation_cap(runner: &Runner) {
    println!("ablation 10 — max reserved fraction (blocking scenario, V-R)\n");
    let trace = blocking_trace();
    let fractions = [0.0625, 0.125, 0.25, 0.5];
    let reports = sweep(
        runner,
        fractions
            .iter()
            .map(|&frac| {
                let config = base_config(PolicyKind::VReconfiguration).with_reservation(
                    ReservationOptions {
                        max_reserved_fraction: frac,
                        ..ReservationOptions::default()
                    },
                );
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "max fraction",
        "avg slowdown",
        "reservations",
        "served",
    ]);
    for (frac, report) in fractions.into_iter().zip(&reports) {
        table.row(vec![
            format!("{frac}"),
            fmt_f(report.avg_slowdown(), 2),
            report.reservations.started.to_string(),
            report.reservations.jobs_served.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// §2.3/§6: on a heterogeneous cluster the reservation candidate rule
/// (largest idle memory) steers special service to the big-memory nodes.
fn heterogeneous(runner: &Runner) {
    println!("ablation 11 — heterogeneous cluster (4 x 384MB + 12 x 128MB nodes)\n");
    let cluster = ClusterParams::heterogeneous(16, 4);
    let trace = blocking_trace();
    let policies = [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration];
    let reports = sweep(
        runner,
        policies
            .iter()
            .map(|&policy| {
                Scenario::new(
                    SimConfig::new(cluster.clone(), policy).with_seed(SIM_SEED),
                    Arc::clone(&trace),
                )
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "policy",
        "avg slowdown",
        "admissions/big node",
        "admissions/small node",
        "reservations",
    ]);
    for (policy, report) in policies.into_iter().zip(&reports) {
        let big: u64 = report.node_counters[..4].iter().map(|c| c.admitted).sum();
        let small: u64 = report.node_counters[4..].iter().map(|c| c.admitted).sum();
        table.row(vec![
            policy.to_string(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(big as f64 / 4.0, 1),
            fmt_f(small as f64 / 12.0, 1),
            report.reservations.started.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// The conclusion's motivation: accommodating workload fluctuation.
fn bursty_fluctuation(runner: &Runner) {
    println!("ablation 12 — bursty ON/OFF workload (group-2 programs, 16 nodes)\n");
    let mut rng = SimRng::seed_from(5);
    let trace = Arc::new(synth::bursty(240, &mut rng));
    let policies = [
        PolicyKind::CpuOnly,
        PolicyKind::GLoadSharing,
        PolicyKind::VReconfiguration,
    ];
    let reports = sweep(
        runner,
        policies
            .iter()
            .map(|&policy| Scenario::new(base_config(policy), Arc::clone(&trace)))
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "policy",
        "avg slowdown",
        "p95 slowdown",
        "T_que (s)",
        "reservations",
    ]);
    for (policy, report) in policies.into_iter().zip(&reports) {
        table.row(vec![
            policy.to_string(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.summary.p95_slowdown, 2),
            fmt_f(report.total_queue_secs(), 0),
            report.reservations.started.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// Ref \[6]: intra-node thrashing protection, alone and composed with the
/// paper's inter-node reconfiguration.
fn thrashing_protection(runner: &Runner) {
    use vr_cluster::protection::ThrashingProtection;
    println!("ablation 13 — thrashing protection (TPF, ref [6]) on the blocking scenario\n");
    let trace = blocking_trace();
    let mut cases = Vec::new();
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        for (name, protection) in [
            ("off", ThrashingProtection::Off),
            ("protect-largest", ThrashingProtection::ProtectLargest),
            (
                "protect-shortest",
                ThrashingProtection::ProtectShortestRemaining,
            ),
        ] {
            cases.push((policy, name, protection));
        }
    }
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(policy, _, protection)| {
                let mut config = base_config(*policy);
                for node in &mut config.cluster.nodes {
                    node.protection = *protection;
                }
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec!["policy", "protection", "avg slowdown", "T_page (s)"]);
    for ((policy, name, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            policy.to_string(),
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.summary.totals.page, 0),
        ]);
    }
    println!("{}", table.render());
}

/// The plugin-registry families: malleable width adaptation and fractional
/// oversubscription, against the G-LS baseline on the blocking scenario.
fn plugin_families(runner: &Runner) {
    use vr_cluster::job::MalleableSpec;
    use vrecon::plugin::ParamBag;
    println!("ablation 14 — plugin families (malleable & fractional, slot-pressure burst)\n");
    // The blocking scenario is memory-bound — its slot caps never bind, so
    // fractional oversubscription would be a no-op there. This section uses
    // a CPU-bound burst instead: 96 small jobs land on 4 nodes (32 hardware
    // slots) in under a minute, so admission is slot-limited and the two
    // families' levers actually engage. Every other job gets a 1..=3 width
    // range so the malleable policy has room to act; other configurations
    // run the same trace unchanged (widths start at min and only the
    // resize hook moves them).
    let jobs: Vec<_> = (0..96u64)
        .map(|i| {
            let mut spec = vr_cluster::job::JobSpec {
                id: vr_cluster::job::JobId(i),
                name: format!("burst-{i}"),
                class: vr_cluster::job::JobClass::CpuIntensive,
                submit: vr_simcore::time::SimTime::from_millis(i * 500),
                cpu_work: vr_simcore::time::SimSpan::from_secs(300),
                memory: vr_cluster::job::MemoryProfile::constant(Bytes::from_mb(4)),
                io_rate: 0.0,
                malleable: None,
            };
            if i % 2 == 0 {
                spec.malleable = Some(MalleableSpec {
                    min_width: 1,
                    max_width: 3,
                });
            }
            spec
        })
        .collect();
    let trace = Arc::new(Trace {
        name: "Synth-SlotBurst".into(),
        jobs,
    });
    let mut small = ClusterParams::cluster2();
    small.nodes.truncate(4);
    let cases: Vec<(&str, PolicyKind, ParamBag)> = vec![
        ("G-LS baseline", PolicyKind::GLoadSharing, ParamBag::new()),
        ("malleable step=1", PolicyKind::Malleable, ParamBag::new()),
        (
            "malleable step=2",
            PolicyKind::Malleable,
            ParamBag::new().with("max_step", 2u32),
        ),
        (
            "fractional 1.5x",
            PolicyKind::Fractional,
            ParamBag::new().with("oversub", 1.5),
        ),
        ("fractional 2x", PolicyKind::Fractional, ParamBag::new()),
    ];
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(_, policy, bag)| {
                let config = SimConfig::new(small.clone(), *policy)
                    .with_policy_params(bag.clone())
                    .with_seed(SIM_SEED);
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec![
        "configuration",
        "avg slowdown",
        "T_que (s)",
        "grows/shrinks",
        "blocked submissions",
    ]);
    for ((name, _, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.total_queue_secs(), 0),
            format!("{}/{}", report.counters.grows, report.counters.shrinks),
            report.counters.blocked_submissions.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// §5 point 4: "As high speed networks become widely used in clusters, the
/// migration time ... becomes less crucial."
fn network_speed(runner: &Runner) {
    println!("ablation 6 — interconnect speed (blocking scenario, V-R)\n");
    let trace = blocking_trace();
    let cases = [
        ("10 Mbps Ethernet", NetworkParams::ethernet_10mbps()),
        ("1 Gbps Ethernet", NetworkParams::ethernet_1gbps()),
    ];
    let reports = sweep(
        runner,
        cases
            .iter()
            .map(|(_, net)| {
                let mut config = base_config(PolicyKind::VReconfiguration);
                config.cluster.network = *net;
                Scenario::new(config, Arc::clone(&trace))
            })
            .collect(),
    );
    let mut table = TextTable::new(vec!["network", "avg slowdown", "T_mig (s)"]);
    for ((name, _), report) in cases.iter().zip(&reports) {
        table.row(vec![
            (*name).to_owned(),
            fmt_f(report.avg_slowdown(), 2),
            fmt_f(report.summary.totals.migration, 0),
        ]);
    }
    println!("{}", table.render());
}
