//! The reserved-workstation FIFO queuing model of §5.
//!
//! For reserved workstation `k` serving `Q_r(k)` migrated jobs in arrival
//! order, with `w_kj` the interval between job `j+1`'s arrival and job `j`'s
//! completion, the paper bounds the queuing time contributed by the
//! workstation:
//!
//! ```text
//! g(Q_r(k)) ≤ Σ_{j=1}^{Q_r(k)} (Q_r(k) − j) · w_kj
//! ```
//!
//! and observes that the bound "is minimized if `w_k1 < w_k2 < … <
//! w_kQr(k)`" — serving shorter waits first, the shortest-remaining-
//! processing-time principle the reconfiguration implicitly applies.

/// The right-hand side of the paper's bound: `Σ (Q − j) · w_j` for waits
/// `w_1..w_Q` in service order (`j` is 1-based).
///
/// Waits must be non-negative.
///
/// # Panics
///
/// Panics if any wait is negative or NaN.
pub fn reserved_queue_bound(waits: &[f64]) -> f64 {
    let q = waits.len();
    waits
        .iter()
        .enumerate()
        .map(|(idx, w)| {
            assert!(w.is_finite() && *w >= 0.0, "wait {w} must be non-negative");
            (q - (idx + 1)) as f64 * w
        })
        .sum()
}

/// Exact FIFO queuing time for jobs served sequentially with the given
/// service times: job `j` waits for the completion of jobs `1..j`.
pub fn fifo_queue_time(service_times: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut elapsed = 0.0;
    for s in service_times {
        total += elapsed;
        elapsed += s;
    }
    total
}

/// The service order of `waits` that minimizes
/// [`reserved_queue_bound`]: ascending (§5's `w_k1 < w_k2 < …` condition).
pub fn minimizing_order(waits: &[f64]) -> Vec<f64> {
    let mut sorted = waits.to_vec();
    // vr-lint::allow(panic-in-lib, reason = "comparator contract: wait estimates are finite queueing-formula outputs, never NaN")
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("waits are never NaN"));
    sorted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_weights_early_jobs_most() {
        // Q = 3: weights are (2, 1, 0).
        assert_eq!(reserved_queue_bound(&[10.0, 20.0, 30.0]), 2.0 * 10.0 + 20.0);
        assert_eq!(reserved_queue_bound(&[]), 0.0);
        assert_eq!(reserved_queue_bound(&[5.0]), 0.0);
    }

    #[test]
    fn ascending_order_minimizes_the_bound() {
        let waits = [30.0, 5.0, 12.0, 44.0, 1.0];
        let ascending = minimizing_order(&waits);
        let best = reserved_queue_bound(&ascending);
        // Check against every permutation of this small set.
        let mut perm = waits.to_vec();
        let mut checked = 0;
        permutohedron_heap(&mut perm, &mut |p| {
            assert!(
                reserved_queue_bound(p) >= best - 1e-9,
                "permutation {p:?} beats ascending order"
            );
            checked += 1;
        });
        assert_eq!(checked, 120);
    }

    /// Minimal Heap's-algorithm permutation visitor (test-only helper).
    fn permutohedron_heap(items: &mut Vec<f64>, visit: &mut impl FnMut(&[f64])) {
        fn heap(k: usize, items: &mut Vec<f64>, visit: &mut impl FnMut(&[f64])) {
            if k == 1 {
                visit(items);
                return;
            }
            for i in 0..k {
                heap(k - 1, items, visit);
                if k.is_multiple_of(2) {
                    items.swap(i, k - 1);
                } else {
                    items.swap(0, k - 1);
                }
            }
        }
        let k = items.len();
        heap(k, items, visit);
    }

    #[test]
    fn fifo_queue_time_accumulates_predecessors() {
        // Services 10, 20, 30: waits 0, 10, 30 → total 40.
        assert_eq!(fifo_queue_time(&[10.0, 20.0, 30.0]), 40.0);
        assert_eq!(fifo_queue_time(&[]), 0.0);
        assert_eq!(fifo_queue_time(&[7.0]), 0.0);
    }

    #[test]
    fn srpt_ordering_reduces_fifo_queue_time() {
        // The SRPT principle the reconfiguration leans on: shortest first
        // minimizes total waiting.
        let descending = [30.0, 20.0, 10.0];
        let ascending = [10.0, 20.0, 30.0];
        assert!(fifo_queue_time(&ascending) < fifo_queue_time(&descending));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wait_panics() {
        reserved_queue_bound(&[-1.0]);
    }
}
