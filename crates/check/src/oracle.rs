//! The naive reference oracle.
//!
//! [`run_oracle`] re-implements the paper's memory/queueing model from the
//! written semantics, *without* the engine's machinery: there is no
//! [`vr_simcore::event::EventQueue`] (pending events live in a plain `Vec`
//! scanned linearly for the `(time, seq)` minimum), no
//! [`vr_cluster::loadinfo::LoadIndex`] (the load snapshot is a rebuilt-from-
//! scratch `Vec` of plain structs), no
//! [`vrecon::reservation::ReservationManager`] (reservations are a `Vec`
//! with linear scans), and no [`vr_cluster::node::Workstation`] (nodes are a
//! private struct whose advance loop is written against the documented
//! service model). Every lookup is a linear scan — O(n²) per event by
//! design — so a bug in the engine's clever structures (heap compaction,
//! binary-searched index, epoch bookkeeping) cannot hide in the oracle.
//!
//! What the oracle *does* share with the engine, deliberately:
//!
//! * the input types ([`SimConfig`], [`Trace`], `JobSpec`, `MemoryProfile`)
//!   and the output type ([`RunReport`]) — a differential test needs a
//!   common language at the boundary;
//! * [`vr_simcore::rng::SimRng`] and [`vr_faults::FaultInjector`] — the
//!   random *streams* are part of the scenario definition, not of the
//!   implementation under test: both sides must see the same homes, the
//!   same random placements, and the same injected faults, or every run
//!   would diverge trivially;
//! * the floating-point *formulas* of the service model (documented in
//!   `cpu.rs` / `memory.rs`), re-stated here operation-for-operation so the
//!   two implementations agree bit-for-bit where they should.
//!
//! Everything the engine models is in scope: network RAM (the
//! remote-backing stall scale is re-derived at every snapshot refresh,
//! mirroring the engine's pass), thrashing protection (the shared
//! redistribution formula is applied to independently computed raw stalls,
//! in the same operation order as the engine's `fill_rates`), and the
//! plugin families — malleable resize directives are restated from the
//! policy's documented selection rules, and fractional slot caps are
//! re-derived from the parameter bag at construction.

use vr_cluster::job::{JobId, JobSpec, JobState, RunningJob};
use vr_cluster::memory::FaultModel;
use vr_cluster::node::{NodeCounters, NodeParams};
use vr_cluster::protection::ThrashingProtection;
use vr_cluster::units::Bytes;
use vr_faults::FaultInjector;
use vr_metrics::sampler::{balance_skew, ClusterGauges};
use vr_metrics::summary::WorkloadSummary;
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};
use vr_workload::trace::Trace;
use vrecon::config::{PendingDiscipline, ReservingEnd, SimConfig};
use vrecon::plugin::{FractionalParams, MalleableParams};
use vrecon::policy::PolicyKind;
use vrecon::report::{RunReport, SchedulerCounters};
use vrecon::reservation::ReservationStats;

/// Test-only fault injection *into the oracle itself*: proves the
/// differential harness actually fails on a mismatch (a differ that never
/// fires is indistinguishable from a correct engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OracleSkew {
    /// The faithful oracle.
    #[default]
    None,
    /// Off-by-one: every completion timestamp is reported one microsecond
    /// late. Any scenario that completes at least one job diverges, so the
    /// shrinker can reduce reproducers to a single job on a single node.
    CompletionOffByOne,
}

/// Same numeric constant as the engine's integration loop: progress below
/// this many seconds is noise.
const EPS: f64 = 1e-9;
/// Same boundary guard as the engine: a phase boundary closer than this to
/// the current progress is treated as already crossed.
const BOUNDARY_EPS: f64 = 1e-6;
/// One job may be suspended at most this many times (Suspend-Largest).
const MAX_SUSPENSIONS_PER_JOB: u32 = 5;

/// Events, mirroring the scheduler's event alphabet. The oracle stores them
/// in an unsorted `Vec` and pops the `(time, seq)` minimum by linear scan.
enum Ev {
    Arrival(Box<JobSpec>),
    NodeWake { node: u32, epoch: u64 },
    Exchange,
    Sample,
    PendingRetry,
    TransitArrive { job: JobId },
    NodeCrash { node: u32 },
    NodeRestart { node: u32 },
    ReservationUnstall { node: u32 },
}

/// A workstation, re-implemented. Jobs are kept in admission order and
/// removed with `swap_remove`, matching the service-order contract the
/// engine documents (per-job shares depend only on the resident set, but
/// f64 accumulation order follows the vector order).
struct ONode {
    id: u32,
    params: NodeParams,
    jobs: Vec<RunningJob>,
    last_update: SimTime,
    epoch: u64,
    reserved: bool,
    up: bool,
    outbox: Vec<RunningJob>,
    counters: NodeCounters,
    /// Network-RAM stall multiplier, re-derived at every snapshot refresh
    /// (see [`Oracle::update_network_ram`]); 1.0 when the extension is off
    /// or the node's overflow cannot be remotely backed.
    stall_scale: f64,
    /// Effective admission ceiling in slots: the hardware slot count for
    /// every policy except the fractional family, which oversubscribes it.
    /// Fixed at construction — the oracle has no resize-the-cap path.
    slot_cap: u32,
}

impl ONode {
    fn demand(&self) -> Bytes {
        self.jobs.iter().map(|j| j.current_working_set()).sum()
    }

    fn idle_memory(&self) -> Bytes {
        self.params.memory.user.saturating_sub(self.demand())
    }

    fn overflow(&self) -> Bytes {
        self.demand().saturating_sub(self.params.memory.user)
    }

    /// Slots consumed by the resident set: the sum of job widths, recounted
    /// by linear scan on every query (classic jobs are width 1).
    fn used_slots(&self) -> u32 {
        self.jobs.iter().map(|j| j.width).sum()
    }

    fn has_slot(&self) -> bool {
        self.used_slots() < self.slot_cap
    }

    fn can_admit(&self, job: &RunningJob) -> bool {
        self.up
            && !self.reserved
            && self.used_slots() + job.width <= self.slot_cap
            && self.demand() + job.current_working_set() <= self.params.memory.capacity_limit()
    }

    fn try_admit(&mut self, mut job: RunningJob, now: SimTime) -> Result<(), Box<RunningJob>> {
        self.advance_to(now);
        if !self.can_admit(&job) {
            return Err(Box::new(job));
        }
        job.state = JobState::Running;
        self.jobs.push(job);
        self.counters.admitted += 1;
        self.epoch += 1;
        Ok(())
    }

    /// Special-service admission: skips the reservation check but keeps the
    /// slot and capacity ceilings.
    fn admit_to_reserved(
        &mut self,
        mut job: RunningJob,
        now: SimTime,
    ) -> Result<(), Box<RunningJob>> {
        self.advance_to(now);
        if !self.up
            || self.used_slots() + job.width > self.slot_cap
            || self.demand() + job.current_working_set() > self.params.memory.capacity_limit()
        {
            return Err(Box::new(job));
        }
        job.state = JobState::Running;
        self.jobs.push(job);
        self.counters.admitted += 1;
        self.epoch += 1;
        Ok(())
    }

    fn remove_job(&mut self, id: JobId, now: SimTime) -> Option<RunningJob> {
        self.advance_to(now);
        let idx = self.jobs.iter().position(|j| j.id() == id)?;
        let job = self.jobs.swap_remove(idx);
        self.counters.migrated_out += 1;
        self.epoch += 1;
        Some(job)
    }

    fn set_reserved(&mut self, reserved: bool) {
        if self.reserved != reserved {
            self.reserved = reserved;
            self.epoch += 1;
        }
    }

    fn crash(&mut self, now: SimTime) -> Vec<RunningJob> {
        self.advance_to(now);
        self.up = false;
        self.reserved = false;
        self.epoch += 1;
        std::mem::take(&mut self.jobs)
    }

    fn restart(&mut self, now: SimTime) {
        if self.up {
            return;
        }
        self.last_update = self.last_update.max(now);
        self.up = true;
        self.epoch += 1;
    }

    /// Per-job stall factors under the documented paging model
    /// (`s_j = κ_eff · w_j / w̄`, κ_eff linear or quadratic in the relative
    /// overflow), restated independently of `FaultModel::stall_factors`.
    ///
    /// Operation order mirrors the engine's `fill_rates` exactly: raw
    /// per-job stalls first, then the thrashing-protection redistribution
    /// over the raw values, then the network-RAM scale over the result —
    /// so the f64 outputs stay bit-identical.
    fn stall_factors(&self) -> Vec<f64> {
        let k = self.jobs.len();
        if k == 0 {
            return Vec::new();
        }
        let working_sets: Vec<Bytes> = self.jobs.iter().map(|j| j.current_working_set()).collect();
        let user = self.params.memory.user;
        let total: Bytes = working_sets.iter().copied().sum();
        let overflow = total.saturating_sub(user);
        let mut stalls = if overflow.is_zero() || total.is_zero() {
            // All-zero raw stalls: protection redistributes nothing and the
            // scale multiplies zeros, so both later passes are no-ops by
            // construction — mirroring the engine, which still runs them.
            vec![0.0; k]
        } else {
            match self.params.fault_model {
                FaultModel::Off => vec![0.0; k],
                FaultModel::LinearOverflow { kappa } => {
                    let kappa_eff = kappa * (overflow.as_u64() as f64 / user.as_u64() as f64);
                    let mean_ws = total.as_u64() as f64 / k as f64;
                    working_sets
                        .iter()
                        .map(|w| kappa_eff * (w.as_u64() as f64 / mean_ws))
                        .collect()
                }
                FaultModel::QuadraticOverflow { kappa } => {
                    let rho = overflow.as_u64() as f64 / user.as_u64() as f64;
                    let kappa_eff = kappa * rho * rho;
                    let mean_ws = total.as_u64() as f64 / k as f64;
                    working_sets
                        .iter()
                        .map(|w| kappa_eff * (w.as_u64() as f64 / mean_ws))
                        .collect()
                }
            }
        };
        if self.params.protection != ThrashingProtection::Off {
            // The redistribution arithmetic is shared with the engine the
            // same way the service-model formulas are: it is part of the
            // documented model, not of the machinery under test.
            let remaining: Vec<f64> = self.jobs.iter().map(|j| j.remaining_secs()).collect();
            self.params
                .protection
                .apply(&mut stalls, &working_sets, &remaining);
        }
        // vr-lint::allow(float-eq, reason = "sentinel check mirroring the engine: 1.0 is assigned verbatim, never computed")
        if self.stall_scale != 1.0 {
            for s in &mut stalls {
                *s *= self.stall_scale;
            }
        }
        stalls
    }

    /// Per-job progress rates: an equal CPU share degraded by context-switch
    /// efficiency, divided by `1 + stall` (restated from the documented
    /// round-robin model).
    fn rates_and_stalls(&self) -> (Vec<f64>, Vec<f64>) {
        let stalls = self.stall_factors();
        let k = stalls.len();
        if k == 0 {
            return (Vec::new(), stalls);
        }
        let q = self.params.cpu.quantum.as_secs_f64();
        let cs = self.params.cpu.context_switch.as_secs_f64();
        let total_width: u32 = self.jobs.iter().map(|j| j.width).sum();
        let rates = if total_width as usize == k {
            // All widths 1 (classic policies): the historical arithmetic.
            let efficiency = if k <= 1 || q + cs <= 0.0 {
                1.0
            } else {
                q / (q + cs)
            };
            let share = self.params.cpu.speed * efficiency / k as f64;
            stalls.iter().map(|s| share / (1.0 + s)).collect()
        } else {
            // Width-aware restatement: a width-w job holds w of the
            // W = Σ widths logical slots, so it gets w equal shares of the
            // processor-sharing rate at multiprogramming level W.
            let w_total = total_width as usize;
            let efficiency = if w_total <= 1 || q + cs <= 0.0 {
                1.0
            } else {
                q / (q + cs)
            };
            let share = self.params.cpu.speed * efficiency / w_total as f64;
            stalls
                .iter()
                .zip(&self.jobs)
                .map(|(s, j)| share * j.width as f64 / (1.0 + s))
                .collect()
        };
        (rates, stalls)
    }

    /// Piecewise integration of the resident set up to `now`, segment by
    /// segment: each segment ends at the earliest completion or memory-phase
    /// boundary, every job accrues `rate·dt` CPU seconds plus the matching
    /// page-stall and queue shares, completed jobs move to the outbox.
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let mut remaining = (now - self.last_update).as_secs_f64();
        while remaining > EPS && !self.jobs.is_empty() {
            let (rates, stalls) = self.rates_and_stalls();
            let mut dt = remaining;
            for (i, job) in self.jobs.iter().enumerate() {
                if rates[i] <= 0.0 {
                    continue;
                }
                let to_completion = job.remaining_secs() / rates[i];
                dt = dt.min(to_completion);
                if let Some(boundary) = job.spec.memory.next_boundary_after(job.progress()) {
                    let gap = boundary.as_secs_f64() - job.progress_secs;
                    if gap > BOUNDARY_EPS {
                        dt = dt.min(gap / rates[i]);
                    }
                }
            }
            let dt = dt.max(0.0);
            for (i, job) in self.jobs.iter_mut().enumerate() {
                let cpu = rates[i] * dt;
                let page = cpu * stalls[i];
                let queue = (dt - cpu - page).max(0.0);
                job.progress_secs += cpu;
                job.breakdown.cpu += cpu;
                job.breakdown.page += page;
                job.breakdown.queue += queue;
                self.counters.delivered_cpu += cpu;
                self.counters.page_stall += page;
                self.counters.io_ops += cpu * job.spec.io_rate;
            }
            remaining -= dt;
            let completion_time = now - SimSpan::from_secs_f64(remaining.max(0.0));
            let mut collected = 0usize;
            let mut i = 0;
            while i < self.jobs.len() {
                if self.jobs[i].remaining_secs() <= EPS {
                    let mut done = self.jobs.swap_remove(i);
                    done.state = JobState::Completed;
                    done.completed_at = Some(completion_time);
                    done.progress_secs = done.spec.cpu_work.as_secs_f64();
                    self.counters.completed += 1;
                    self.outbox.push(done);
                    self.epoch += 1;
                    collected += 1;
                } else {
                    i += 1;
                }
            }
            if dt <= EPS && collected == 0 && !self.jobs.is_empty() {
                break;
            }
        }
        self.last_update = now;
    }

    /// Delay until this node's next completion or phase boundary.
    fn next_event_in(&self) -> Option<SimSpan> {
        if self.jobs.is_empty() {
            return None;
        }
        let (rates, _) = self.rates_and_stalls();
        let mut earliest = f64::INFINITY;
        for (i, job) in self.jobs.iter().enumerate() {
            if rates[i] <= 0.0 {
                continue;
            }
            earliest = earliest.min(job.remaining_secs() / rates[i]);
            if let Some(boundary) = job.spec.memory.next_boundary_after(job.progress()) {
                let gap = boundary.as_secs_f64() - job.progress_secs;
                if gap > BOUNDARY_EPS {
                    earliest = earliest.min(gap / rates[i]);
                }
            }
        }
        if earliest.is_finite() {
            Some(SimSpan::from_secs_f64(earliest.max(0.0)))
        } else {
            None
        }
    }

    /// The most memory-intensive resident job (ties broken toward the
    /// smaller id).
    fn most_memory_intensive(&self) -> Option<&RunningJob> {
        self.jobs
            .iter()
            .max_by_key(|j| (j.current_working_set(), std::cmp::Reverse(j.id())))
    }
}

/// One load-snapshot entry, rebuilt from scratch on every refresh.
#[derive(Clone, Copy)]
struct OLoad {
    node: u32,
    active_jobs: usize,
    idle_memory: Bytes,
    has_slot: bool,
    reserved: bool,
    up: bool,
    user_memory: Bytes,
}

impl OLoad {
    fn capture(node: &ONode) -> OLoad {
        if !node.up {
            return OLoad {
                node: node.id,
                active_jobs: 0,
                idle_memory: Bytes::ZERO,
                has_slot: false,
                reserved: node.reserved,
                up: false,
                user_memory: node.params.memory.user,
            };
        }
        OLoad {
            node: node.id,
            active_jobs: node.jobs.len(),
            idle_memory: node.idle_memory(),
            has_slot: node.has_slot(),
            reserved: node.reserved,
            up: true,
            user_memory: node.params.memory.user,
        }
    }

    fn accepts_submissions(&self) -> bool {
        self.up && !self.reserved && self.has_slot && !self.idle_memory.is_zero()
    }
}

/// A pending-queue entry.
struct OPending {
    job: RunningJob,
    since: SimTime,
    home: u32,
}

/// A job on the wire.
struct OTransit {
    job: RunningJob,
    dst: u32,
    to_reserved: bool,
    attempts: u32,
}

/// A suspended (swapped-out) job.
struct OSuspended {
    job: RunningJob,
    since: SimTime,
}

/// One reservation, with the serving set as a sorted `Vec` (set semantics
/// by `contains` check).
struct OReservation {
    node: u32,
    serving: bool,
    started: SimTime,
    served: Vec<JobId>,
}

/// Where the policy wants a job.
#[derive(Clone, Copy)]
enum OPlacement {
    Local(u32),
    Remote(u32),
    Blocked,
}

struct Oracle {
    config: SimConfig,
    nodes: Vec<ONode>,
    index: Vec<OLoad>,
    rng: SimRng,
    pending: Vec<OPending>,
    in_transit: Vec<OTransit>,
    suspended: Vec<OSuspended>,
    completed: Vec<RunningJob>,
    gauges: ClusterGauges,
    counters: SchedulerCounters,
    reservations: Vec<OReservation>,
    res_stats: ReservationStats,
    total_jobs: usize,
    arrived: usize,
    ever_blocked: Vec<JobId>,
    suspend_counts: Vec<(JobId, u32)>,
    done: bool,
    finished_at: SimTime,
    faults: Option<FaultInjector>,
    stalled: Vec<u32>,
    /// Nodes currently in the detected-blocking state, mirroring the
    /// engine's edge-triggered `blocking_detections` counting: the counter
    /// fires only when a node enters this list, and the node leaves it as
    /// soon as an overload scan no longer finds it blocked.
    blocked_nodes: Vec<u32>,
    /// The unsorted future-event list, popped by linear (time, seq) scan.
    events: Vec<(SimTime, u64, Ev)>,
    seq: u64,
    /// Parsed malleable tunables when the policy is the malleable family —
    /// the resize scan's restated selection rules read them directly.
    malleable: Option<MalleableParams>,
}

/// Runs the naive reference model over `trace` and produces a [`RunReport`]
/// for differential comparison against the engine's.
///
/// The report's `events` log, `run_stats`, and `audit_violations` are left
/// empty — [`crate::compare_reports`] ignores those fields by contract.
///
/// # Errors
///
/// Returns an error if the config or trace fails validation (including an
/// unbuildable policy parameter bag). Network RAM, thrashing protection,
/// and the malleable/fractional plugin families are all modelled — the
/// oracle re-derives each from the config exactly where the engine does.
pub fn run_oracle(
    config: &SimConfig,
    trace: &Trace,
    skew: OracleSkew,
) -> Result<RunReport, String> {
    config.validate()?;
    trace.validate()?;
    // Re-derive the plugin families' tunables from the parameter bag the
    // same way `SimConfig::validate` proved them buildable; the behaviour
    // they drive is restated below, not delegated.
    let malleable = match config.policy {
        PolicyKind::Malleable => Some(
            MalleableParams::from_bag(&config.policy_params)
                .map_err(|e| format!("malleable parameters: {e}"))?,
        ),
        _ => None,
    };
    let fractional = match config.policy {
        PolicyKind::Fractional => Some(
            FractionalParams::from_bag(&config.policy_params)
                .map_err(|e| format!("fractional parameters: {e}"))?,
        ),
        _ => None,
    };

    let mut o = Oracle {
        config: config.clone(),
        nodes: config
            .cluster
            .nodes
            .iter()
            .enumerate()
            .map(|(i, params)| ONode {
                id: i as u32,
                params: *params,
                jobs: Vec::new(),
                last_update: SimTime::ZERO,
                epoch: 0,
                reserved: false,
                up: true,
                outbox: Vec::new(),
                counters: NodeCounters::default(),
                stall_scale: 1.0,
                // Same clamp as the engine's `Workstation::set_slot_cap`.
                slot_cap: fractional
                    .map_or(params.cpu.slots, |f| f.slot_cap(params.cpu.slots))
                    .max(1),
            })
            .collect(),
        index: Vec::new(),
        // vr-analyze::rng-authority(reason = "the oracle re-derives the engine's master stream from the same config seed; sharing a fork would entangle the two models")
        rng: SimRng::seed_from(config.seed),
        pending: Vec::new(),
        in_transit: Vec::new(),
        suspended: Vec::new(),
        completed: Vec::new(),
        gauges: ClusterGauges::default(),
        counters: SchedulerCounters::default(),
        reservations: Vec::new(),
        res_stats: ReservationStats::default(),
        total_jobs: trace.len(),
        arrived: 0,
        ever_blocked: Vec::new(),
        suspend_counts: Vec::new(),
        done: trace.is_empty(),
        finished_at: SimTime::ZERO,
        faults: config
            .fault_plan
            .clone()
            .map(|plan| FaultInjector::new(plan, config.seed)),
        stalled: Vec::new(),
        blocked_nodes: Vec::new(),
        events: Vec::new(),
        seq: 0,
        malleable,
    };
    o.refresh_snapshot();

    // Seed the event list in the same order the driver does, so equal-time
    // ties resolve identically.
    for job in &trace.jobs {
        o.schedule_at(job.submit, Ev::Arrival(Box::new(job.clone())));
    }
    o.schedule_at(SimTime::ZERO, Ev::Exchange);
    o.schedule_at(SimTime::ZERO, Ev::Sample);
    o.schedule_at(
        SimTime::ZERO + config.pending_retry_period,
        Ev::PendingRetry,
    );
    if let Some(injector) = &o.faults {
        for crash in injector.crash_schedule() {
            let node = crash.node as u32;
            o.schedule_at(crash.at, Ev::NodeCrash { node });
            if let Some(delay) = crash.restart_after {
                o.schedule_at(crash.at + delay, Ev::NodeRestart { node });
            }
        }
    }

    // The main loop: pop the (time, seq) minimum by linear scan and handle
    // it, until the list drains or the next event is past the horizon.
    let horizon = SimTime::ZERO + config.max_sim_time;
    let mut now = SimTime::ZERO;
    loop {
        let next = o
            .events
            .iter()
            .enumerate()
            .min_by_key(|(_, (t, s, _))| (*t, *s))
            .map(|(i, (t, _, _))| (i, *t));
        let Some((pos, t)) = next else {
            break;
        };
        if t > horizon {
            break;
        }
        let (_, _, ev) = o.events.swap_remove(pos);
        now = t;
        o.handle(ev, now);
    }

    let mut report = o.into_report(trace, config, now);
    if skew == OracleSkew::CompletionOffByOne {
        for job in &mut report.jobs {
            if let Some(t) = job.completed_at {
                job.completed_at = Some(t + SimSpan::from_micros(1));
            }
        }
    }
    Ok(report)
}

impl Oracle {
    fn schedule_at(&mut self, time: SimTime, ev: Ev) {
        self.events.push((time, self.seq, ev));
        self.seq += 1;
    }

    fn schedule_in(&mut self, now: SimTime, delay: SimSpan, ev: Ev) {
        self.schedule_at(now + delay, ev);
    }

    // ---- load snapshot ---------------------------------------------------

    fn refresh_snapshot(&mut self) {
        self.index = self.nodes.iter().map(OLoad::capture).collect();
        self.update_network_ram();
    }

    /// Refresh keeping the previous entry for every node in `stale` (lost
    /// load reports).
    fn refresh_snapshot_except(&mut self, stale: &[u32]) {
        let old = std::mem::take(&mut self.index);
        self.index = self
            .nodes
            .iter()
            .map(|node| {
                if stale.contains(&node.id) {
                    if let Some(prev) = old.iter().find(|e| e.node == node.id) {
                        return *prev;
                    }
                }
                OLoad::capture(node)
            })
            .collect();
        self.update_network_ram();
    }

    /// Mirrors the engine's network-RAM pass: after every snapshot refresh,
    /// each node whose memory overflow fits in the cluster's accumulated
    /// *live* idle memory pages at the remote service time instead of the
    /// local disk. The sum reads live node state, not the (possibly lossy)
    /// snapshot — same as the engine, which sums `Workstation::idle_memory`
    /// directly.
    fn update_network_ram(&mut self) {
        let Some(netram) = self.config.network_ram else {
            return;
        };
        let accumulated: Bytes = self.nodes.iter().map(ONode::idle_memory).sum();
        for node in &mut self.nodes {
            let overflow = node.overflow();
            let remote_backed = !overflow.is_zero() && accumulated >= overflow;
            let scale = if remote_backed {
                netram.stall_scale(node.params.memory.fault_service)
            } else {
                1.0
            };
            // Same change-detection threshold as the engine's
            // `Workstation::set_stall_scale`: a real change rewrites the
            // node's future, so the epoch bump invalidates pending wakes.
            if (node.stall_scale - scale).abs() > 1e-12 {
                node.stall_scale = scale;
                node.epoch += 1;
            }
        }
    }

    fn index_get(&self, node: u32) -> Option<&OLoad> {
        self.index.iter().find(|e| e.node == node)
    }

    fn accumulated_idle_memory(&self) -> Bytes {
        self.index.iter().map(|e| e.idle_memory).sum()
    }

    fn average_user_memory(&self) -> Bytes {
        if self.index.is_empty() {
            return Bytes::ZERO;
        }
        let total: Bytes = self.index.iter().map(|e| e.user_memory).sum();
        Bytes::new(total.as_u64() / self.index.len() as u64)
    }

    /// Advance everything, drain completions, take a fresh snapshot.
    fn refresh_index(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            self.nodes[i].advance_to(now);
        }
        self.collect_completions(now);
        self.refresh_snapshot();
    }

    /// The exchange variant: under load-info loss every node's report may be
    /// dropped, keeping its previous snapshot entry.
    fn refresh_index_lossy(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            self.nodes[i].advance_to(now);
        }
        self.collect_completions(now);
        let mut lost: Vec<u32> = Vec::new();
        if let Some(injector) = self.faults.as_mut() {
            if injector.plan().load_info_loss_prob > 0.0 {
                for i in 0..self.nodes.len() {
                    if injector.load_report_lost() {
                        lost.push(i as u32);
                    }
                }
            }
        }
        if lost.is_empty() {
            self.refresh_snapshot();
        } else {
            self.refresh_snapshot_except(&lost);
        }
    }

    // ---- reservations (plain Vec, linear scans) --------------------------

    fn is_reserved(&self, node: u32) -> bool {
        self.reservations.iter().any(|r| r.node == node)
    }

    fn reserve_begin(&mut self, node: u32, now: SimTime) {
        self.reservations.push(OReservation {
            node,
            serving: false,
            started: now,
            served: Vec::new(),
        });
        self.res_stats.started += 1;
    }

    fn record_service(&mut self, node: u32, job: JobId) {
        if let Some(r) = self.reservations.iter_mut().find(|r| r.node == node) {
            r.serving = true;
            if !r.served.contains(&job) {
                r.served.push(job);
            }
            self.res_stats.jobs_served += 1;
        }
    }

    /// `true` if this completion drained the served set (release the node).
    fn note_completion(&mut self, node: u32, job: JobId) -> bool {
        let Some(pos) = self.reservations.iter().position(|r| r.node == node) else {
            return false;
        };
        let r = &mut self.reservations[pos];
        if r.serving && r.served.contains(&job) {
            r.served.retain(|j| *j != job);
            if r.served.is_empty() {
                self.reservations.remove(pos);
                self.res_stats.released_after_service += 1;
                return true;
            }
        }
        false
    }

    fn release_unused(&mut self, node: u32) -> bool {
        let before = self.reservations.len();
        self.reservations.retain(|r| r.node != node);
        if self.reservations.len() < before {
            self.res_stats.released_unused += 1;
            true
        } else {
            false
        }
    }

    fn sweep_timeouts(&mut self, now: SimTime) -> Vec<u32> {
        let timeout = self.config.reservation.reserve_timeout;
        let expired: Vec<u32> = self
            .reservations
            .iter()
            .filter(|r| !r.serving && now.saturating_since(r.started) > timeout)
            .map(|r| r.node)
            .collect();
        for node in &expired {
            self.reservations.retain(|r| r.node != *node);
            self.res_stats.timed_out += 1;
        }
        expired
    }

    fn can_reserve(&self) -> bool {
        self.reservations.len() < self.config.reservation.max_reserved(self.nodes.len())
    }

    // ---- placement policies ----------------------------------------------

    fn place(&mut self, job: &RunningJob, home: u32) -> OPlacement {
        match self.config.policy {
            PolicyKind::NoLoadSharing => match self.index_get(home) {
                Some(load) if load.has_slot => OPlacement::Local(home),
                _ => OPlacement::Blocked,
            },
            PolicyKind::Random => {
                let candidates: Vec<u32> = self
                    .index
                    .iter()
                    .filter(|e| e.has_slot && !e.reserved)
                    .map(|e| e.node)
                    .collect();
                if candidates.is_empty() {
                    OPlacement::Blocked
                } else {
                    let pick = *self.rng.choose(&candidates);
                    if pick == home {
                        OPlacement::Local(pick)
                    } else {
                        OPlacement::Remote(pick)
                    }
                }
            }
            PolicyKind::CpuOnly => {
                let best = self
                    .index
                    .iter()
                    .filter(|e| e.has_slot && !e.reserved)
                    .min_by_key(|e| (e.active_jobs, e.node));
                match best {
                    Some(e) if e.node == home => OPlacement::Local(home),
                    Some(e) => OPlacement::Remote(e.node),
                    None => OPlacement::Blocked,
                }
            }
            PolicyKind::WeightedCpuMem => {
                let demand = job.current_working_set();
                let score = |e: &OLoad| {
                    let cpu = e.active_jobs as f64;
                    let mem = 1.0 - e.idle_memory.as_u64() as f64 / e.user_memory.as_u64() as f64;
                    cpu + 8.0 * mem
                };
                let best = self
                    .index
                    .iter()
                    .filter(|e| e.accepts_submissions() && e.idle_memory >= demand)
                    .min_by(|a, b| {
                        score(a)
                            .partial_cmp(&score(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.node.cmp(&b.node))
                    });
                match best {
                    Some(e) if e.node == home => OPlacement::Local(home),
                    Some(e) => OPlacement::Remote(e.node),
                    None => OPlacement::Blocked,
                }
            }
            PolicyKind::GLoadSharing
            | PolicyKind::VReconfiguration
            | PolicyKind::SuspendLargest
            | PolicyKind::Malleable
            | PolicyKind::Fractional => {
                let demand = job.current_working_set();
                if self
                    .index_get(home)
                    .is_some_and(|load| load.accepts_submissions() && load.idle_memory >= demand)
                {
                    return OPlacement::Local(home);
                }
                let dest = self
                    .index
                    .iter()
                    .filter(|e| {
                        e.node != home && e.accepts_submissions() && e.idle_memory >= demand
                    })
                    .min_by_key(|e| (e.active_jobs, std::cmp::Reverse(e.idle_memory), e.node));
                match dest {
                    Some(dest) => OPlacement::Remote(dest.node),
                    None => OPlacement::Blocked,
                }
            }
        }
    }

    // ---- scheduler mechanics ---------------------------------------------

    fn collect_completions(&mut self, now: SimTime) {
        let mut any = false;
        for i in 0..self.nodes.len() {
            let finished = std::mem::take(&mut self.nodes[i].outbox);
            if finished.is_empty() {
                continue;
            }
            any = true;
            for job in finished {
                if self.note_completion(i as u32, job.id()) {
                    self.release_reserved_flag(i as u32, now);
                }
                self.completed.push(job);
            }
            self.schedule_wake(i as u32, now);
        }
        if any {
            self.refresh_snapshot();
            self.try_place_pending(now);
            self.check_reservations(now);
            self.check_done(now);
        }
    }

    fn schedule_wake(&mut self, node: u32, now: SimTime) {
        if let Some(delay) = self.nodes[node as usize].next_event_in() {
            let epoch = self.nodes[node as usize].epoch;
            self.schedule_in(
                now,
                delay.max(SimSpan::from_micros(1)),
                Ev::NodeWake { node, epoch },
            );
        }
    }

    fn release_reserved_flag(&mut self, node: u32, now: SimTime) {
        let stall = self
            .faults
            .as_ref()
            .map(|f| f.plan().reservation_release_stall)
            .unwrap_or(SimSpan::ZERO);
        if stall.is_zero() {
            self.nodes[node as usize].set_reserved(false);
        } else if !self.stalled.contains(&node) {
            self.stalled.push(node);
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.stalled_releases += 1;
            }
            self.schedule_in(now, stall, Ev::ReservationUnstall { node });
        }
    }

    fn place_job(&mut self, mut job: RunningJob, home: u32, now: SimTime, first_attempt: bool) {
        match self.place(&job, home) {
            OPlacement::Local(node_id) => match self.nodes[node_id as usize].try_admit(job, now) {
                Ok(()) => {
                    if first_attempt {
                        self.counters.local_submissions += 1;
                    }
                    self.schedule_wake(node_id, now);
                }
                Err(rejected) => {
                    self.counters.stale_rejections += 1;
                    self.enqueue_pending(*rejected, home, now);
                }
            },
            OPlacement::Remote(node_id) => {
                let cost = self.config.cluster.network.remote_submit_cost;
                job.breakdown.migration += cost.as_secs_f64();
                job.remote_submitted = true;
                job.state = JobState::Migrating;
                self.counters.remote_submissions += 1;
                let id = job.id();
                self.in_transit.push(OTransit {
                    job,
                    dst: node_id,
                    to_reserved: false,
                    attempts: 0,
                });
                self.schedule_in(now, cost, Ev::TransitArrive { job: id });
            }
            OPlacement::Blocked => {
                self.enqueue_pending(job, home, now);
            }
        }
    }

    fn enqueue_pending(&mut self, mut job: RunningJob, home: u32, now: SimTime) {
        job.state = JobState::Pending;
        if !self.ever_blocked.contains(&job.id()) {
            self.ever_blocked.push(job.id());
            self.counters.blocked_submissions += 1;
        }
        self.pending.push(OPending {
            job,
            since: now,
            home,
        });
    }

    fn try_place_pending(&mut self, now: SimTime) {
        let fifo = self.config.pending_discipline == PendingDiscipline::Fifo;
        let mut waiting = std::mem::take(&mut self.pending);
        while !waiting.is_empty() {
            let mut entry = waiting.remove(0);
            let decision = self.place(&entry.job, entry.home);
            if matches!(decision, OPlacement::Blocked) {
                self.pending.push(entry);
                if fifo {
                    self.pending.append(&mut waiting);
                    return;
                }
            } else {
                entry.job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
                // Re-decide inside place_job: the snapshot has not changed
                // between the two `place` calls, so the decision is the same
                // draw-for-draw only for deterministic policies — mirror the
                // driver, which also decides twice.
                self.place_job(entry.job, entry.home, now, false);
            }
        }
    }

    fn in_transit_demand(&self, node: u32) -> Bytes {
        self.in_transit
            .iter()
            .filter(|t| t.dst == node)
            .map(|t| t.job.current_working_set())
            .sum()
    }

    fn in_transit_count(&self, node: u32) -> usize {
        self.in_transit.iter().filter(|t| t.dst == node).count()
    }

    fn committed_idle(&self, node: u32) -> Bytes {
        self.nodes[node as usize]
            .idle_memory()
            .saturating_sub(self.in_transit_demand(node))
    }

    fn has_uncommitted_slot(&self, node: u32) -> bool {
        let n = &self.nodes[node as usize];
        n.used_slots() as usize + self.in_transit_count(node) < n.slot_cap as usize
    }

    fn serving_room_for(&self, ws: Bytes) -> Option<u32> {
        self.reservations
            .iter()
            .filter(|r| self.committed_idle(r.node) >= ws && self.has_uncommitted_slot(r.node))
            .map(|r| r.node)
            .next()
    }

    fn overload_scan(&mut self, now: SimTime) {
        if !self.config.policy.migrates_on_overload() {
            return;
        }
        for i in 0..self.nodes.len() {
            let src = i as u32;
            if self.nodes[i].reserved || !self.nodes[i].up {
                self.blocked_nodes.retain(|n| *n != src);
                continue;
            }
            let user = self.nodes[i].params.memory.user;
            let threshold = self.config.overload_bytes(user);
            if self.nodes[i].overflow() <= threshold {
                self.blocked_nodes.retain(|n| *n != src);
                continue;
            }
            let Some(victim) = self.nodes[i].most_memory_intensive() else {
                self.blocked_nodes.retain(|n| *n != src);
                continue;
            };
            let victim_id = victim.id();
            let victim_ws = victim.current_working_set();
            let dest = self
                .index
                .iter()
                .filter(|e| {
                    e.node != src
                        && e.accepts_submissions()
                        && e.idle_memory.saturating_sub(self.in_transit_demand(e.node)) >= victim_ws
                        && self.has_uncommitted_slot(e.node)
                })
                .min_by_key(|e| (e.active_jobs, std::cmp::Reverse(e.idle_memory), e.node))
                .map(|e| e.node);
            match dest {
                Some(dst) => {
                    self.blocked_nodes.retain(|n| *n != src);
                    self.start_migration(src, victim_id, dst, false, now);
                    self.counters.overload_migrations += 1;
                }
                None => {
                    // Edge-triggered, mirroring the engine: count only when
                    // the node newly enters the blocked state.
                    if !self.blocked_nodes.contains(&src) {
                        self.blocked_nodes.push(src);
                        self.counters.blocking_detections += 1;
                    }
                    if self.config.policy.reconfigures() {
                        self.reconfigure(src, now);
                    } else if self.config.policy.suspends_on_blocking()
                        && self
                            .suspend_counts
                            .iter()
                            .find(|(id, _)| *id == victim_id)
                            .map(|(_, n)| *n)
                            .unwrap_or(0)
                            < MAX_SUSPENSIONS_PER_JOB
                    {
                        self.suspend_job(src, victim_id, now);
                    }
                }
            }
        }
    }

    /// Mirrors the engine's `resize_scan`, with the malleable family's
    /// directive selection restated from its documented rules: at most one
    /// width change per node per exchange tick, nodes visited in ascending
    /// id order, the trigger recomputed from the pending queue. Every node
    /// was already advanced to `now` by the exchange-top index refresh.
    fn resize_scan(&mut self, now: SimTime) {
        let Some(params) = self.malleable else {
            return;
        };
        let pressure = !self.pending.is_empty();
        let mut any = false;
        for i in 0..self.nodes.len() {
            if self.nodes[i].jobs.is_empty() {
                continue;
            }
            let node = &self.nodes[i];
            if !node.up || node.reserved {
                continue;
            }
            let used = node.used_slots();
            let cap = node.slot_cap;
            let free = cap.saturating_sub(used);
            // (job, new width, is-grow): the widest shrinkable job under
            // pressure with no free slot, the narrowest growable job when
            // idle capacity exists — ties toward the smaller id, both ways.
            let directive: Option<(JobId, u32, bool)> = if pressure && free == 0 {
                node.jobs
                    .iter()
                    .filter(|j| j.spec.malleable.is_some_and(|m| j.width > m.min_width))
                    .max_by_key(|j| (j.width, std::cmp::Reverse(j.spec.id)))
                    .map(|j| {
                        let min = j.spec.malleable.map_or(1, |m| m.min_width);
                        (
                            j.spec.id,
                            j.width.saturating_sub(params.max_step).max(min),
                            false,
                        )
                    })
            } else if !pressure && free > 0 {
                node.jobs
                    .iter()
                    .filter(|j| j.spec.malleable.is_some_and(|m| j.width < m.max_width))
                    .min_by_key(|j| (j.width, j.spec.id))
                    .map(|j| {
                        let max = j.spec.malleable.map_or(j.width, |m| m.max_width);
                        (
                            j.spec.id,
                            (j.width + params.max_step.min(free)).min(max),
                            true,
                        )
                    })
            } else {
                None
            };
            let Some((job_id, to, grow)) = directive else {
                continue;
            };
            // Apply, mirroring `Workstation::resize_job`'s guards (the
            // advance is a no-op here: the node already sits at `now`).
            let node = &mut self.nodes[i];
            let Some(job) = node.jobs.iter_mut().find(|j| j.spec.id == job_id) else {
                continue;
            };
            let old = job.width;
            if to == old || to == 0 || (to > old && used - old + to > cap) {
                continue;
            }
            job.width = to;
            node.epoch += 1;
            if grow {
                self.counters.grows += 1;
            } else {
                self.counters.shrinks += 1;
            }
            self.schedule_wake(i as u32, now);
            any = true;
        }
        if any {
            self.refresh_snapshot();
        }
    }

    fn reconfigure(&mut self, src: u32, now: SimTime) {
        let Some(victim) = self.nodes[src as usize].most_memory_intensive() else {
            return;
        };
        let victim_id = victim.id();
        let victim_ws = victim.current_working_set();
        if let Some(dst) = self.serving_room_for(victim_ws) {
            self.record_service(dst, victim_id);
            self.start_migration(src, victim_id, dst, true, now);
            self.counters.reserved_migrations += 1;
            return;
        }
        if self.accumulated_idle_memory() <= self.average_user_memory() {
            return;
        }
        if !self.can_reserve() {
            return;
        }
        let candidate = self
            .index
            .iter()
            .filter(|e| {
                !e.reserved
                    && !self.is_reserved(e.node)
                    && e.node != src
                    && self.nodes[e.node as usize].up
                    && !self.stalled.contains(&e.node)
            })
            .max_by_key(|e| {
                (
                    e.idle_memory,
                    std::cmp::Reverse(e.active_jobs),
                    std::cmp::Reverse(e.node),
                )
            })
            .map(|e| e.node);
        if let Some(node_id) = candidate {
            self.reserve_begin(node_id, now);
            self.nodes[node_id as usize].set_reserved(true);
        }
    }

    fn check_reservations(&mut self, now: SimTime) {
        for node_id in self.sweep_timeouts(now) {
            self.release_reserved_flag(node_id, now);
        }
        let reserving: Vec<u32> = self
            .reservations
            .iter()
            .filter(|r| !r.serving)
            .map(|r| r.node)
            .collect();
        for node_id in reserving {
            let ready = match self.config.reservation.end_condition {
                ReservingEnd::AllJobsComplete => self.nodes[node_id as usize].jobs.is_empty(),
                ReservingEnd::EnoughMemory => match self.blocking_victim(node_id) {
                    Some((_, _, ws)) => {
                        self.committed_idle(node_id) >= ws && self.has_uncommitted_slot(node_id)
                    }
                    None => true,
                },
            };
            if !ready {
                continue;
            }
            if self.in_transit_count(node_id) > 0 {
                continue;
            }
            match self.blocking_victim(node_id) {
                Some((src, victim, _ws)) => {
                    self.record_service(node_id, victim);
                    self.start_migration(src, victim, node_id, true, now);
                    self.counters.reserved_migrations += 1;
                }
                None => {
                    self.release_unused(node_id);
                    self.release_reserved_flag(node_id, now);
                }
            }
        }
    }

    fn blocking_victim(&self, exclude_dst: u32) -> Option<(u32, JobId, Bytes)> {
        let mut worst: Option<(Bytes, u32, JobId, Bytes)> = None;
        for node in &self.nodes {
            if node.reserved || !node.up {
                continue;
            }
            let threshold = self.config.overload_bytes(node.params.memory.user);
            if node.overflow() <= threshold {
                continue;
            }
            let Some(victim) = node.most_memory_intensive() else {
                continue;
            };
            let ws = victim.current_working_set();
            let has_ordinary_dest = self.index.iter().any(|e| {
                e.node != node.id
                    && e.node != exclude_dst
                    && e.accepts_submissions()
                    && e.idle_memory.saturating_sub(self.in_transit_demand(e.node)) >= ws
            });
            if has_ordinary_dest {
                continue;
            }
            let key = node.overflow();
            if worst.is_none_or(|(k, ..)| key > k) {
                worst = Some((key, node.id, victim.id(), ws));
            }
        }
        worst.map(|(_, src, job, ws)| (src, job, ws))
    }

    fn start_migration(
        &mut self,
        src: u32,
        job_id: JobId,
        dst: u32,
        to_reserved: bool,
        now: SimTime,
    ) {
        let Some(mut job) = self.nodes[src as usize].remove_job(job_id, now) else {
            if to_reserved && self.note_completion(dst, job_id) {
                self.release_reserved_flag(dst, now);
            }
            return;
        };
        self.schedule_wake(src, now);
        let image = job.current_working_set();
        let cost = self.config.cluster.network.migration_cost(image);
        job.breakdown.migration += cost.as_secs_f64();
        job.migrations += 1;
        job.state = JobState::Migrating;
        self.in_transit.push(OTransit {
            job,
            dst,
            to_reserved,
            attempts: 0,
        });
        self.schedule_in(now, cost, Ev::TransitArrive { job: job_id });
    }

    fn handle_transit_arrive(&mut self, job_id: JobId, now: SimTime) {
        let Some(pos) = self.in_transit.iter().position(|t| t.job.id() == job_id) else {
            return;
        };
        let OTransit {
            job,
            dst,
            to_reserved,
            ..
        } = self.in_transit.remove(pos);
        let home = dst;
        let result = if to_reserved {
            self.nodes[dst as usize].admit_to_reserved(job, now)
        } else {
            self.nodes[dst as usize].try_admit(job, now)
        };
        match result {
            Ok(()) => {
                self.schedule_wake(dst, now);
            }
            Err(rejected) => {
                self.counters.stale_rejections += 1;
                if to_reserved && self.note_completion(dst, job_id) {
                    self.release_reserved_flag(dst, now);
                }
                self.enqueue_pending(*rejected, home, now);
            }
        }
    }

    fn handle_migration_failure(&mut self, job_id: JobId, now: SimTime) {
        let (max_retries, base_backoff) = match self.faults.as_ref() {
            Some(injector) => (
                injector.plan().max_migration_retries,
                injector.plan().retry_backoff,
            ),
            None => return,
        };
        let Some(pos) = self.in_transit.iter().position(|t| t.job.id() == job_id) else {
            return;
        };
        self.in_transit[pos].attempts += 1;
        let attempts = self.in_transit[pos].attempts;
        if attempts <= max_retries {
            let mut backoff = base_backoff;
            for _ in 0..(attempts - 1).min(16) {
                backoff = backoff + backoff;
            }
            self.in_transit[pos].job.breakdown.migration += backoff.as_secs_f64();
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.migration_retries += 1;
            }
            self.schedule_in(now, backoff, Ev::TransitArrive { job: job_id });
        } else {
            let transit = self.in_transit.remove(pos);
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.migrations_abandoned += 1;
                injector.counters.requeued_jobs += 1;
            }
            if transit.to_reserved && self.note_completion(transit.dst, job_id) {
                self.release_reserved_flag(transit.dst, now);
            }
            let dst = transit.dst;
            self.enqueue_pending(transit.job, dst, now);
        }
    }

    fn handle_node_crash(&mut self, node_id: u32, now: SimTime) {
        if !self.nodes[node_id as usize].up {
            return;
        }
        self.nodes[node_id as usize].advance_to(now);
        self.collect_completions(now);
        if let Some(injector) = self.faults.as_mut() {
            injector.counters.crashes += 1;
        }
        let _released = self.release_unused(node_id) || {
            let had = self.stalled.contains(&node_id);
            self.stalled.retain(|n| *n != node_id);
            had
        };
        let drained = self.nodes[node_id as usize].crash(now);
        for job in drained {
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.requeued_jobs += 1;
            }
            self.enqueue_pending(job, node_id, now);
        }
        self.refresh_snapshot();
        self.try_place_pending(now);
    }

    fn handle_node_restart(&mut self, node_id: u32, now: SimTime) {
        if self.nodes[node_id as usize].up {
            return;
        }
        self.nodes[node_id as usize].restart(now);
        if let Some(injector) = self.faults.as_mut() {
            injector.counters.restarts += 1;
        }
        self.refresh_snapshot();
        self.try_place_pending(now);
    }

    fn handle_reservation_unstall(&mut self, node_id: u32, now: SimTime) {
        if !self.stalled.contains(&node_id) {
            return;
        }
        self.stalled.retain(|n| *n != node_id);
        if self.is_reserved(node_id) {
            return;
        }
        self.nodes[node_id as usize].advance_to(now);
        self.nodes[node_id as usize].set_reserved(false);
        self.refresh_index(now);
        self.schedule_wake(node_id, now);
        self.try_place_pending(now);
    }

    fn suspend_job(&mut self, src: u32, job_id: JobId, now: SimTime) {
        let Some(mut job) = self.nodes[src as usize].remove_job(job_id, now) else {
            return;
        };
        self.schedule_wake(src, now);
        let image = job.current_working_set();
        let out_cost = self.nodes[src as usize]
            .params
            .memory
            .swap_transfer_time(image);
        job.breakdown.migration += out_cost.as_secs_f64();
        job.state = JobState::Suspended;
        match self
            .suspend_counts
            .iter_mut()
            .find(|(id, _)| *id == job.id())
        {
            Some((_, n)) => *n += 1,
            None => self.suspend_counts.push((job.id(), 1)),
        }
        self.counters.suspensions += 1;
        self.suspended.push(OSuspended {
            job,
            since: now + out_cost,
        });
    }

    fn try_resume_suspended(&mut self, now: SimTime) {
        if self.suspended.is_empty() || !self.pending.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.suspended);
        for mut entry in parked {
            if now < entry.since {
                self.suspended.push(entry);
                continue;
            }
            let home = self.rng.index(self.nodes.len()) as u32;
            let decision = self.place(&entry.job, home);
            let dst = match decision {
                OPlacement::Blocked => {
                    let idle_node = self
                        .nodes
                        .iter()
                        .filter(|n| {
                            n.jobs.is_empty()
                                && !n.reserved
                                && self.in_transit.iter().all(|t| t.dst != n.id)
                                && n.can_admit(&entry.job)
                        })
                        .max_by_key(|n| (n.idle_memory(), std::cmp::Reverse(n.id)))
                        .map(|n| n.id);
                    match idle_node {
                        Some(n) => n,
                        None => {
                            self.suspended.push(entry);
                            continue;
                        }
                    }
                }
                OPlacement::Local(n) | OPlacement::Remote(n) => n,
            };
            entry.job.breakdown.queue += (now - entry.since).as_secs_f64();
            let image = entry.job.current_working_set();
            let mut in_cost = self.nodes[dst as usize]
                .params
                .memory
                .swap_transfer_time(image);
            if matches!(decision, OPlacement::Remote(_)) {
                in_cost += self.config.cluster.network.remote_submit_cost;
            }
            entry.job.breakdown.migration += in_cost.as_secs_f64();
            entry.job.state = JobState::Migrating;
            self.counters.resumes += 1;
            let id = entry.job.id();
            self.in_transit.push(OTransit {
                job: entry.job,
                dst,
                to_reserved: false,
                attempts: 0,
            });
            self.schedule_in(now, in_cost, Ev::TransitArrive { job: id });
        }
    }

    fn check_done(&mut self, now: SimTime) {
        if self.done {
            return;
        }
        if self.arrived == self.total_jobs
            && self.pending.is_empty()
            && self.in_transit.is_empty()
            && self.suspended.is_empty()
            && self.nodes.iter().all(|n| n.jobs.is_empty())
        {
            self.done = true;
            self.finished_at = now;
        }
    }

    fn sample_gauges(&mut self, now: SimTime) {
        let mut idle = Bytes::ZERO;
        let mut physical_idle = Bytes::ZERO;
        let mut reserved = 0usize;
        let mut active_non_reserved = Vec::new();
        for node in &self.nodes {
            physical_idle += node.idle_memory();
            if node.reserved {
                reserved += 1;
            } else {
                idle += node.idle_memory();
                active_non_reserved.push(node.jobs.len());
            }
        }
        self.gauges.idle_memory_mb.push(now, idle.as_mb_f64());
        self.gauges
            .physical_idle_memory_mb
            .push(now, physical_idle.as_mb_f64());
        self.gauges
            .balance_skew
            .push(now, balance_skew(&active_non_reserved));
        self.gauges.reserved_nodes.push(now, reserved as f64);
        self.gauges
            .pending_jobs
            .push(now, self.pending.len() as f64);
    }

    fn handle(&mut self, ev: Ev, now: SimTime) {
        match ev {
            Ev::Arrival(spec) => {
                self.arrived += 1;
                let job = RunningJob::new(*spec);
                let home = self.rng.index(self.nodes.len()) as u32;
                if self.config.pending_discipline == PendingDiscipline::Fifo
                    && !self.pending.is_empty()
                {
                    self.enqueue_pending(job, home, now);
                } else {
                    self.place_job(job, home, now, true);
                }
            }
            Ev::NodeWake { node, epoch } => {
                if self.nodes[node as usize].epoch != epoch {
                    return;
                }
                self.nodes[node as usize].advance_to(now);
                self.collect_completions(now);
                if self.nodes[node as usize].epoch == epoch {
                    self.schedule_wake(node, now);
                }
            }
            Ev::Exchange => {
                self.refresh_index_lossy(now);
                self.overload_scan(now);
                self.resize_scan(now);
                self.check_reservations(now);
                self.try_resume_suspended(now);
                self.check_done(now);
                if !self.done {
                    self.schedule_in(now, self.config.cluster.load_exchange_period, Ev::Exchange);
                }
            }
            Ev::Sample => {
                for i in 0..self.nodes.len() {
                    self.nodes[i].advance_to(now);
                }
                self.collect_completions(now);
                self.sample_gauges(now);
                if !self.done {
                    self.schedule_in(now, self.config.sample_period, Ev::Sample);
                }
            }
            Ev::PendingRetry => {
                if !self.pending.is_empty() {
                    self.refresh_index(now);
                    self.try_place_pending(now);
                }
                self.check_done(now);
                if !self.done {
                    self.schedule_in(now, self.config.pending_retry_period, Ev::PendingRetry);
                }
            }
            Ev::TransitArrive { job } => {
                let in_flight = self.in_transit.iter().any(|t| t.job.id() == job);
                if in_flight && self.faults.as_mut().is_some_and(|f| f.migration_fails()) {
                    self.handle_migration_failure(job, now);
                } else {
                    self.handle_transit_arrive(job, now);
                }
                self.check_done(now);
            }
            Ev::NodeCrash { node } => {
                self.handle_node_crash(node, now);
            }
            Ev::NodeRestart { node } => {
                self.handle_node_restart(node, now);
            }
            Ev::ReservationUnstall { node } => {
                self.handle_reservation_unstall(node, now);
                self.check_done(now);
            }
        }
    }

    fn into_report(mut self, trace: &Trace, config: &SimConfig, now: SimTime) -> RunReport {
        let mut jobs = std::mem::take(&mut self.completed);
        let mut unfinished = 0usize;
        for entry in std::mem::take(&mut self.pending) {
            unfinished += 1;
            let mut job = entry.job;
            job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
            jobs.push(job);
        }
        for transit in std::mem::take(&mut self.in_transit) {
            unfinished += 1;
            jobs.push(transit.job);
        }
        for entry in std::mem::take(&mut self.suspended) {
            unfinished += 1;
            let mut job = entry.job;
            job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
            jobs.push(job);
        }
        for node in &mut self.nodes {
            node.advance_to(now);
            jobs.append(&mut node.outbox);
        }
        for node in &self.nodes {
            for job in &node.jobs {
                unfinished += 1;
                jobs.push(job.clone());
            }
        }
        unfinished += trace.len().saturating_sub(jobs.len());
        jobs.sort_by_key(|j| j.id());
        let summary = WorkloadSummary::of_jobs(jobs.iter());
        RunReport {
            trace_name: trace.name.clone(),
            policy: config.policy,
            seed: config.seed,
            summary,
            gauges: self.gauges,
            counters: self.counters,
            reservations: self.res_stats,
            node_counters: self.nodes.iter().map(|n| n.counters).collect(),
            events: Default::default(),
            finished_at: if self.done { self.finished_at } else { now },
            unfinished_jobs: unfinished,
            faults: self.faults.as_ref().map(|f| f.counters).unwrap_or_default(),
            run_stats: Default::default(),
            audit_violations: Vec::new(),
            jobs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::params::ClusterParams;
    use vr_workload::synth;
    use vrecon::{compare_reports, Simulation};

    fn small_cluster(n: usize) -> ClusterParams {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(n);
        cluster
    }

    /// The scenario must actually overflow memory, or the network-RAM path
    /// never fires and the test proves nothing. Asserted below.
    fn blocking_pair(policy: PolicyKind, netram: bool) -> (SimConfig, Trace) {
        let trace = synth::blocking_scenario(6, Bytes::from_mb(128));
        let mut config = SimConfig::new(small_cluster(6), policy).with_seed(7);
        if netram {
            config = config.with_network_ram();
        }
        (config, trace)
    }

    #[test]
    fn oracle_accepts_and_matches_network_ram() {
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let (config, trace) = blocking_pair(policy, true);
            let engine = Simulation::new(config.clone()).run(&trace);
            let oracle = run_oracle(&config, &trace, OracleSkew::None)
                .unwrap_or_else(|e| panic!("{policy}: oracle rejected network RAM: {e}"));
            let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
            assert!(diff.is_match(), "{policy}: {}", diff.render());
            // The scenario pages: remote backing must have fired, or this
            // differential run never exercised the new code path.
            assert!(
                engine.summary.totals.page > 0.0,
                "{policy}: scenario never paged"
            );
        }
    }

    #[test]
    fn network_ram_changes_the_oracle_outcome() {
        // The netram pass must not be a silent no-op in the oracle: the
        // same scenario with remote backing pages strictly less.
        let (local_cfg, trace) = blocking_pair(PolicyKind::GLoadSharing, false);
        let (netram_cfg, _) = blocking_pair(PolicyKind::GLoadSharing, true);
        let local = run_oracle(&local_cfg, &trace, OracleSkew::None).unwrap();
        let netram = run_oracle(&netram_cfg, &trace, OracleSkew::None).unwrap();
        assert!(
            netram.summary.totals.page < local.summary.totals.page,
            "netram page {:.1}s vs local {:.1}s",
            netram.summary.totals.page,
            local.summary.totals.page
        );
    }

    #[test]
    fn engine_matches_oracle_on_a_256_node_scale_scenario() {
        // The differential fuzzer mostly exercises tiny clusters; this
        // pins the O(log n) index, the sweep sets, and the incremental
        // refresh against the all-linear oracle at a size where a
        // bucket-boundary or staleness bug in any of them cannot hide.
        let spec = vr_workload::ScaleSpec::new(256, 1_000);
        let trace = spec.trace(&mut SimRng::seed_from(42));
        let config = SimConfig::new(spec.cluster(), PolicyKind::VReconfiguration).with_seed(7);
        let engine = Simulation::new(config.clone()).run(&trace);
        let oracle = run_oracle(&config, &trace, OracleSkew::None).unwrap();
        let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
        assert!(diff.is_match(), "{}", diff.render());
        assert!(engine.all_completed(), "scale scenario must drain");
    }

    #[test]
    fn thrashing_protection_matches_the_engine_bit_for_bit() {
        // Formerly a documented scope limit; now a differential obligation.
        for protection in [
            ThrashingProtection::ProtectLargest,
            ThrashingProtection::ProtectShortestRemaining,
        ] {
            let (mut config, trace) = blocking_pair(PolicyKind::GLoadSharing, false);
            for node in &mut config.cluster.nodes {
                node.protection = protection;
            }
            let engine = Simulation::new(config.clone()).run(&trace);
            let oracle = run_oracle(&config, &trace, OracleSkew::None)
                .unwrap_or_else(|e| panic!("{protection:?}: oracle rejected protection: {e}"));
            let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
            assert!(diff.is_match(), "{protection:?}: {}", diff.render());
            // The scenario must actually page, or the redistribution pass
            // was never exercised and the run proved nothing.
            assert!(
                engine.summary.totals.page > 0.0,
                "{protection:?}: scenario never paged"
            );
        }
    }

    #[test]
    fn protection_changes_the_oracle_outcome() {
        // The protection pass must not be a silent no-op in the oracle:
        // redistributing the largest job's stall changes who pages when.
        let (off_cfg, trace) = blocking_pair(PolicyKind::GLoadSharing, false);
        let mut on_cfg = off_cfg.clone();
        for node in &mut on_cfg.cluster.nodes {
            node.protection = ThrashingProtection::ProtectLargest;
        }
        let off = run_oracle(&off_cfg, &trace, OracleSkew::None).unwrap();
        let on = run_oracle(&on_cfg, &trace, OracleSkew::None).unwrap();
        assert_ne!(
            off.summary.avg_slowdown, on.summary.avg_slowdown,
            "protection never changed a single outcome"
        );
    }

    /// The blocking scenario with every other job declared malleable, so
    /// grow and shrink directives both have material to work on.
    fn malleable_trace() -> Trace {
        let mut trace = synth::blocking_scenario(6, Bytes::from_mb(128));
        for (i, job) in trace.jobs.iter_mut().enumerate() {
            if i % 2 == 0 {
                job.malleable = Some(vr_cluster::job::MalleableSpec {
                    min_width: 1,
                    max_width: 3,
                });
            }
        }
        trace
    }

    #[test]
    fn malleable_resizes_and_matches_the_engine() {
        let trace = malleable_trace();
        let config = SimConfig::new(small_cluster(6), PolicyKind::Malleable).with_seed(7);
        let engine = Simulation::new(config.clone()).run(&trace);
        let oracle = run_oracle(&config, &trace, OracleSkew::None).unwrap();
        let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
        assert!(diff.is_match(), "{}", diff.render());
        // The restated directive logic must actually fire, or the
        // differential run never left the classic path.
        assert!(
            engine.counters.grows + engine.counters.shrinks > 0,
            "no resize directive ever fired"
        );
    }

    #[test]
    fn malleable_respects_a_custom_step_differentially() {
        let trace = malleable_trace();
        let config = SimConfig::new(small_cluster(6), PolicyKind::Malleable)
            .with_seed(7)
            .with_policy_params(vrecon::plugin::ParamBag::new().with("max_step", 2));
        let engine = Simulation::new(config.clone()).run(&trace);
        let oracle = run_oracle(&config, &trace, OracleSkew::None).unwrap();
        let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
        assert!(diff.is_match(), "{}", diff.render());
    }

    #[test]
    fn fractional_oversubscription_matches_the_engine() {
        // Default oversub (2.0) and a fractional custom value, both
        // against the restated slot-cap arithmetic.
        for params in [
            vrecon::plugin::ParamBag::new(),
            vrecon::plugin::ParamBag::new().with("oversub", 1.5),
        ] {
            let (config, trace) = blocking_pair(PolicyKind::Fractional, false);
            let config = config.with_policy_params(params.clone());
            let engine = Simulation::new(config.clone()).run(&trace);
            let oracle = run_oracle(&config, &trace, OracleSkew::None).unwrap();
            let diff = compare_reports(&engine, &oracle, crate::fuzz::DIFF_TOLERANCE);
            assert!(diff.is_match(), "oversub {:?}: {}", params.render(), diff.render());
        }
    }
}
