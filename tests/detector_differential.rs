//! Differential tests for the blocking/idle-memory detector rewrite.
//!
//! The engine's hot path reads per-node memory state through incrementally
//! maintained caches ([`DetectorMode::Incremental`], the default). The
//! historical implementation re-derived every answer with a full rescan of
//! resident jobs ([`DetectorMode::Rescan`]) and is kept solely as the
//! reference. These tests pin the two modes to **byte-identical** encoded
//! reports across the reduced Figure 1 / Figure 2 matrix under both
//! policies, and pin the detector's edge-triggered counters exactly on a
//! golden scenario so a regressed detector cannot hide behind aggregate
//! metrics.

use vr_workload::trace::spec_trace_scaled;
use vrecon::encode_report;
use vrecon_repro::prelude::*;

const NODES: usize = 8;
const TRACE_SEED: u64 = 42;
const SCHED_SEED: u64 = 7;
const LIFETIME_SCALE: f64 = 0.05;

const LEVELS: [TraceLevel; 3] = [
    TraceLevel::Light,
    TraceLevel::Normal,
    TraceLevel::HighlyIntensive,
];

fn reduced_cluster() -> ClusterParams {
    let mut cluster = ClusterParams::cluster1();
    cluster.nodes.truncate(NODES);
    cluster
}

fn run_with(level: TraceLevel, policy: PolicyKind, detector: DetectorMode) -> RunReport {
    let trace = spec_trace_scaled(level, &mut SimRng::seed_from(TRACE_SEED), LIFETIME_SCALE);
    let config = SimConfig::new(reduced_cluster(), policy)
        .with_seed(SCHED_SEED)
        .with_detector(detector);
    Simulation::new(config).run(&trace)
}

fn assert_modes_agree(level: TraceLevel, policy: PolicyKind) {
    let rescan = run_with(level, policy, DetectorMode::Rescan);
    let incremental = run_with(level, policy, DetectorMode::Incremental);
    // Structural equality first for a readable failure...
    let diff = compare_reports(&rescan, &incremental, 0.0);
    assert!(
        diff.is_match(),
        "{level:?}/{policy}: detector modes diverged:\n{}",
        diff.render()
    );
    // ...then the full byte-identity contract on the encoded artifact.
    assert_eq!(
        encode_report(&rescan),
        encode_report(&incremental),
        "{level:?}/{policy}: encoded reports are not byte-identical"
    );
}

#[test]
fn detector_modes_agree_fig1_fig2_gloadsharing() {
    for level in LEVELS {
        assert_modes_agree(level, PolicyKind::GLoadSharing);
    }
}

#[test]
fn detector_modes_agree_fig1_fig2_vreconfiguration() {
    for level in LEVELS {
        assert_modes_agree(level, PolicyKind::VReconfiguration);
    }
}

/// Golden-counter pin: the exact number of blocking episodes and the exact
/// per-kind scheduler-event counts of the reduced highly-intensive V-R run.
/// `blocking_detections` counts state changes (a node newly entering the
/// blocked state), not scan ticks — the incremental detector's whole point —
/// so any drift back to level-triggered counting changes these numbers.
#[test]
fn golden_scenario_detector_counters_are_pinned() {
    let report = run_with(
        TraceLevel::HighlyIntensive,
        PolicyKind::VReconfiguration,
        DetectorMode::Incremental,
    );
    let count = |kind: SchedulerEventKind| report.events.of_kind(kind).count() as u64;
    assert_eq!(report.counters.blocking_detections, 145);
    assert_eq!(count(SchedulerEventKind::BlockingDetected), 145);
    assert_eq!(count(SchedulerEventKind::Blocked), 32_587);
    assert_eq!(count(SchedulerEventKind::TransitStarted), 32_015);
    assert_eq!(count(SchedulerEventKind::ReservationBegan), 12);
    assert_eq!(count(SchedulerEventKind::SpecialServiceStarted), 31);
    assert_eq!(count(SchedulerEventKind::MigrationStarted), 29);
    // The O(state changes) property itself: a level-triggered detector fires
    // on every 1 s scan tick a node *stays* blocked (which is what the
    // per-tick `Blocked` records above count), so it would report hundreds
    // of times more episodes than the edge-triggered count pinned here.
    assert!(
        report.counters.blocking_detections * 100 < count(SchedulerEventKind::Blocked),
        "blocking detections are no longer O(state changes)"
    );
}
