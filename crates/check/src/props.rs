//! Metamorphic properties of the simulator.
//!
//! A differential oracle cannot catch a bug both implementations share. A
//! *metamorphic* property can: transform the scenario in a way whose effect
//! on the report is provable from the model definition, run the engine on
//! both versions, and check the predicted relation. Each helper returns
//! `Err` with a description either when a precondition fails (the property
//! simply does not apply — a test bug) or when the property is violated (a
//! simulator bug).

use vr_cluster::job::{JobId, JobSpec};
use vr_faults::FaultPlan;
use vr_simcore::rng::SimRng;
use vr_simcore::time::SimTime;
use vr_workload::trace::Trace;
use vrecon::config::SimConfig;
use vrecon::plugin::{kind_of, policy_name, FractionalParams, ParamBag};
use vrecon::policy::PolicyKind;
use vrecon::report_json::encode_report;
use vrecon::{compare_reports, Simulation};

/// Two job specs are interchangeable if they differ at most in id and name.
fn interchangeable(a: &JobSpec, b: &JobSpec) -> bool {
    a.class == b.class
        && a.submit == b.submit
        && a.cpu_work == b.cpu_work
        && a.memory == b.memory
        && a.io_rate == b.io_rate
}

/// **Property: arrival-burst permutation invariance.**
///
/// If every group of jobs submitted at the same instant consists of jobs
/// that are physically identical (same work, memory profile, and class —
/// only names differ), then permuting each group within the trace and
/// renumbering ids sequentially yields a report identical in every compared
/// field: the k-th arrival event draws the k-th home from the scheduler's
/// RNG regardless of which (identical) job it carries, so the two runs are
/// isomorphic under the position relabelling.
///
/// # Errors
///
/// Returns an error if the precondition fails (a burst mixes non-identical
/// jobs) or the reports differ.
pub fn arrival_burst_permutation_invariance(
    config: &SimConfig,
    trace: &Trace,
    perm_seed: u64,
) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;

    // Group consecutive equal-submit jobs and verify interchangeability.
    let mut groups: Vec<Vec<JobSpec>> = Vec::new();
    for job in &trace.jobs {
        match groups.last_mut() {
            Some(group) if group[0].submit == job.submit => {
                if !interchangeable(&group[0], job) {
                    return Err(format!(
                        "precondition: burst at {} mixes non-identical jobs ({} vs {})",
                        job.submit, group[0].name, job.name
                    ));
                }
                group.push(job.clone());
            }
            _ => groups.push(vec![job.clone()]),
        }
    }

    // vr-analyze::rng-authority(reason = "the permutation stream is deliberately divorced from the simulation seed; it must vary while the scenario stays fixed")
    let mut rng = SimRng::seed_from(perm_seed);
    let mut permuted_jobs: Vec<JobSpec> = Vec::new();
    for mut group in groups {
        rng.shuffle(&mut group);
        permuted_jobs.extend(group);
    }
    for (i, job) in permuted_jobs.iter_mut().enumerate() {
        job.id = JobId(i as u64);
    }
    let permuted = Trace {
        name: trace.name.clone(),
        jobs: permuted_jobs,
    };
    permuted.validate()?;

    let base = Simulation::new(config.clone()).run(trace);
    let shuffled = Simulation::new(config.clone()).run(&permuted);
    let diff = compare_reports(&base, &shuffled, 0.0);
    if diff.is_match() {
        Ok(())
    } else {
        Err(format!(
            "arrival-burst permutation changed the report:\n{}",
            diff.render()
        ))
    }
}

/// **Property: uniform CPU-speed scaling.**
///
/// Scale every node's CPU speed by `factor > 0`. Under `NoLoadSharing`
/// with all jobs submitted at time zero, the whole trajectory is a pure
/// time rescaling: memory-phase boundaries and completions are defined in
/// *progress* space, so every per-job rate scales by `factor` and every
/// completion time by `1/factor`, while the CPU and page-stall components
/// of each job's breakdown are invariant and no migration cost ever
/// accrues. (The queue component is *not* invariant — it is wall time
/// minus the invariant components — so it is deliberately unchecked.)
///
/// The property only holds if no job ever waits in the cluster pending
/// queue (the retry period is a fixed wall-clock timescale); this is
/// checked on the reports rather than assumed.
///
/// # Errors
///
/// Returns an error if a precondition fails or the scaling relation is
/// violated.
pub fn cpu_speed_scaling(config: &SimConfig, trace: &Trace, factor: f64) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;
    if !(factor > 0.0 && factor.is_finite()) {
        return Err(format!("precondition: factor {factor} must be positive"));
    }
    if config.policy != PolicyKind::NoLoadSharing {
        return Err("precondition: cpu_speed_scaling requires NoLoadSharing".to_owned());
    }
    if trace.jobs.iter().any(|j| j.submit != SimTime::ZERO) {
        return Err("precondition: all jobs must be submitted at time zero".to_owned());
    }

    let mut scaled_config = config.clone();
    for node in &mut scaled_config.cluster.nodes {
        node.cpu.speed *= factor;
    }

    let base = Simulation::new(config.clone()).run(trace);
    let scaled = Simulation::new(scaled_config).run(trace);
    if base.counters.blocked_submissions != 0 || scaled.counters.blocked_submissions != 0 {
        return Err("precondition: a job hit the pending queue; scaling does not apply".to_owned());
    }
    if base.jobs.len() != scaled.jobs.len() {
        return Err(format!(
            "job count changed under speed scaling: {} vs {}",
            base.jobs.len(),
            scaled.jobs.len()
        ));
    }
    for (b, s) in base.jobs.iter().zip(scaled.jobs.iter()) {
        if b.id() != s.id() {
            return Err(format!("job order changed: {:?} vs {:?}", b.id(), s.id()));
        }
        match (b.completed_at, s.completed_at) {
            (Some(tb), Some(ts)) => {
                let expected = tb.as_micros() as f64 / factor;
                let got = ts.as_micros() as f64;
                let allowed = 100.0 + 1e-6 * expected.abs();
                if (got - expected).abs() > allowed {
                    return Err(format!(
                        "job {:?}: completion {}us, expected {}us (= {}us / {factor})",
                        b.id(),
                        got,
                        expected,
                        tb.as_micros()
                    ));
                }
            }
            (None, None) => {}
            _ => {
                return Err(format!(
                    "job {:?}: completion state changed under speed scaling",
                    b.id()
                ))
            }
        }
        let cpu_err = (b.breakdown.cpu - s.breakdown.cpu).abs();
        if cpu_err > 1e-6 * (1.0 + b.breakdown.cpu.abs()) {
            return Err(format!(
                "job {:?}: cpu component not invariant: {} vs {}",
                b.id(),
                b.breakdown.cpu,
                s.breakdown.cpu
            ));
        }
        let page_err = (b.breakdown.page - s.breakdown.page).abs();
        if page_err > 1e-6 * (1.0 + b.breakdown.page.abs()) {
            return Err(format!(
                "job {:?}: page component not invariant: {} vs {}",
                b.id(),
                b.breakdown.page,
                s.breakdown.page
            ));
        }
        // vr-lint::allow(float-eq, reason = "migration time is only ever incremented by whole costs, so NoLoadSharing must leave it at exactly literal 0.0")
        if b.breakdown.migration != 0.0 || s.breakdown.migration != 0.0 {
            return Err(format!(
                "job {:?}: migration cost under NoLoadSharing: {} / {}",
                b.id(),
                b.breakdown.migration,
                s.breakdown.migration
            ));
        }
    }
    Ok(())
}

/// **Property: an all-zero fault plan is no fault plan.**
///
/// `FaultPlan::none()` has no crashes, zero failure probabilities, and zero
/// stall — the injector draws no randomness for zero-probability faults, so
/// the runs must be equal in *every* field, event log included.
///
/// # Errors
///
/// Returns an error if the two reports differ anywhere.
pub fn zero_fault_plan_equivalence(config: &SimConfig, trace: &Trace) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;
    let mut without = config.clone();
    without.fault_plan = None;
    let mut with_zero = config.clone();
    with_zero.fault_plan = Some(FaultPlan::none());

    let base = Simulation::new(without).run(trace);
    let zeroed = Simulation::new(with_zero).run(trace);
    if base == zeroed {
        return Ok(());
    }
    let diff = compare_reports(&base, &zeroed, 0.0);
    Err(format!(
        "zero fault plan changed the run:\n{}",
        if diff.is_match() {
            "(difference is in the event log or run stats)".to_owned()
        } else {
            diff.render()
        }
    ))
}

/// **Property: registry-built ≡ enum-built.**
///
/// Resolving the config's policy through the string registry (name →
/// kind) and round-tripping its parameter bag through `render`/`parse`
/// must produce a run whose encoded report is *byte-identical* to the
/// original's: the registry is an addressing layer, not a behaviour
/// layer.
///
/// # Errors
///
/// Returns an error if the registry loses or remaps the policy, the bag
/// fails to round-trip, or the two encoded reports differ anywhere.
pub fn registry_enum_equivalence(config: &SimConfig, trace: &Trace) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;
    let name = policy_name(config.policy);
    let kind = kind_of(name).ok_or_else(|| format!("registry lost policy `{name}`"))?;
    if kind != config.policy {
        return Err(format!(
            "registry maps `{name}` to {kind}, not {}",
            config.policy
        ));
    }
    let bag = ParamBag::parse(&config.policy_params.render())
        .map_err(|e| format!("parameter bag failed to round-trip: {e}"))?;
    if bag != config.policy_params {
        return Err("parameter bag changed under render/parse".to_owned());
    }
    let mut registry_config = config.clone();
    registry_config.policy = kind;
    registry_config.policy_params = bag;

    let base = Simulation::new(config.clone()).run(trace);
    let rebuilt = Simulation::new(registry_config).run(trace);
    if encode_report(&base) == encode_report(&rebuilt) {
        Ok(())
    } else {
        let diff = compare_reports(&base, &rebuilt, 0.0);
        Err(format!(
            "registry-built run diverged from enum-built:\n{}",
            diff.render()
        ))
    }
}

/// **Property: a frozen malleable range is G-Loadsharing.**
///
/// When every malleable declaration in the trace has `min_width ==
/// max_width`, no job can ever grow or shrink, so the malleable family is
/// G-Loadsharing with extra (always-empty) resize scans: the two reports
/// must be equal in every field once the policy label is normalized —
/// grow and shrink are exact inverses of each other, and here neither
/// ever fires.
///
/// # Errors
///
/// Returns an error if a precondition fails (wrong policy, an unfrozen
/// range) or the reports differ.
pub fn frozen_malleable_is_gloadsharing(config: &SimConfig, trace: &Trace) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;
    if config.policy != PolicyKind::Malleable {
        return Err("precondition: frozen_malleable_is_gloadsharing requires Malleable".to_owned());
    }
    if let Some(job) = trace
        .jobs
        .iter()
        .find(|j| j.malleable.is_some_and(|m| m.min_width != m.max_width))
    {
        return Err(format!(
            "precondition: job {:?} has an unfrozen range",
            job.id
        ));
    }
    let mut gls_config = config.clone();
    gls_config.policy = PolicyKind::GLoadSharing;
    gls_config.policy_params = ParamBag::new();

    let mut malleable = Simulation::new(config.clone()).run(trace);
    let gls = Simulation::new(gls_config).run(trace);
    if malleable.counters.grows + malleable.counters.shrinks != 0 {
        return Err(format!(
            "a frozen range resized anyway: {} grows, {} shrinks",
            malleable.counters.grows, malleable.counters.shrinks
        ));
    }
    malleable.policy = PolicyKind::GLoadSharing;
    if malleable == gls {
        Ok(())
    } else {
        let diff = compare_reports(&malleable, &gls, 0.0);
        Err(format!(
            "frozen malleable diverged from G-Loadsharing:\n{}",
            if diff.is_match() {
                "(difference is in the event log or run stats)".to_owned()
            } else {
                diff.render()
            }
        ))
    }
}

/// **Property: unit oversubscription is G-Loadsharing.**
///
/// `oversub = 1` makes the fractional slot cap `floor(slots × 1) = slots`
/// on every node — the hardware ceiling — so the fractional family
/// degenerates to G-Loadsharing exactly, the same way a CPU-speed factor
/// of 1 degenerates the scaling law to identity.
///
/// # Errors
///
/// Returns an error if a precondition fails (wrong policy, `oversub`
/// not 1) or the reports differ.
pub fn unit_oversub_is_gloadsharing(config: &SimConfig, trace: &Trace) -> Result<(), String> {
    config.validate()?;
    trace.validate()?;
    if config.policy != PolicyKind::Fractional {
        return Err("precondition: unit_oversub_is_gloadsharing requires Fractional".to_owned());
    }
    let params = FractionalParams::from_bag(&config.policy_params)?;
    // vr-lint::allow(float-eq, reason = "precondition on a literal parameter value, not on computed arithmetic")
    if params.oversub != 1.0 {
        return Err(format!(
            "precondition: oversub must be exactly 1, got {}",
            params.oversub
        ));
    }
    let mut gls_config = config.clone();
    gls_config.policy = PolicyKind::GLoadSharing;
    gls_config.policy_params = ParamBag::new();

    let mut fractional = Simulation::new(config.clone()).run(trace);
    let gls = Simulation::new(gls_config).run(trace);
    fractional.policy = PolicyKind::GLoadSharing;
    if fractional == gls {
        Ok(())
    } else {
        let diff = compare_reports(&fractional, &gls, 0.0);
        Err(format!(
            "unit-oversub fractional diverged from G-Loadsharing:\n{}",
            if diff.is_match() {
                "(difference is in the event log or run stats)".to_owned()
            } else {
                diff.render()
            }
        ))
    }
}

/// Side-by-side blocking measurements for the G-Loadsharing vs
/// V-Reconfiguration comparison of [`gls_vs_vr`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockingComparison {
    /// Jobs that entered the pending queue under G-Loadsharing.
    pub gls_blocked: u64,
    /// Jobs that entered the pending queue under V-Reconfiguration.
    pub vr_blocked: u64,
    /// Average slowdown under G-Loadsharing.
    pub gls_avg_slowdown: f64,
    /// Average slowdown under V-Reconfiguration.
    pub vr_avg_slowdown: f64,
}

/// Runs the same scenario under `GLoadSharing` and `VReconfiguration` and
/// returns both policies' blocking counts and average slowdowns.
///
/// V-reconfiguration is designed to relieve the blocking *problem*, and on
/// blocking-prone scenarios its average slowdown is reliably lower — that
/// is the paper's claim and the relation tests assert. The raw
/// blocked-submission *count* is not monotone: reserving a workstation
/// removes capacity, so a few extra jobs transiently pend even while
/// overall service improves, which is why this helper reports the numbers
/// instead of asserting an inequality.
///
/// # Errors
///
/// Returns an error if the config or trace fails validation.
pub fn gls_vs_vr(config: &SimConfig, trace: &Trace) -> Result<BlockingComparison, String> {
    config.validate()?;
    trace.validate()?;
    let mut gls_config = config.clone();
    gls_config.policy = PolicyKind::GLoadSharing;
    let mut vr_config = config.clone();
    vr_config.policy = PolicyKind::VReconfiguration;
    let gls = Simulation::new(gls_config).run(trace);
    let vr = Simulation::new(vr_config).run(trace);
    Ok(BlockingComparison {
        gls_blocked: gls.counters.blocked_submissions,
        vr_blocked: vr.counters.blocked_submissions,
        gls_avg_slowdown: gls.avg_slowdown(),
        vr_avg_slowdown: vr.avg_slowdown(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::job::{JobClass, MemoryProfile};
    use vr_cluster::params::ClusterParams;
    use vr_cluster::units::Bytes;
    use vr_simcore::time::SimSpan;
    use vr_workload::synth;

    fn small_cluster(n: usize) -> ClusterParams {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(n);
        cluster
    }

    fn burst_trace(bursts: &[(u64, usize, u64, u64)]) -> Trace {
        // (submit_s, count, cpu_work_s, ws_mb) per burst.
        let mut jobs = Vec::new();
        for &(submit_s, count, work_s, ws_mb) in bursts {
            for _ in 0..count {
                let id = JobId(jobs.len() as u64);
                jobs.push(JobSpec {
                    id,
                    name: format!("job-{}", jobs.len()),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::from_secs(submit_s),
                    cpu_work: SimSpan::from_secs(work_s),
                    memory: MemoryProfile::constant(Bytes::from_mb(ws_mb)),
                    io_rate: 0.0,
                    malleable: None,
                });
            }
        }
        Trace {
            name: "burst-trace".to_owned(),
            jobs,
        }
    }

    #[test]
    fn burst_permutation_is_invariant() {
        let trace = burst_trace(&[(0, 4, 30, 40), (10, 3, 60, 80), (50, 2, 15, 20)]);
        for policy in PolicyKind::ALL {
            let config = SimConfig::new(small_cluster(4), policy).with_seed(11);
            arrival_burst_permutation_invariance(&config, &trace, 5)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn mixed_burst_is_rejected() {
        let mut trace = burst_trace(&[(0, 3, 30, 40)]);
        trace.jobs[1].cpu_work = SimSpan::from_secs(31);
        let config = SimConfig::new(small_cluster(4), PolicyKind::GLoadSharing);
        let err = arrival_burst_permutation_invariance(&config, &trace, 5).unwrap_err();
        assert!(err.contains("precondition"), "{err}");
    }

    #[test]
    fn speed_scaling_scales_completions() {
        let trace = burst_trace(&[(0, 6, 120, 30)]);
        let config = SimConfig::new(small_cluster(4), PolicyKind::NoLoadSharing).with_seed(3);
        for factor in [0.5, 2.0, 3.0] {
            cpu_speed_scaling(&config, &trace, factor)
                .unwrap_or_else(|e| panic!("factor {factor}: {e}"));
        }
    }

    #[test]
    fn speed_scaling_rejects_wrong_policy() {
        let trace = burst_trace(&[(0, 2, 10, 10)]);
        let config = SimConfig::new(small_cluster(4), PolicyKind::GLoadSharing);
        assert!(cpu_speed_scaling(&config, &trace, 2.0).is_err());
    }

    #[test]
    fn zero_plan_is_no_plan() {
        let trace = burst_trace(&[(0, 4, 30, 40), (20, 4, 45, 90)]);
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let config = SimConfig::new(small_cluster(4), policy).with_seed(9);
            zero_fault_plan_equivalence(&config, &trace)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    /// Per-policy parameter bags with non-default values, so the registry
    /// equivalence run exercises the parse/render path with real content.
    fn bag_for(policy: PolicyKind) -> ParamBag {
        match policy {
            PolicyKind::Malleable => ParamBag::new().with("max_step", 2),
            PolicyKind::Fractional => ParamBag::new().with("oversub", 1.5),
            _ => ParamBag::new(),
        }
    }

    fn annotate_malleable(mut trace: Trace, min: u32, max: u32) -> Trace {
        for (i, job) in trace.jobs.iter_mut().enumerate() {
            if i % 2 == 0 {
                job.malleable = Some(vr_cluster::job::MalleableSpec {
                    min_width: min,
                    max_width: max,
                });
            }
        }
        trace
    }

    #[test]
    fn registry_build_equals_enum_build_for_all_policies() {
        let trace = annotate_malleable(
            burst_trace(&[(0, 4, 30, 40), (10, 3, 60, 80), (50, 2, 15, 20)]),
            1,
            2,
        );
        for policy in PolicyKind::ALL {
            let config = SimConfig::new(small_cluster(4), policy)
                .with_seed(11)
                .with_policy_params(bag_for(policy));
            registry_enum_equivalence(&config, &trace).unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn frozen_malleable_matches_gls() {
        // Frozen at width 2: the width-aware rate path runs under *both*
        // policies (widths come from the spec, not the policy), and no
        // resize directive can fire.
        let trace = annotate_malleable(burst_trace(&[(0, 6, 40, 30), (20, 4, 25, 60)]), 2, 2);
        let config = SimConfig::new(small_cluster(4), PolicyKind::Malleable).with_seed(5);
        frozen_malleable_is_gloadsharing(&config, &trace).unwrap();
    }

    #[test]
    fn unit_oversub_matches_gls() {
        let trace = burst_trace(&[(0, 8, 40, 30), (15, 6, 25, 60)]);
        let config = SimConfig::new(small_cluster(4), PolicyKind::Fractional)
            .with_seed(5)
            .with_policy_params(ParamBag::new().with("oversub", 1.0));
        unit_oversub_is_gloadsharing(&config, &trace).unwrap();
    }

    #[test]
    fn fractional_time_sharing_matches_the_speed_law() {
        // The fractional analogue of the CPU-speed-scaling law: with 2×
        // oversubscription on one workstation, 2k CPU-bound jobs all run
        // at once, each at speed·ε(2k)/2k — so every completion lands at
        // exactly 2k·W / (speed·ε(2k)), the processor-sharing prediction.
        let cluster = small_cluster(1);
        let node = cluster.nodes[0];
        let k = 2 * node.cpu.slots as usize; // 16 jobs vs 8 hardware slots
        let work_s = 120u64;
        let trace = burst_trace(&[(0, k, work_s, 2)]);
        let config = SimConfig::new(cluster.clone(), PolicyKind::Fractional).with_seed(3);
        let report = Simulation::new(config).run(&trace);
        assert!(report.all_completed(), "fractional run left jobs pending");
        assert_eq!(
            report.counters.blocked_submissions, 0,
            "oversubscription should have absorbed the whole burst"
        );
        let q = node.cpu.quantum.as_secs_f64();
        let cs = node.cpu.context_switch.as_secs_f64();
        let eff = q / (q + cs);
        let expected = k as f64 * work_s as f64 / (node.cpu.speed * eff);
        for job in &report.jobs {
            let got = job.completed_at.unwrap().as_secs_f64();
            assert!(
                (got - expected).abs() <= 1e-6 * expected,
                "job {:?} completed at {got:.6}s, processor sharing predicts {expected:.6}s",
                job.id()
            );
        }
        // The law's other half: the hardware cap alone cannot absorb the
        // burst, so plain G-Loadsharing must block the overflow jobs.
        let gls_config = SimConfig::new(cluster, PolicyKind::GLoadSharing).with_seed(3);
        let gls = Simulation::new(gls_config).run(&trace);
        assert!(
            gls.counters.blocked_submissions > 0,
            "scenario failed to saturate the hardware slots"
        );
    }

    #[test]
    fn param_bags_round_trip_under_random_contents() {
        let mut rng = SimRng::seed_from(123);
        for _ in 0..200 {
            let mut bag = ParamBag::new();
            for _ in 0..rng.index(5) {
                let key = format!("k{}", rng.index(8));
                let value = format!("{}.{}", rng.index(1000), rng.index(10));
                bag = bag.with(&key, value);
            }
            let round = ParamBag::parse(&bag.render())
                .unwrap_or_else(|e| panic!("render/parse failed on {:?}: {e}", bag.render()));
            assert_eq!(bag, round, "bag changed under round-trip");
        }
    }

    #[test]
    fn every_registry_entry_rejects_unknown_keys() {
        for entry in vrecon::plugin::registry() {
            let bag = ParamBag::new().with("definitely_not_a_knob", 1);
            let err = vrecon::plugin::build_named(entry.name, &bag);
            assert!(
                err.is_err(),
                "{} accepted an unknown parameter key",
                entry.name
            );
        }
    }

    #[test]
    fn vr_relieves_blocking_on_the_blocking_scenario() {
        let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
        for seed in [0, 1, 42] {
            let config = SimConfig::new(small_cluster(8), PolicyKind::GLoadSharing).with_seed(seed);
            let cmp = gls_vs_vr(&config, &trace).unwrap();
            assert!(
                cmp.vr_avg_slowdown <= cmp.gls_avg_slowdown,
                "seed {seed}: V-Reconfiguration slowdown {} worse than G-Loadsharing {}",
                cmp.vr_avg_slowdown,
                cmp.gls_avg_slowdown
            );
            assert!(cmp.gls_blocked > 0, "scenario failed to provoke blocking");
        }
    }
}
