//! Verifies the paper's **§5 analytical model** against measured runs:
//! the execution-time decomposition identity, the four comparison points,
//! the reduction approximation, and the reserved-workstation queuing bound.

use vr_analysis::model::ExecutionTimeModel;
use vr_analysis::queueing::{fifo_queue_time, minimizing_order, reserved_queue_bound};
use vr_analysis::timeline::reserved_queue_bound_from_log;
use vr_bench::{run_pair, Group};
use vr_metrics::table::TextTable;
use vr_workload::trace::TraceLevel;

fn main() {
    println!("§5 model verification (both groups, all traces)\n");
    let mut table = TextTable::new(vec!["trace", "check", "holds", "detail"]);
    let mut all_hold = true;
    for group in [Group::Spec, Group::App] {
        for level in TraceLevel::ALL {
            let pair = run_pair(group, level);
            pair.gls
                .check_breakdown_identity(0.05)
                .expect("G-LS decomposition identity");
            pair.vr
                .check_breakdown_identity(0.05)
                .expect("V-R decomposition identity");
            // §5's key gain condition: the queuing time added by the
            // reserved workstations (bounded by sum (Q-j)*w_kj, measured
            // from the event log) must be far smaller than the queuing-time
            // reduction it buys.
            let reserved_bound = reserved_queue_bound_from_log(&pair.vr.events);
            let queue_reduction = pair.gls.total_queue_secs() - pair.vr.total_queue_secs();
            table.row(vec![
                pair.trace_name.clone(),
                "gain-condition".to_owned(),
                if reserved_bound < queue_reduction { "yes" } else { "NO" }.to_owned(),
                format!(
                    "reserved-queue bound {reserved_bound:.0}s << queue reduction {queue_reduction:.0}s"
                ),
            ]);
            all_hold &= reserved_bound < queue_reduction;
            let model = ExecutionTimeModel::from_reports(&pair.gls, &pair.vr);
            // T_mig is allowed a wide band: the paper itself argues it is a
            // small portion of execution time, not that it is equal.
            for check in model.checks(1.0) {
                all_hold &= check.holds;
                table.row(vec![
                    pair.trace_name.clone(),
                    check.name.to_owned(),
                    if check.holds { "yes" } else { "NO" }.to_owned(),
                    check.detail,
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "per-job identity t_exe = t_cpu + t_page + t_que + t_mig verified for \
         every completed job (tolerance 50 ms)."
    );
    println!(
        "overall: {}",
        if all_hold {
            "all §5 model points hold"
        } else {
            "some model points did NOT hold — see table"
        }
    );

    // The reserved-workstation queuing bound on a worked example.
    println!("\nreserved-workstation FIFO queuing bound g(Q) <= sum (Q-j)*w_j:");
    let waits = [120.0, 45.0, 300.0, 80.0];
    let bound = reserved_queue_bound(&waits);
    let best = reserved_queue_bound(&minimizing_order(&waits));
    println!(
        "  waits {waits:?}: bound {bound:.0}s, ascending-order bound {best:.0}s \
         (SRPT ordering minimizes: {})",
        best <= bound
    );
    println!(
        "  exact FIFO queue time for the same services: {:.0}s",
        fifo_queue_time(&waits)
    );
}
