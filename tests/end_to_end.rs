//! Cross-crate integration: full pipeline from trace generation through
//! simulation to analysis, on the paper's actual cluster configurations.

use vrecon_repro::prelude::*;

fn run(cluster: ClusterParams, policy: PolicyKind, trace: &Trace) -> RunReport {
    Simulation::new(SimConfig::new(cluster, policy).with_seed(7)).run(trace)
}

#[test]
fn spec_trace_light_completes_on_cluster1_under_both_policies() {
    let trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let report = run(ClusterParams::cluster1(), policy, &trace);
        assert!(
            report.all_completed(),
            "{policy}: {} unfinished",
            report.unfinished_jobs
        );
        assert_eq!(report.summary.jobs, 359);
        report.check_breakdown_identity(0.05).unwrap();
    }
}

#[test]
fn app_trace_light_completes_on_cluster2_under_both_policies() {
    let trace = app_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let report = run(ClusterParams::cluster2(), policy, &trace);
        assert!(
            report.all_completed(),
            "{policy}: {} unfinished",
            report.unfinished_jobs
        );
        assert_eq!(report.summary.jobs, 359);
        report.check_breakdown_identity(0.05).unwrap();
    }
}

#[test]
fn vreconfiguration_beats_gloadsharing_on_group1() {
    let trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let gls = run(ClusterParams::cluster1(), PolicyKind::GLoadSharing, &trace);
    let vr = run(
        ClusterParams::cluster1(),
        PolicyKind::VReconfiguration,
        &trace,
    );
    assert!(
        vr.avg_slowdown() < gls.avg_slowdown(),
        "V-R {:.2} should beat G-LS {:.2}",
        vr.avg_slowdown(),
        gls.avg_slowdown()
    );
    assert!(vr.total_queue_secs() < gls.total_queue_secs());
    assert!(vr.total_execution_secs() < gls.total_execution_secs());
    assert!(vr.reservations.started > 0, "V-R never reconfigured");
}

#[test]
fn section5_model_holds_on_group1() {
    let trace = spec_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let gls = run(ClusterParams::cluster1(), PolicyKind::GLoadSharing, &trace);
    let vr = run(
        ClusterParams::cluster1(),
        PolicyKind::VReconfiguration,
        &trace,
    );
    let model = ExecutionTimeModel::from_reports(&gls, &vr);
    assert!(model.execution_time_reduction() > 0.0);
    let checks = model.checks(1.0);
    for check in &checks {
        assert!(
            check.holds,
            "model point failed: {} — {}",
            check.name, check.detail
        );
    }
}

#[test]
fn reservations_balance_on_every_policy_and_group() {
    // Accounting invariant: every reservation started is eventually
    // released one way (service complete, unused, or timeout).
    for (cluster, trace) in [
        (
            ClusterParams::cluster1(),
            spec_trace(TraceLevel::Light, &mut SimRng::seed_from(42)),
        ),
        (
            ClusterParams::cluster2(),
            app_trace(TraceLevel::Light, &mut SimRng::seed_from(42)),
        ),
    ] {
        let report = run(cluster, PolicyKind::VReconfiguration, &trace);
        let r = report.reservations;
        assert_eq!(
            r.started,
            r.released_after_service + r.released_unused + r.timed_out,
            "reservation leak on {}: {r:?}",
            trace.name
        );
    }
}

#[test]
fn total_cpu_time_is_policy_invariant() {
    // §5 point 1: jobs demand identical CPU service under every policy.
    let trace = app_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let mut cpu_totals = Vec::new();
    for policy in PolicyKind::ALL {
        let report = run(ClusterParams::cluster2(), policy, &trace);
        assert!(report.all_completed(), "{policy}");
        cpu_totals.push(report.summary.totals.cpu);
    }
    for pair in cpu_totals.windows(2) {
        let rel = (pair[0] - pair[1]).abs() / pair[0];
        assert!(rel < 1e-3, "CPU totals differ: {cpu_totals:?}");
    }
}

#[test]
fn gauges_are_sampled_every_second() {
    let trace = app_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let report = run(
        ClusterParams::cluster2(),
        PolicyKind::VReconfiguration,
        &trace,
    );
    let samples = report.gauges.idle_memory_mb.len() as u64;
    let expected = report.finished_at.as_micros() / 1_000_000;
    assert!(
        samples >= expected.saturating_sub(2) && samples <= expected + 2,
        "{samples} samples over {expected} seconds"
    );
    assert_eq!(
        report.gauges.balance_skew.len(),
        report.gauges.idle_memory_mb.len()
    );
}

#[test]
fn sampling_interval_insensitivity_holds() {
    // §4.1/§4.2: 1 s, 10 s, 30 s and 60 s sampling give almost identical
    // averages.
    let trace = app_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let report = run(ClusterParams::cluster2(), PolicyKind::GLoadSharing, &trace);
    let base = report.gauges.idle_memory_mb.sample_average();
    for secs in [10u64, 30, 60] {
        let coarse = report
            .gauges
            .idle_memory_mb
            .resample(SimSpan::from_secs(secs))
            .sample_average();
        let rel = (base - coarse).abs() / base.max(1.0);
        assert!(
            rel < 0.08,
            "interval {secs}s shifted the average by {:.1}%",
            rel * 100.0
        );
    }
}
