//! The observability layer's contracts, end to end:
//!
//! * horizon-truncated runs are detectable from `RunReport.run_stats`
//!   (the regression test for the silently-discarded `RunStats` bug);
//! * chaining observers (auditor, tracer) never perturbs the simulation —
//!   the report is bit-identical with and without them;
//! * trace bytes are a pure function of (plan, seed): byte-identical
//!   across reruns, across concurrent execution, and report bytes are
//!   byte-identical across `--jobs` worker counts on the runner.

use std::sync::Arc;

use vr_runner::{ResultCache, Runner, Scenario, SweepOptions, SweepPlan};
use vr_trace::{chrome_trace, jsonl, TraceData};
use vrecon::report_json::encode_report;
use vrecon_repro::prelude::*;

fn small_cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(8);
    c
}

fn config(policy: PolicyKind) -> SimConfig {
    SimConfig::new(small_cluster(), policy).with_seed(123)
}

fn blocking_trace() -> Trace {
    synth::blocking_scenario(8, Bytes::from_mb(128))
}

#[test]
fn truncated_runs_are_flagged_in_run_stats() {
    let trace = blocking_trace();
    // A one-second horizon cannot drain this workload.
    let truncated = Simulation::new(
        config(PolicyKind::VReconfiguration).with_max_sim_time(SimSpan::from_secs(1)),
    )
    .run(&trace);
    assert!(!truncated.run_stats.drained, "run must report truncation");
    assert!(truncated.run_stats.final_time <= SimTime::from_secs(1));
    assert!(truncated.unfinished_jobs > 0);

    // The default horizon drains it, and the stats say so.
    let drained = Simulation::new(config(PolicyKind::VReconfiguration)).run(&trace);
    assert!(drained.run_stats.drained);
    assert!(drained.run_stats.events_processed > truncated.run_stats.events_processed);
    let last_logged = drained.events.entries().last().map(|e| e.time);
    assert!(Some(drained.run_stats.final_time) >= last_logged);
}

#[test]
fn observers_do_not_perturb_the_simulation() {
    let trace = blocking_trace();
    for audit in [false, true] {
        let plain =
            Simulation::new(config(PolicyKind::VReconfiguration).with_audit(audit)).run(&trace);
        let (traced, data) =
            Simulation::new(config(PolicyKind::VReconfiguration).with_audit(audit))
                .run_traced(&trace);
        // Bit-identical report — the tracer saw everything, changed nothing.
        assert_eq!(plain, traced, "audit={audit}");
        assert!(plain.audit_violations.is_empty());
        // The tracer mirrored the full event log.
        assert_eq!(data.records.len(), plain.events.len());
        assert_eq!(data.profile.engine_events, plain.run_stats.events_processed);
        assert!(!data.spans.is_empty());
    }
}

fn run_traced_once() -> (String, String) {
    let trace = blocking_trace();
    let (_, data): (RunReport, TraceData) =
        Simulation::new(config(PolicyKind::VReconfiguration)).run_traced(&trace);
    (chrome_trace(&data), jsonl(&data))
}

#[test]
fn trace_bytes_are_deterministic_across_runs_and_threads() {
    let (chrome_a, jsonl_a) = run_traced_once();
    let (chrome_b, jsonl_b) = run_traced_once();
    assert_eq!(chrome_a, chrome_b);
    assert_eq!(jsonl_a, jsonl_b);

    // Eight concurrent traced runs of the same scenario all produce the
    // serial bytes: nothing host-dependent leaks into the trace.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8).map(|_| scope.spawn(run_traced_once)).collect();
        for handle in handles {
            let (chrome, lines) = handle.join().expect("traced run panicked");
            assert_eq!(chrome, chrome_a);
            assert_eq!(lines, jsonl_a);
        }
    });
}

#[test]
fn report_bytes_identical_across_runner_worker_counts() {
    let trace = Arc::new(blocking_trace());
    let plan = || -> SweepPlan {
        [
            PolicyKind::GLoadSharing,
            PolicyKind::VReconfiguration,
            PolicyKind::SuspendLargest,
        ]
        .into_iter()
        .map(|policy| Scenario::new(config(policy), Arc::clone(&trace)))
        .collect()
    };
    let run_with = |jobs: usize| -> Vec<String> {
        let runner = Runner::new(SweepOptions {
            jobs,
            cache: ResultCache::disabled(),
            progress: false,
        });
        let outcome = runner.run(&plan());
        assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
        outcome
            .results
            .iter()
            .flatten()
            .map(|r| encode_report(&r.report))
            .collect()
    };
    let serial = run_with(1);
    let parallel = run_with(8);
    assert_eq!(serial, parallel);
    // The encoding carries the run stats (schema v2), so this equality
    // also pins events_processed/drained across worker counts.
    assert!(serial[0].contains("\"run_stats\":"));
    assert!(serial[0].contains("\"drained\":true"));
}
