pub fn notify_under_lock(state: &Mutex<u64>, hooks: &dyn RequestHook) {
    let guard = state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    hooks.on_request(&guard);
}
