//! Item/scope recovery on top of the token stream.
//!
//! `vr-analyze`'s semantic rules need to know *which function* a token
//! belongs to, what `impl` block encloses it, and whether the function
//! carries a `# Panics` doc contract. Full parsing is out of reach
//! offline (no `syn`), but Rust's item grammar is regular enough at the
//! token level to recover `mod` / `impl` / `fn` structure with a scope
//! stack: every `{` either belongs to an item header we just scanned or
//! is an anonymous block. The result is approximate by design — macro
//! bodies are opaque token soup and trait objects erase the callee — and
//! the rules that consume it over-approximate accordingly.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::rules;

/// One `fn` item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Last path segment of the enclosing `impl`'s self type, if any.
    pub impl_type: Option<String>,
    /// Enclosing in-file `mod` names, outermost first.
    pub modules: Vec<String>,
    /// Position of the `fn` keyword (1-based).
    pub line: u32,
    /// Column of the `fn` keyword (1-based).
    pub col: u32,
    /// Any `pub` visibility, including restricted forms like `pub(crate)`.
    pub is_pub: bool,
    /// The attached doc comment has a `# Panics` section.
    pub doc_panics: bool,
    /// Declared inside a `#[cfg(test)]` region.
    pub in_test_region: bool,
    /// Token index range of the signature after the name, up to but not
    /// including the body `{` or the terminating `;`.
    pub sig: (usize, usize),
    /// Token index range of the body including both braces; empty
    /// (`start == end`) for bodyless trait-method declarations.
    pub body: (usize, usize),
}

impl FnItem {
    /// `true` when the item has a body.
    pub fn has_body(&self) -> bool {
        self.body.1 > self.body.0
    }
}

/// What a `{` on the scope stack belongs to.
enum Scope {
    Mod(String),
    Impl(Option<String>),
    /// Index into the output `Vec<FnItem>`.
    Fn(usize),
    Other,
}

/// Recovers every `fn` item from a lexed file.
pub fn parse_fns(lexed: &Lexed) -> Vec<FnItem> {
    let tokens = &lexed.tokens;
    let test_regions = rules::test_regions(tokens);
    let attr_ranges = attribute_line_ranges(tokens);
    let doc_lines = doc_comment_lines(&lexed.comments);

    let mut fns: Vec<FnItem> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => stack.push(Scope::Other),
                "}" => {
                    if let Some(Scope::Fn(idx)) = stack.last() {
                        fns[*idx].body.1 = i + 1;
                    }
                    stack.pop();
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" if tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                let name = tokens[i + 1].text.clone();
                if tokens.get(i + 2).is_some_and(|n| n.is_punct("{")) {
                    stack.push(Scope::Mod(name));
                    i += 3;
                } else {
                    // `mod name;` — an out-of-line module, no scope here.
                    i += 2;
                }
            }
            "impl" => {
                // Scan the header to the body `{` (or a `;` — e.g.
                // `type T = impl Trait;` never opens a scope).
                match scan_to_body(tokens, i + 1) {
                    Some((open, true)) => {
                        let ty = impl_self_type(&tokens[i + 1..open]);
                        stack.push(Scope::Impl(ty));
                        i = open + 1;
                    }
                    Some((stop, false)) => i = stop + 1,
                    None => i = tokens.len(),
                }
            }
            "fn" if tokens.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                let name_tok = &tokens[i + 1];
                let (decl_start, is_pub) = visibility_backscan(tokens, i);
                let decl_line = tokens[decl_start].line;
                let doc_panics = docs_mention_panics(decl_line, &doc_lines, &attr_ranges);
                let impl_type = stack.iter().rev().find_map(|s| match s {
                    Scope::Impl(ty) => Some(ty.clone()),
                    _ => None,
                });
                let modules = stack
                    .iter()
                    .filter_map(|s| match s {
                        Scope::Mod(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let item = FnItem {
                    name: name_tok.text.clone(),
                    impl_type: impl_type.flatten(),
                    modules,
                    line: t.line,
                    col: t.col,
                    is_pub,
                    doc_panics,
                    in_test_region: rules::in_regions(&test_regions, t.line),
                    sig: (i + 2, i + 2),
                    body: (0, 0),
                };
                match scan_to_body(tokens, i + 2) {
                    Some((open, true)) => {
                        let idx = fns.len();
                        let mut item = item;
                        item.sig = (i + 2, open);
                        item.body = (open, open); // end patched at `}`
                        fns.push(item);
                        stack.push(Scope::Fn(idx));
                        i = open + 1;
                    }
                    Some((stop, false)) => {
                        let mut item = item;
                        item.sig = (i + 2, stop);
                        fns.push(item);
                        i = stop + 1;
                    }
                    None => i = tokens.len(),
                }
            }
            _ => i += 1,
        }
    }
    // Unterminated bodies (truncated input) run to EOF.
    for f in &mut fns {
        if f.body.1 == f.body.0 && f.body.0 != 0 && f.body.0 < tokens.len() {
            f.body.1 = tokens.len();
        }
    }
    fns
}

/// From `start`, scans an item header to its body `{` or terminating `;`,
/// ignoring delimiters nested in parens, brackets, or angle brackets
/// (generics). Returns `(index, true)` for a `{`, `(index, false)` for a
/// `;`, `None` at EOF.
fn scan_to_body(tokens: &[Tok], start: usize) -> Option<(usize, bool)> {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut angle = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                "<" => angle += 1,
                ">" => angle = (angle - 1).max(0),
                "{" if paren == 0 && bracket == 0 && angle == 0 => {
                    return Some((j, true));
                }
                // A const-generic default like `Foo<{ N }>` nests a brace
                // at angle depth > 0; skip the group.
                "{" => {
                    let mut depth = 1i32;
                    j += 1;
                    while j < tokens.len() && depth > 0 {
                        if tokens[j].is_punct("{") {
                            depth += 1;
                        } else if tokens[j].is_punct("}") {
                            depth -= 1;
                        }
                        j += 1;
                    }
                    continue;
                }
                ";" if paren == 0 && bracket == 0 => return Some((j, false)),
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// Extracts the self type's last path segment from an `impl` header
/// (the tokens between `impl` and the body `{`): the path after `for`
/// when present, else the path after the leading generic parameters.
fn impl_self_type(header: &[Tok]) -> Option<String> {
    // Find a top-level `for` (angle depth 0); `for<'a>` HRTBs sit inside
    // bounds and are rare enough in impl headers to ignore.
    let mut angle = 0i32;
    let mut start = 0usize;
    for (k, t) in header.iter().enumerate() {
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_ident("for") {
            start = k + 1;
        } else if angle == 0 && t.is_ident("where") {
            break;
        }
    }
    // Skip leading generics when there was no `for`.
    let mut k = start;
    if k == 0 && header.first().is_some_and(|t| t.is_punct("<")) {
        let mut depth = 0i32;
        while k < header.len() {
            if header[k].is_punct("<") {
                depth += 1;
            } else if header[k].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    k += 1;
                    break;
                }
            }
            k += 1;
        }
    }
    // Walk the type path: the name is the last identifier before generic
    // arguments, a `where` clause, or the end of the header.
    let mut name: Option<String> = None;
    let mut angle = 0i32;
    while k < header.len() {
        let t = &header[k];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle = (angle - 1).max(0);
        } else if angle == 0 {
            if t.is_ident("where") {
                break;
            }
            if t.kind == TokKind::Ident
                && !matches!(t.text.as_str(), "dyn" | "mut" | "const" | "for")
            {
                name = Some(t.text.clone());
            }
        }
        k += 1;
    }
    name
}

/// Walks backwards over the modifier chain before a `fn` keyword
/// (`pub(crate) const unsafe extern "C" fn`), returning the index where
/// the declaration starts and whether any `pub` was seen.
fn visibility_backscan(tokens: &[Tok], fn_idx: usize) -> (usize, bool) {
    let mut start = fn_idx;
    let mut is_pub = false;
    let mut j = fn_idx;
    // Depth inside a `pub(crate)` / `pub(in path::to)` restriction group,
    // whose contents are arbitrary path tokens.
    let mut group = 0usize;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(")") {
            group += 1;
            start = j;
            continue;
        }
        if t.is_punct("(") {
            if group == 0 {
                break;
            }
            group -= 1;
            start = j;
            continue;
        }
        if group > 0 {
            start = j;
            continue;
        }
        if t.is_ident("pub") {
            is_pub = true;
            start = j;
            continue;
        }
        let modifier = match t.kind {
            TokKind::Ident => matches!(
                t.text.as_str(),
                "const" | "async" | "unsafe" | "extern" | "default"
            ),
            TokKind::Str => true, // extern "C"
            _ => false,
        };
        if modifier {
            start = j;
            continue;
        }
        break;
    }
    (start, is_pub)
}

/// Line ranges covered by `#[...]` attributes, so the doc-comment walk can
/// step over them.
fn attribute_line_ranges(tokens: &[Tok]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") {
            let start = tokens[i].line;
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut end = start;
            while j < tokens.len() {
                if tokens[j].is_punct("[") {
                    depth += 1;
                } else if tokens[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        end = tokens[j].line;
                        break;
                    }
                }
                j += 1;
            }
            out.push((start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    out
}

/// `line -> text` of `///` doc comments (block docs `/** */` included).
/// `//!` module docs attach to the file, not an item, and are skipped.
fn doc_comment_lines(comments: &[Comment]) -> Vec<(u32, String)> {
    comments
        .iter()
        .filter(|c| c.text.starts_with('/') || c.text.starts_with('*'))
        .map(|c| (c.line, c.text.clone()))
        .collect()
}

/// Whether the doc block ending directly above `decl_line` (attributes
/// between docs and item are stepped over) mentions a `# Panics` section.
fn docs_mention_panics(
    decl_line: u32,
    doc_lines: &[(u32, String)],
    attr_ranges: &[(u32, u32)],
) -> bool {
    let has_doc = |line: u32| doc_lines.iter().any(|&(l, _)| l == line);
    let in_attr = |line: u32| attr_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let mut line = decl_line;
    let mut found = false;
    while line > 1 {
        line -= 1;
        if in_attr(line) {
            continue;
        }
        if has_doc(line) {
            found = found
                || doc_lines
                    .iter()
                    .any(|&(l, ref text)| l == line && text.contains("# Panics"));
            continue;
        }
        break;
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src))
    }

    #[test]
    fn free_fn_and_method() {
        let src = "\
fn free() { body(); }
impl Stopwatch {
    pub fn start() -> Stopwatch { Stopwatch(x) }
}
";
        let out = fns(src);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "free");
        assert_eq!(out[0].impl_type, None);
        assert!(!out[0].is_pub);
        assert_eq!(out[1].name, "start");
        assert_eq!(out[1].impl_type.as_deref(), Some("Stopwatch"));
        assert!(out[1].is_pub);
    }

    #[test]
    fn trait_impl_self_type_and_generics() {
        let src = "\
impl<'a, T: Clone> Iterator for Walker<'a, T> {
    fn next(&mut self) -> Option<T> { None }
}
impl<T> Wrapper<T> {
    fn get(&self) -> &T { &self.0 }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { x() }
}
";
        let out = fns(src);
        assert_eq!(out[0].impl_type.as_deref(), Some("Walker"));
        assert_eq!(out[1].impl_type.as_deref(), Some("Wrapper"));
        assert_eq!(out[2].impl_type.as_deref(), Some("SimTime"));
    }

    #[test]
    fn modules_nest_and_bodies_span() {
        let src = "\
mod outer {
    mod inner {
        fn deep() { a(); b(); }
    }
    fn shallow() {}
}
fn top() {}
";
        let out = fns(src);
        assert_eq!(out[0].name, "deep");
        assert_eq!(out[0].modules, vec!["outer", "inner"]);
        assert_eq!(out[1].name, "shallow");
        assert_eq!(out[1].modules, vec!["outer"]);
        assert_eq!(out[2].name, "top");
        assert!(out[2].modules.is_empty());
        assert!(out[0].has_body());
    }

    #[test]
    fn bodyless_trait_method_and_fn_pointer_type() {
        let src = "\
trait Hook {
    fn on_event(&self, e: &Event);
    fn with_default(&self) -> u32 { 7 }
}
fn takes_ptr(g: fn(u32) -> u32) -> u32 { g(1) }
";
        let out = fns(src);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].name, "on_event");
        assert!(!out[0].has_body());
        assert!(out[1].has_body());
        // The `fn(u32) -> u32` pointer type must not register as an item.
        assert_eq!(out[2].name, "takes_ptr");
        assert!(out[2].has_body());
    }

    #[test]
    fn visibility_forms() {
        let src = "\
pub(crate) fn a() {}
pub(in crate::x) fn b() {}
pub const unsafe extern \"C\" fn c() {}
const fn d() {}
";
        let out = fns(src);
        assert!(out[0].is_pub);
        assert!(out[1].is_pub);
        assert!(out[2].is_pub);
        assert!(!out[3].is_pub);
    }

    #[test]
    fn panics_doc_contract_detected_through_attributes() {
        let src = "\
/// Does a thing.
///
/// # Panics
///
/// When the invariant breaks.
#[inline]
pub fn documented() { x(); }

/// No contract here.
pub fn undocumented() { x(); }
";
        let out = fns(src);
        assert!(out[0].doc_panics);
        assert!(!out[1].doc_panics);
    }

    #[test]
    fn test_region_marking() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn in_tests() {}
}
";
        let out = fns(src);
        assert!(!out[0].in_test_region);
        assert!(out[1].in_test_region);
    }

    #[test]
    fn nested_fn_and_closures_do_not_confuse_scopes() {
        let src = "\
fn outer() {
    let c = |x: u32| { x + 1 };
    fn inner() { deep(); }
    after_inner();
}
fn next_item() {}
";
        let out = fns(src);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].name, "outer");
        assert_eq!(out[1].name, "inner");
        assert_eq!(out[2].name, "next_item");
        // outer's body spans past inner's.
        assert!(out[0].body.1 > out[1].body.1);
    }

    #[test]
    fn where_clause_and_return_impl_trait() {
        let src = "\
fn make<T>(x: T) -> impl Iterator<Item = T>
where
    T: Clone,
{
    std::iter::once(x)
}
";
        let out = fns(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "make");
        assert!(out[0].has_body());
    }
}
