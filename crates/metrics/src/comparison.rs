//! Paired policy comparisons.
//!
//! The paper's figures all report the same structure: a baseline
//! (G-Loadsharing) against the proposed method (V-Reconfiguration) across
//! five traces, with reductions quoted in percent. [`MetricComparison`]
//! captures one such pairing; [`fmt_reduction`] renders it the way §4 quotes
//! it.

use serde::{Deserialize, Serialize};
use vr_simcore::stats::reduction_pct;

/// One metric measured under a baseline and under the candidate policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricComparison {
    /// Baseline (G-Loadsharing) value.
    pub baseline: f64,
    /// Candidate (V-Reconfiguration) value.
    pub candidate: f64,
}

impl MetricComparison {
    /// Pairs two measurements.
    pub fn new(baseline: f64, candidate: f64) -> Self {
        MetricComparison {
            baseline,
            candidate,
        }
    }

    /// Reduction achieved by the candidate, in percent (positive = better
    /// for lower-is-better metrics).
    pub fn reduction(&self) -> f64 {
        reduction_pct(self.baseline, self.candidate)
    }

    /// `true` if the candidate improved (strictly lower) on a
    /// lower-is-better metric.
    pub fn improved(&self) -> bool {
        self.candidate < self.baseline
    }
}

/// Formats a comparison like the paper quotes it: `"29.3%"` (one decimal).
pub fn fmt_reduction(c: &MetricComparison) -> String {
    format!("{:.1}%", c.reduction())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_matches_paper_arithmetic() {
        let c = MetricComparison::new(1000.0, 707.0);
        assert!((c.reduction() - 29.3).abs() < 1e-9);
        assert!(c.improved());
        assert_eq!(fmt_reduction(&c), "29.3%");
    }

    #[test]
    fn regression_is_negative() {
        let c = MetricComparison::new(100.0, 120.0);
        assert!(c.reduction() < 0.0);
        assert!(!c.improved());
    }

    #[test]
    fn zero_baseline_is_zero_reduction() {
        assert_eq!(MetricComparison::new(0.0, 5.0).reduction(), 0.0);
    }
}
