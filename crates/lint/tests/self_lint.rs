//! The workspace must pass its own analyzer: `cargo test` fails if anyone
//! reintroduces a nondeterministic collection, a wall-clock read, or an
//! unannotated panic site anywhere vr-lint scopes to.

use std::path::Path;

use vr_lint::lint_workspace;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); did the walker miss the crates?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "vr-lint found {} diagnostic(s):\n{}",
        report.diagnostics.len(),
        report.render_text()
    );
}

#[test]
fn allow_directives_are_all_live() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace walk succeeds");
    assert!(
        report.allows > 0,
        "the shipped tree documents its invariants"
    );
    assert_eq!(
        report.stale_allows, 0,
        "stale allow directives must be deleted, not accumulated"
    );
}
