//! Offline stand-in for `criterion`. See `compat/README.md`.
//!
//! Benchmarks compile and run (each routine executes once and reports its
//! wall time) so `cargo test`/`cargo bench` keep the bench targets honest,
//! but no statistics are collected.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Stand-in for `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), &mut f);
        self
    }
}

/// Stand-in for `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name.into()), &mut f);
        self
    }

    /// Accepted for API compatibility; the stand-in always runs once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Stand-in for `criterion::Bencher`: times exactly one execution.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let _ = routine();
        self.elapsed = start.elapsed();
    }

    /// Times one call of `routine` on one input built by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let _ = routine(input);
        self.elapsed = start.elapsed();
    }
}

/// Stand-in for `criterion::BatchSize` (ignored by the stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!("bench {name}: {:?} (single pass)", bencher.elapsed);
}

/// Collects benchmark functions into one group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
