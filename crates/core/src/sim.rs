//! The trace-driven cluster simulation driver.
//!
//! [`Simulation`] wires everything together: it replays a
//! [`Trace`] against a cluster of
//! [`Workstation`]s under a
//! [`PolicyKind`], implementing the framework of
//! §2.1:
//!
//! ```text
//! While the load sharing system is on
//!     if job submissions or/and migrations are allowed
//!         general_dynamic_load_sharing();
//!     else
//!         start reconfiguration:
//!             if a reserved workstation has enough available resources
//!                 node_ID = reserved_ID;
//!             else
//!                 node_ID = reserve_a_workstation();
//!             job_ID = find_most_memory_intensive_job();
//!             migrate_job(job_ID, node_ID);
//! ```
//!
//! Mechanics:
//!
//! * **Arrivals** fire as events at each job's submission instant; the job is
//!   assigned a uniformly random home workstation ("the jobs in each trace
//!   were randomly submitted to 32 workstations") and the policy places it.
//! * **Blocked submissions** wait in a cluster-level pending queue; their
//!   wait is queuing time. They are retried on every completion and on a
//!   periodic tick.
//! * **Remote submissions and migrations** put the job "in transit" for the
//!   network cost (`r`, respectively `r + D/B`); transit time is migration
//!   time.
//! * **The load index** refreshes on the exchange period (and after
//!   completions, modelling the freed node's announcement); placement
//!   decisions read the index, not live node state, and stale decisions can
//!   bounce.
//! * **Overload scan**: each exchange tick, nodes faulting beyond the
//!   overload threshold trigger preemptive migration of their most
//!   memory-intensive job to a qualified destination; when no destination
//!   qualifies, the blocking problem is detected and (under
//!   V-Reconfiguration) the reconfiguration routine runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use vr_cluster::job::{JobId, JobSpec, JobState, RunningJob};
use vr_cluster::loadinfo::LoadIndex;
use vr_cluster::node::{NodeId, Workstation};
use vr_cluster::units::Bytes;
use vr_faults::FaultInjector;
use vr_metrics::sampler::ClusterGauges;
use vr_metrics::summary::WorkloadSummary;
use vr_simcore::engine::{Engine, RunStats, Scheduler, World};
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};
use vr_trace::{TraceData, TraceRecord, TraceSource, Tracer};
use vr_workload::trace::Trace;

use crate::config::{DetectorMode, LoadInfoMode, PlacementMode, ReservingEnd, SimConfig};
use crate::events::{EventLog, SchedulerEventKind};
use crate::plugin::{build_policy, Policy, ResizeDirective};
use crate::policy::Placement;
#[cfg(test)]
use crate::policy::PolicyKind;
use crate::report::{RunReport, SchedulerCounters};
use crate::reservation::{ReservationManager, ReservationPhase};

/// Events driving the cluster world.
#[derive(Debug)]
pub(crate) enum Event {
    /// A job reaches the cluster.
    Arrival(Box<JobSpec>),
    /// A workstation predicted a completion or phase boundary.
    NodeWake { node: NodeId, epoch: u64 },
    /// Periodic global load-information exchange + overload scan.
    Exchange,
    /// Periodic gauge sampling.
    Sample,
    /// Periodic retry of the pending queue.
    PendingRetry,
    /// A remote submission or migration arrives at its destination.
    TransitArrive { job: JobId },
    /// Fault injection: a workstation crashes.
    NodeCrash { node: NodeId },
    /// Fault injection: a crashed workstation comes back up.
    NodeRestart { node: NodeId },
    /// Fault injection: a stalled reservation release finally lands.
    ReservationUnstall { node: NodeId },
}

/// How many times one job may be suspended before it is pinned resident.
const MAX_SUSPENSIONS_PER_JOB: u32 = 5;

/// A job waiting in the cluster pending queue.
#[derive(Debug)]
pub(crate) struct PendingJob {
    job: RunningJob,
    since: SimTime,
    home: NodeId,
}

/// A job on the wire.
#[derive(Debug)]
pub(crate) struct Transit {
    pub(crate) job: RunningJob,
    pub(crate) dst: NodeId,
    /// `true` if this is a special-service migration into a reserved node.
    to_reserved: bool,
    /// Delivery attempts that failed in transit (fault injection).
    attempts: u32,
}

/// A job swapped out by the Suspend-Largest strawman.
#[derive(Debug)]
pub(crate) struct SuspendedJob {
    job: RunningJob,
    since: SimTime,
}

/// A configured, reusable simulation. Each [`Simulation::run`] call replays
/// one trace from scratch and returns a [`RunReport`].
///
/// ```no_run
/// use vrecon::config::SimConfig;
/// use vrecon::policy::PolicyKind;
/// use vrecon::sim::Simulation;
/// use vr_cluster::params::ClusterParams;
/// use vr_simcore::rng::SimRng;
/// use vr_workload::trace::{spec_trace, TraceLevel};
///
/// let trace = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(42));
/// let config = SimConfig::new(ClusterParams::cluster1(), PolicyKind::VReconfiguration);
/// let report = Simulation::new(config).run(&trace);
/// println!("avg slowdown {:.2}", report.avg_slowdown());
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Creates a simulation from a configuration.
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Replays `trace` and reports the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the trace fails [`Trace::validate`] or the configuration
    /// fails [`SimConfig::validate`].
    pub fn run(&self, trace: &Trace) -> RunReport {
        self.run_with_tracer(trace, None)
    }

    /// Like [`Simulation::run`], but with a [`Tracer`] chained behind the
    /// auditor, returning the structured trace alongside the report.
    ///
    /// The tracer observes the world immutably after each event, so the
    /// report is identical to what [`Simulation::run`] produces — asserted
    /// by the hook-composition tests.
    ///
    /// # Panics
    ///
    /// Same contract as [`Simulation::run`].
    pub fn run_traced(&self, trace: &Trace) -> (RunReport, TraceData) {
        let mut tracer = Tracer::new();
        let report = self.run_with_tracer(trace, Some(&mut tracer));
        let data = tracer.finish(report.run_stats.final_time);
        (report, data)
    }

    fn run_with_tracer(&self, trace: &Trace, tracer: Option<&mut Tracer>) -> RunReport {
        self.config
            .validate()
            // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: run() rejects invalid configs up front")
            .unwrap_or_else(|e| panic!("invalid simulation config: {e}"));
        trace
            .validate()
            // vr-lint::allow(panic-in-lib, reason = "documented # Panics contract: run() rejects invalid traces up front")
            .unwrap_or_else(|e| panic!("invalid trace {}: {e}", trace.name));
        let mut world = ClusterWorld::new(&self.config, trace.len());
        let mut engine = Engine::new();
        {
            let mut sched = engine.scheduler();
            for job in &trace.jobs {
                sched.schedule_at(job.submit, Event::Arrival(Box::new(job.clone())));
            }
            sched.schedule_at(SimTime::ZERO, Event::Exchange);
            sched.schedule_at(SimTime::ZERO, Event::Sample);
            sched.schedule_in(self.config.pending_retry_period, Event::PendingRetry);
            if let Some(injector) = &world.faults {
                for crash in injector.crash_schedule() {
                    let node = NodeId(crash.node as u32);
                    sched.schedule_at(crash.at, Event::NodeCrash { node });
                    if let Some(delay) = crash.restart_after {
                        sched.schedule_at(crash.at + delay, Event::NodeRestart { node });
                    }
                }
            }
        }
        let horizon = SimTime::ZERO + self.config.max_sim_time;
        let mut auditor = self
            .config
            .audit
            .then(|| crate::audit::InvariantAuditor::new(&self.config));
        // Auditor and tracer compose through the generic hook chain: each
        // optional, each seeing the world immutably after every event, so
        // neither can perturb the run (or each other).
        let stats = {
            let mut hooks = (auditor.as_mut(), tracer);
            engine.run_until_with(&mut world, horizon, &mut hooks)
        };
        let violations = auditor
            .map(|mut a| {
                a.finish(&world, engine.now());
                a.into_violations()
            })
            .unwrap_or_default();
        let mut report = world.into_report(trace, &self.config, engine.now());
        report.run_stats = stats;
        report.audit_violations = violations;
        report
    }
}

/// Exposes the scheduler event log as structured trace records, read by
/// the [`Tracer`] with a cursor (same pattern as the invariant auditor's
/// log tail scan).
impl TraceSource for ClusterWorld {
    fn record_count(&self) -> usize {
        self.log.len()
    }

    fn record_at(&self, i: usize) -> TraceRecord {
        let e = &self.log.entries()[i];
        TraceRecord {
            time: e.time,
            kind: e.kind.token(),
            job: e.job.map(|j| j.0),
            node: e.node.map(|n| u64::from(n.0)),
        }
    }
}

/// The mutable simulation state (the [`World`] the engine drives).
/// `pub(crate)` (with visible fields) so the invariant auditor in
/// [`crate::audit`] can inspect the world after every event.
pub(crate) struct ClusterWorld {
    /// The policy as a trait object, built from the registry. All
    /// capability queries and placement calls dispatch through this; the
    /// enum tag lives on in `config.policy` for the report.
    plugin: Box<dyn Policy>,
    pub(crate) config: SimConfig,
    pub(crate) nodes: Vec<Workstation>,
    index: LoadIndex,
    rng: SimRng,
    pub(crate) pending: VecDeque<PendingJob>,
    /// Jobs on the wire (remote submissions and migrations), keyed by job
    /// id so per-event membership, removal, and retry lookups stay
    /// O(log transits) however many transfers are in flight; the per-node
    /// aggregates in `inbound` answer the hot-path demand queries without
    /// scanning it at all.
    pub(crate) in_transit: BTreeMap<JobId, Transit>,
    /// Per-node inbound aggregates (total demand on the wire, transfer
    /// count), maintained by delta in `transit_insert` / `transit_remove`
    /// so destination filters are O(1) instead of O(transits).
    inbound: Vec<InboundLoad>,
    pub(crate) suspended: Vec<SuspendedJob>,
    pub(crate) completed: Vec<RunningJob>,
    gauges: ClusterGauges,
    counters: SchedulerCounters,
    pub(crate) reservations: ReservationManager,
    total_jobs: usize,
    pub(crate) arrived: usize,
    /// Jobs that have entered the pending queue at least once. Slab indexed
    /// by job id (dense 0..total_jobs, guaranteed by `Trace::validate`).
    ever_blocked: Vec<bool>,
    /// Times each job has been suspended (Suspend-Largest only), slab
    /// indexed by job id. A job suspended [`MAX_SUSPENSIONS_PER_JOB`] times
    /// is pinned: repeatedly swapping the same peak-sized job in and out is
    /// a livelock, not a remedy.
    suspend_counts: Vec<u32>,
    pub(crate) log: EventLog,
    /// Set once all jobs have completed; periodic events stop rescheduling.
    done: bool,
    finished_at: SimTime,
    /// Fault injector, when the config carries a plan.
    pub(crate) faults: Option<FaultInjector>,
    /// Nodes whose reservation release is stalled by fault injection: the
    /// manager has already dropped the reservation but the node's flag
    /// stays up until the matching [`Event::ReservationUnstall`] fires.
    /// Slab indexed by node id; read through [`ClusterWorld::is_stalled`].
    stalled: Vec<bool>,
    /// Per-node "currently in detected blocking state" bits, slab indexed
    /// by node id. Blocking detection is *edge-triggered*: the counter and
    /// log record fire when a bit rises, and the bit falls as soon as the
    /// overload scan finds the node no longer blocked — so
    /// `blocking_detections` counts blocking episodes (state changes), not
    /// scan ticks.
    blocked_nodes: Vec<bool>,
    /// Node ids whose `blocked_nodes` bit is up, mirrored as an ordered set
    /// so the overload scan can revisit flagged nodes without walking the
    /// whole slab.
    blocked_set: BTreeSet<u32>,
    /// Nodes that currently host work (resident jobs or an undrained
    /// completion outbox). Everything outside this set is settled: its load
    /// cannot change until the scheduler touches it again (advancing an
    /// idle workstation is a no-op), so the periodic
    /// advance/collect/refresh sweeps walk this set instead of every
    /// workstation — the O(active) hot path that makes cluster size a free
    /// parameter. Lazily pruned after each index refresh.
    active: BTreeSet<u32>,
    /// Nodes whose completion outbox is non-empty: the only workstations
    /// [`ClusterWorld::collect_completions`] must visit. Without this
    /// mirror every wake-up scans the whole active set — O(active) per
    /// event, which at 60 % utilization is O(cluster) and dominates the
    /// wall clock beyond ~1k nodes.
    ripe: BTreeSet<u32>,
    /// Nodes whose observable state changed without hosting work (flag
    /// flips: reserved, up, stale entries awaiting recapture). Drained into
    /// the next index refresh.
    dirty: BTreeSet<u32>,
    /// Exchange ticks so far, driving the staggered stale-load schedule
    /// ([`LoadInfoMode::Staggered`]).
    exchange_ticks: u64,
}

/// Aggregate load already on the wire toward one node.
#[derive(Debug, Clone, Copy)]
struct InboundLoad {
    demand: Bytes,
    count: u32,
}

/// The two largest committed-idle-memory values among eligible migration
/// destinations (see [`ClusterWorld::dest_bound`]). `second` covers the
/// case where the best node is the overloaded source itself.
#[derive(Debug, Clone, Copy)]
struct DestBound {
    best: Option<(NodeId, Bytes)>,
    second: Bytes,
}

impl ClusterWorld {
    fn new(config: &SimConfig, total_jobs: usize) -> Self {
        let plugin = build_policy(config.policy, &config.policy_params)
            // vr-lint::allow(panic-in-lib, reason = "SimConfig::validate() rejects unbuildable parameter bags before a world is ever constructed")
            .expect("policy parameters were validated by SimConfig::validate");
        let mut nodes = config.cluster.build_nodes();
        for node in &mut nodes {
            let cap = plugin.slot_cap(node.params().cpu.slots);
            node.set_slot_cap(cap);
        }
        let node_count = nodes.len();
        let mut world = ClusterWorld {
            plugin,
            config: config.clone(),
            nodes,
            index: LoadIndex::new(),
            // vr-analyze::rng-authority(reason = "the simulation root mints the master stream from the user-supplied config seed")
            rng: SimRng::seed_from(config.seed),
            pending: VecDeque::new(),
            in_transit: BTreeMap::new(),
            inbound: vec![
                InboundLoad {
                    demand: Bytes::ZERO,
                    count: 0
                };
                node_count
            ],
            suspended: Vec::new(),
            completed: Vec::new(),
            gauges: ClusterGauges::new(),
            counters: SchedulerCounters::default(),
            reservations: ReservationManager::new(config.reservation),
            total_jobs,
            arrived: 0,
            ever_blocked: vec![false; total_jobs],
            suspend_counts: vec![0; total_jobs],
            log: EventLog::new(),
            done: total_jobs == 0,
            finished_at: SimTime::ZERO,
            faults: config
                .fault_plan
                .clone()
                .map(|plan| FaultInjector::new(plan, config.seed)),
            stalled: vec![false; node_count],
            blocked_nodes: vec![false; node_count],
            blocked_set: BTreeSet::new(),
            active: BTreeSet::new(),
            ripe: BTreeSet::new(),
            dirty: BTreeSet::new(),
            exchange_ticks: 0,
        };
        world.index.refresh(world.nodes.iter(), SimTime::ZERO);
        world
    }

    fn node(&mut self, id: NodeId) -> &mut Workstation {
        &mut self.nodes[id.0 as usize]
    }

    /// Puts a transfer on the wire, updating the destination's inbound
    /// aggregates by delta. A job's working set is frozen while in transit
    /// (progress only advances while resident), so the amount subtracted by
    /// [`ClusterWorld::transit_remove`] equals the amount added here.
    fn transit_insert(&mut self, transit: Transit) {
        let slot = &mut self.inbound[transit.dst.0 as usize];
        slot.demand += transit.job.current_working_set();
        slot.count += 1;
        let prev = self.in_transit.insert(transit.job.id(), transit);
        debug_assert!(prev.is_none(), "job inserted while already in transit");
    }

    /// Takes a transfer off the wire, reversing its inbound aggregates.
    fn transit_remove(&mut self, job: JobId) -> Option<Transit> {
        let transit = self.in_transit.remove(&job)?;
        let slot = &mut self.inbound[transit.dst.0 as usize];
        slot.demand = slot
            .demand
            .saturating_sub(transit.job.current_working_set());
        slot.count -= 1;
        Some(transit)
    }

    /// `true` if `job` is currently on the wire.
    fn transit_contains(&self, job: JobId) -> bool {
        self.in_transit.contains_key(&job)
    }

    /// `true` if `node`'s reservation release is stalled by fault injection.
    pub(crate) fn is_stalled(&self, node: NodeId) -> bool {
        self.stalled[node.0 as usize]
    }

    /// Records that `node`'s observable load state changed since the last
    /// index refresh: it must be recaptured at the next refresh, and if it
    /// hosts work it joins the active sweep set. Every workstation mutation
    /// (admit, remove, crash, restart, reserve-flag flip) must come through
    /// here — the sweep sets are what keep the incremental index equal to a
    /// full rebuild.
    fn touch(&mut self, node: NodeId) {
        let i = node.0 as usize;
        let has_completions = !self.nodes[i].pending_completions().is_empty();
        if self.nodes[i].active_jobs() > 0 || has_completions {
            self.active.insert(node.0);
        }
        if has_completions {
            self.ripe.insert(node.0);
        }
        self.dirty.insert(node.0);
    }

    /// Records that `node` was advanced in simulated time outside
    /// [`ClusterWorld::touch`]: its observable load may have drifted (phase
    /// ramps, completions moving to the outbox), so it must be recaptured
    /// at the next index refresh, and if the advance produced completions
    /// it joins the completion sweep. Must follow every `advance_to` that
    /// is not already routed through `touch` — the index refresh and
    /// [`ClusterWorld::collect_completions`] only visit noted nodes.
    fn note_advanced(&mut self, node: NodeId) {
        self.dirty.insert(node.0);
        if !self.nodes[node.0 as usize].pending_completions().is_empty() {
            self.ripe.insert(node.0);
        }
    }

    /// Sets or clears a node's job-blocking flag, keeping the `blocked_set`
    /// mirror in sync. The flags are mutated only inside
    /// [`ClusterWorld::overload_scan`]; the mirror is what lets the scan
    /// revisit exactly the flagged nodes without walking the whole cluster.
    fn set_blocked(&mut self, i: usize, blocked: bool) {
        self.blocked_nodes[i] = blocked;
        if blocked {
            self.blocked_set.insert(i as u32);
        } else {
            self.blocked_set.remove(&(i as u32));
        }
    }

    /// Advances every node that hosts work to `now`. Settled nodes need no
    /// advance: with no resident jobs there is nothing to integrate, so
    /// their counters and demand are unchanged by construction.
    fn advance_active(&mut self, now: SimTime) {
        for &i in &self.active {
            self.nodes[i as usize].advance_to(now);
            if !self.nodes[i as usize].pending_completions().is_empty() {
                self.ripe.insert(i);
            }
            // The advance may have moved the node's load; queue it for
            // recapture. Unchanged nodes cost one capture-and-compare at
            // the next refresh, nothing more.
            self.dirty.insert(i);
        }
    }

    /// The incremental refresh core: recaptures `dirty \ stale`, re-marks
    /// held-back nodes dirty so they catch up at the next refresh (exactly
    /// when a full rebuild would have recaptured them), and prunes settled
    /// visited nodes from the active sweep set.
    ///
    /// Only dirty nodes need visiting: every mutation routes through
    /// [`ClusterWorld::touch`] and every simulated-time advance through
    /// [`ClusterWorld::note_advanced`] or
    /// [`ClusterWorld::advance_active`], all of which dirty the node — so a
    /// node outside the dirty set has exactly the state it had when its
    /// index entry was captured, and a full
    /// `index.refresh(self.nodes.iter(), now)` would recapture the
    /// identical entry. That makes the result byte-identical to a full
    /// rebuild at O(changed · log n) cost, per refresh, instead of
    /// O(cluster): the property the sweep-set cross-check below asserts in
    /// debug builds.
    fn refresh_index_incremental(&mut self, now: SimTime, is_stale: impl Fn(NodeId) -> bool) {
        let mut targets: Vec<NodeId> = Vec::new();
        let mut kept: Vec<u32> = Vec::new();
        for &i in &self.dirty {
            let id = NodeId(i);
            if is_stale(id) {
                kept.push(i);
            } else {
                targets.push(id);
            }
        }
        self.index
            .refresh_targets(&self.nodes, targets.iter().copied(), now);
        self.dirty.clear();
        // A node can only leave the hosting-work state through an advance
        // or a mutation, both of which dirty it — so pruning the visited
        // nodes keeps the active set exact without walking it.
        for id in targets {
            let n = &self.nodes[id.0 as usize];
            if n.active_jobs() == 0 && n.pending_completions().is_empty() {
                self.active.remove(&id.0);
            }
        }
        self.dirty.extend(kept);
        self.update_network_ram();
        #[cfg(debug_assertions)]
        if self.dirty.is_empty() {
            self.debug_check_sweep_sets(now);
        }
    }

    /// Debug cross-check (runs under `cargo test`; release builds skip it):
    /// the incremental refresh must land on exactly the state a
    /// from-scratch rebuild produces, and no node outside the active set
    /// may host work.
    #[cfg(debug_assertions)]
    fn debug_check_sweep_sets(&self, now: SimTime) {
        let mut full = LoadIndex::new();
        full.refresh(self.nodes.iter(), now);
        debug_assert_eq!(
            self.index, full,
            "incremental index diverged from a full rebuild"
        );
        for (i, n) in self.nodes.iter().enumerate() {
            debug_assert!(
                self.active.contains(&(i as u32))
                    || (n.active_jobs() == 0 && n.pending_completions().is_empty()),
                "node {i} hosts work but is not in the active set"
            );
        }
    }

    /// Advances active nodes to `now` and refreshes the load index.
    fn refresh_index(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        self.advance_active(now);
        self.collect_completions(now, sched);
        self.refresh_index_incremental(now, |_| false);
    }

    /// The periodic exchange's variant of [`ClusterWorld::refresh_index`]:
    /// under a load-information-loss fault each node's report may be
    /// dropped, and under [`LoadInfoMode::Staggered`] only one node group
    /// reports per tick — either way the held-back nodes keep their
    /// previous (stale) entries in the index until they next report.
    fn refresh_index_lossy(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        self.advance_active(now);
        self.collect_completions(now, sched);
        let tick = self.exchange_ticks;
        self.exchange_ticks += 1;
        // The per-node loss draws walk every node whenever the fault is
        // armed: the draw stream is part of the deterministic contract and
        // must not depend on which nodes happen to be active.
        let lost: Vec<NodeId> = match self.faults.as_mut() {
            Some(injector) if injector.plan().load_info_loss_prob > 0.0 => self
                .nodes
                .iter()
                .map(|n| n.id())
                .filter(|_| injector.load_report_lost())
                .collect(),
            _ => Vec::new(),
        };
        let mode = self.config.load_info;
        let is_stale = move |id: NodeId| {
            lost.binary_search(&id).is_ok()
                || match mode {
                    LoadInfoMode::Global => false,
                    LoadInfoMode::Staggered { groups } => {
                        u64::from(id.0) % u64::from(groups) != tick % u64::from(groups)
                    }
                }
        };
        self.refresh_index_incremental(now, is_stale);
    }

    /// Clears a node's reservation flag after the manager dropped its
    /// reservation, logging the release. Under a reservation-release-stall
    /// fault the flag instead stays up (and the log entry is deferred)
    /// until the scheduled [`Event::ReservationUnstall`] lands.
    ///
    /// Every release path must come through here — a flag cleared without a
    /// log entry breaks the began/released pairing in the event log.
    fn release_reserved_flag(
        &mut self,
        node_id: NodeId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let stall = self
            .faults
            .as_ref()
            .map(|f| f.plan().reservation_release_stall)
            .unwrap_or(SimSpan::ZERO);
        if stall.is_zero() {
            self.node(node_id).set_reserved(false);
            self.touch(node_id);
            self.log.record(
                now,
                SchedulerEventKind::ReservationReleased,
                None,
                Some(node_id),
            );
        } else if !std::mem::replace(&mut self.stalled[node_id.0 as usize], true) {
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.stalled_releases += 1;
            }
            sched.schedule_in(stall, Event::ReservationUnstall { node: node_id });
        }
    }

    /// Flips each node's fault-stall scale depending on whether the
    /// cluster's accumulated idle memory can back its overflow remotely
    /// (the network-RAM extension; no-op when disabled).
    fn update_network_ram(&mut self) {
        let Some(netram) = self.config.network_ram else {
            return;
        };
        let accumulated: Bytes = self.nodes.iter().map(|n| n.idle_memory()).sum();
        for node in &mut self.nodes {
            let overflow = node.memory_usage().overflow();
            let remote_backed = !overflow.is_zero() && accumulated >= overflow;
            let scale = if remote_backed {
                netram.stall_scale(node.params().memory.fault_service)
            } else {
                1.0
            };
            node.set_stall_scale(scale);
        }
    }

    /// Drains completion outboxes, updating reservations and retrying
    /// pending jobs if capacity freed. Only active nodes can hold an
    /// undrained completion (a job must have been admitted — which inserts
    /// its node into the active set — before it can finish), so the walk
    /// covers the active set in ascending node order, matching the old
    /// full-cluster sweep.
    fn collect_completions(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        debug_assert!(
            self.active.iter().all(|&i| self.ripe.contains(&i)
                || self.nodes[i as usize].pending_completions().is_empty()),
            "active node with uncollected completions missing from the ripe set"
        );
        let mut any = false;
        // Ascending node order, same as the old scan over the whole active
        // set — only the nodes with a non-empty outbox are visited.
        let candidates: Vec<u32> = std::mem::take(&mut self.ripe).into_iter().collect();
        for i in candidates {
            let i = i as usize;
            let node_id = self.nodes[i].id();
            let finished = self.nodes[i].take_completed();
            if finished.is_empty() {
                continue;
            }
            any = true;
            for job in finished {
                self.log.record(
                    now,
                    SchedulerEventKind::Completed,
                    Some(job.id()),
                    Some(node_id),
                );
                if self.reservations.note_completion(node_id, job.id()) {
                    // Special service complete: back to normal load sharing.
                    self.release_reserved_flag(node_id, now, sched);
                }
                self.completed.push(job);
            }
            self.schedule_wake(node_id, now, sched);
        }
        if any {
            // A completing node effectively announces its freed capacity.
            self.refresh_index_incremental(now, |_| false);
            self.try_place_pending(now, sched);
            self.check_reservations(now, sched);
            self.check_done(now);
        }
    }

    /// Schedules (or re-schedules) a node's next wake-up, tagged with its
    /// current epoch so stale wakes are discarded.
    fn schedule_wake(&mut self, node_id: NodeId, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        let node = self.node(node_id);
        debug_assert!(node.last_update() == now, "wake scheduled on stale node");
        if let Some(delay) = node.next_event_in() {
            let epoch = node.epoch();
            // A sub-microsecond prediction would round to a zero-delay event
            // that re-fires at the same instant forever; clamp to one tick.
            sched.schedule_in(
                delay.max(SimSpan::from_micros(1)),
                Event::NodeWake {
                    node: node_id,
                    epoch,
                },
            );
        }
    }

    /// Routes a placement decision through the configured
    /// [`PlacementMode`](crate::config::PlacementMode).
    ///
    /// `Optimistic` defers to the policy verbatim — the paper's behavior,
    /// where decisions are made against the last load snapshot and races
    /// are resolved by admission rejection plus re-queue. `CommitAware`
    /// applies the same committed-capacity accounting migration-target
    /// selection already uses — idle memory net of in-flight transfers
    /// (`in_transit_demand`) and slots net of in-flight submissions
    /// (`has_uncommitted_slot`) — so a burst of decisions between index
    /// refreshes cannot all pile onto the same least-loaded workstation.
    /// Only the GLS-family policies have memory-aware placement to adjust;
    /// the rest fall through to the policy unchanged.
    fn place_decision(&mut self, job: &RunningJob, home: NodeId) -> Placement {
        if self.config.placement == PlacementMode::CommitAware && self.plugin.commit_aware_placement()
        {
            let demand = job.current_working_set();
            if self.index.get(home).is_some_and(|load| {
                load.accepts_submissions()
                    && load
                        .idle_memory
                        .saturating_sub(self.in_transit_demand(home))
                        >= demand
            }) && self.has_uncommitted_slot(home)
            {
                return Placement::Local(home);
            }
            let inbound = &self.inbound;
            let nodes = &self.nodes;
            let dest = self
                .index
                .best_destination_where(demand, Some(home), |e| {
                    let i = e.node.0 as usize;
                    let n = &nodes[i];
                    let committed_slots = n.used_slots() as usize + inbound[i].count as usize;
                    e.idle_memory.saturating_sub(inbound[i].demand) >= demand
                        && committed_slots < n.slot_cap() as usize
                })
                .map(|e| e.node);
            return match dest {
                Some(node) => Placement::Remote(node),
                None => Placement::Blocked,
            };
        }
        self.plugin.place(job, home, &self.index, &mut self.rng)
    }

    /// Executes a placement decision for `job`.
    fn place_job(
        &mut self,
        mut job: RunningJob,
        home: NodeId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
        first_attempt: bool,
    ) {
        match self.place_decision(&job, home) {
            Placement::Local(node_id) => {
                let node = self.node(node_id);
                let job_id = job.id();
                match node.try_admit(job, now) {
                    Ok(()) => {
                        self.touch(node_id);
                        if first_attempt {
                            self.counters.local_submissions += 1;
                        }
                        self.log.record(
                            now,
                            SchedulerEventKind::Placed,
                            Some(job_id),
                            Some(node_id),
                        );
                        self.schedule_wake(node_id, now, sched);
                    }
                    Err(rejected) => {
                        // A failed admission still advanced the node.
                        self.touch(node_id);
                        self.counters.stale_rejections += 1;
                        self.enqueue_pending(rejected.job, home, now);
                    }
                }
            }
            Placement::Remote(node_id) => {
                let cost = self.config.cluster.network.remote_submit_cost;
                job.breakdown.migration += cost.as_secs_f64();
                job.remote_submitted = true;
                job.state = JobState::Migrating;
                self.counters.remote_submissions += 1;
                let id = job.id();
                self.log.record(
                    now,
                    SchedulerEventKind::TransitStarted,
                    Some(id),
                    Some(node_id),
                );
                self.transit_insert(Transit {
                    job,
                    dst: node_id,
                    to_reserved: false,
                    attempts: 0,
                });
                sched.schedule_in(cost, Event::TransitArrive { job: id });
            }
            Placement::Blocked => {
                self.enqueue_pending(job, home, now);
            }
        }
    }

    fn enqueue_pending(&mut self, mut job: RunningJob, home: NodeId, now: SimTime) {
        job.state = JobState::Pending;
        self.log
            .record(now, SchedulerEventKind::Blocked, Some(job.id()), Some(home));
        if !std::mem::replace(&mut self.ever_blocked[job.id().0 as usize], true) {
            self.counters.blocked_submissions += 1;
        }
        self.pending.push_back(PendingJob {
            job,
            since: now,
            home,
        });
    }

    /// One pass over the pending queue, placing whatever the configured
    /// discipline allows. Under FIFO the first still-blocked job stops the
    /// pass (head-of-line blocking — the paper's "job submissions ... will
    /// be blocked"); under backfill every queued job is attempted.
    fn try_place_pending(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        let fifo = self.config.pending_discipline == crate::config::PendingDiscipline::Fifo;
        let mut waiting = std::mem::take(&mut self.pending);
        while let Some(mut entry) = waiting.pop_front() {
            let decision = self.place_decision(&entry.job, entry.home);
            if matches!(decision, Placement::Blocked) {
                if fifo {
                    // Head-of-line blocked: final order is any in-pass
                    // admission rejections (usually none), the blocked
                    // head, then the untouched tail. Splicing the few
                    // rejections onto the tail keeps the exit O(placed)
                    // instead of O(backlog) — re-queueing thousands of
                    // waiting entries on every completion is what used to
                    // dominate large-cluster wall clock.
                    waiting.push_front(entry);
                    while let Some(rejected) = self.pending.pop_back() {
                        waiting.push_front(rejected);
                    }
                    self.pending = waiting;
                    return;
                }
                self.pending.push_back(entry);
            } else {
                // A held job accrues queuing time while blocked.
                entry.job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
                self.place_job(entry.job, entry.home, now, sched, false);
            }
        }
    }

    /// One node's memory occupancy as seen by the overload/blocking
    /// detector: the incremental cache or the full rescan, per the
    /// configured [`DetectorMode`]. The two are always equal (asserted in
    /// debug builds, pinned by differential tests).
    fn detector_usage(&self, i: usize) -> vr_cluster::memory::MemoryUsage {
        match self.config.detector {
            DetectorMode::Rescan => self.nodes[i].memory_usage_rescan(),
            DetectorMode::Incremental => self.nodes[i].memory_usage(),
        }
    }

    /// The overload scan of the exchange tick: fault-driven migrations and
    /// blocking detection (§2.1).
    ///
    /// Blocking is reported *edge-triggered*: the counter and the event-log
    /// record fire when a node newly enters the blocked state, not on every
    /// scan tick it stays there — detection work recorded is proportional
    /// to state changes, not events. The remedies (reconfigure / suspend)
    /// still run on every tick while the state persists, so scheduling
    /// behaviour is unchanged.
    fn overload_scan(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        if !self.plugin.migrates_on_overload() {
            return;
        }
        // Visit set: nodes that could be over threshold (only nodes hosting
        // work can have overflow) plus currently flagged nodes, which must
        // be revisited so their edge-triggered bits fall exactly when the
        // old full walk would have cleared them. For every other node the
        // per-node loop body is a provable no-op (it would only write
        // `false` over an already-false bit), so the scan skips it — on an
        // idle or lightly loaded large cluster the whole scan is O(active)
        // instead of O(nodes). Ascending node order, like the old walk.
        let mut visit: Vec<usize> = Vec::new();
        for &i in self.active.union(&self.blocked_set) {
            let i = i as usize;
            if self.blocked_nodes[i] {
                visit.push(i);
                continue;
            }
            if self.nodes[i].is_reserved() || !self.nodes[i].is_up() {
                continue;
            }
            let usage = self.detector_usage(i);
            if usage.overflow() > self.config.overload_bytes(usage.user) {
                visit.push(i);
            }
        }
        if visit.is_empty() {
            return;
        }
        // Largest and second-largest committed idle memory over nodes that
        // could receive a migration. A destination for `src` exists iff the
        // best such value *excluding src* covers the victim's working set,
        // so most scan ticks answer "still blocked" in O(1) instead of
        // walking the index per overloaded node. The bound is rebuilt after
        // any action that changes committed capacity (migration started,
        // reservation begun, job suspended) — all rare.
        let mut bound = self.dest_bound();
        for i in visit {
            let src = self.nodes[i].id();
            if self.nodes[i].is_reserved() || !self.nodes[i].is_up() {
                self.set_blocked(i, false);
                continue;
            }
            let usage = self.detector_usage(i);
            let threshold = self.config.overload_bytes(usage.user);
            if usage.overflow() <= threshold {
                self.set_blocked(i, false);
                continue;
            }
            // The node is seriously faulting; try to migrate its most
            // memory-intensive job away.
            let Some(victim) = self.nodes[i].most_memory_intensive_job() else {
                self.set_blocked(i, false);
                continue;
            };
            let victim_id = victim.id();
            let victim_ws = victim.current_working_set();
            let feasible = match bound.best {
                Some((node, ci)) if node != src => ci >= victim_ws,
                Some(_) => bound.second >= victim_ws,
                None => false,
            };
            // `feasible` is exact: it is the same predicate the full scan
            // applies, collapsed to its maximum — false means the scan
            // below would find nothing, true means it must find something.
            let dest = if feasible {
                // Best-first walk of the placement order; the first entry
                // surviving the live-state filters is exactly the old
                // linear `min_by_key` winner, found without visiting the
                // rest of the cluster.
                self.index
                    .placement_order()
                    .filter(|e| {
                        e.node != src
                            && e.idle_memory.saturating_sub(self.in_transit_demand(e.node))
                                >= victim_ws
                            && self.has_uncommitted_slot(e.node)
                    })
                    .map(|e| e.node)
                    .next()
            } else {
                None
            };
            match dest {
                Some(dst) => {
                    self.set_blocked(i, false);
                    self.start_migration(src, victim_id, dst, false, now, sched);
                    self.counters.overload_migrations += 1;
                    bound = self.dest_bound();
                }
                None => {
                    // "The scheduler could not find a qualified destination
                    // to migrate jobs from this workstation": the job
                    // blocking problem.
                    if !self.blocked_nodes[i] {
                        self.set_blocked(i, true);
                        self.counters.blocking_detections += 1;
                        self.log.record(
                            now,
                            SchedulerEventKind::BlockingDetected,
                            Some(victim_id),
                            Some(src),
                        );
                    }
                    if self.plugin.reconfigures() {
                        if self.reconfigure(src, victim_id, victim_ws, now, sched) {
                            bound = self.dest_bound();
                        }
                    } else if self.plugin.suspends_on_blocking()
                        && self.suspend_counts[victim_id.0 as usize] < MAX_SUSPENSIONS_PER_JOB
                    {
                        self.suspend_job(src, victim_id, now, sched);
                        bound = self.dest_bound();
                    }
                }
            }
        }
    }

    /// The top two committed-idle-memory values over nodes eligible as
    /// migration destinations (index says accepting, live state has an
    /// uncommitted slot) — the O(1) feasibility bound for
    /// [`ClusterWorld::overload_scan`].
    fn dest_bound(&self) -> DestBound {
        let mut best: Option<(NodeId, Bytes)> = None;
        let mut second = Bytes::ZERO;
        for e in self.index.iter() {
            if !e.accepts_submissions() || !self.has_uncommitted_slot(e.node) {
                continue;
            }
            let ci = e.idle_memory.saturating_sub(self.in_transit_demand(e.node));
            match best {
                Some((_, b)) if ci > b => {
                    second = b;
                    best = Some((e.node, ci));
                }
                Some(_) => second = second.max(ci),
                None => best = Some((e.node, ci)),
            }
        }
        DestBound { best, second }
    }

    /// Malleable resize pass, run each load-exchange tick after the
    /// overload scan. The trigger is the cluster-wide *pressure* flag
    /// (pending queue non-empty — recomputable by the differential
    /// oracle, unlike the edge-triggered per-node blocking bits): under
    /// pressure the policy may shrink one over-wide job per full node to
    /// free a slot; otherwise it may grow one under-wide job per node
    /// with free slots. Nodes are visited in ascending id order and all
    /// are already advanced to `now` by the index refresh at the top of
    /// the Exchange handler.
    fn resize_scan(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        if !self.plugin.resizes() {
            return;
        }
        let pressure = !self.pending.is_empty();
        let mut any = false;
        for i in 0..self.nodes.len() {
            if self.nodes[i].active_jobs() == 0 {
                continue;
            }
            let node_id = self.nodes[i].id();
            let Some(directive) = self.plugin.resize(&self.nodes[i], pressure) else {
                continue;
            };
            if !self.nodes[i].resize_job(directive.job(), directive.to(), now) {
                continue;
            }
            match directive {
                ResizeDirective::Grow { .. } => self.counters.grows += 1,
                ResizeDirective::Shrink { .. } => self.counters.shrinks += 1,
            }
            self.log.record(
                now,
                SchedulerEventKind::JobResized,
                Some(directive.job()),
                Some(node_id),
            );
            self.touch(node_id);
            self.schedule_wake(node_id, now, sched);
            any = true;
        }
        if any {
            // Resizing changes slot occupancy (a scheduling input); refresh
            // so later passes in this tick see the new capacity.
            self.refresh_index_incremental(now, |_| false);
        }
    }

    /// The reconfiguration routine (§2.1 framework). `victim_id` /
    /// `victim_ws` are the blocking victim already identified by the
    /// overload scan (nothing has mutated in between). Returns `true` if it
    /// acted — migrated the victim or began a reservation — so the caller
    /// knows committed capacity changed.
    fn reconfigure(
        &mut self,
        src: NodeId,
        victim_id: JobId,
        victim_ws: Bytes,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) -> bool {
        // Step 1: an existing reserved workstation with enough resources.
        if let Some(dst) = self.serving_room_for(victim_ws) {
            self.reservations.record_service(dst, victim_id);
            self.start_migration(src, victim_id, dst, true, now, sched);
            self.counters.reserved_migrations += 1;
            return true;
        }
        // Step 2: begin a new reservation if the accumulated idle memory
        // justifies one and the cap allows it.
        if self.index.accumulated_idle_memory() <= self.index.average_user_memory() {
            return false; // §2.3: memory resources are genuinely exhausted.
        }
        if !self.reservations.can_reserve(self.nodes.len()) {
            return false; // §2.2 point 4: protect normal jobs.
        }
        // Best-first walk of the ordered reservation index; the first entry
        // surviving the filters equals the old linear max_by_key. The index
        // can lag a reservation made earlier in this same scan (or a crash
        // or stalled release); live state is authoritative for reserved/up,
        // the index for load.
        let candidate = self
            .index
            .by_idle_desc()
            .filter(|e| {
                !e.reserved
                    && !self.reservations.is_reserved(e.node)
                    && e.node != src
                    && self.nodes[e.node.0 as usize].is_up()
                    && !self.is_stalled(e.node)
            })
            .map(|e| e.node)
            .next();
        if let Some(node_id) = candidate {
            self.reservations.begin(node_id, now);
            self.node(node_id).set_reserved(true);
            self.touch(node_id);
            self.log.record(
                now,
                SchedulerEventKind::ReservationBegan,
                None,
                Some(node_id),
            );
            // The reserving period has begun; check_reservations() completes
            // it when the node drains (or has enough memory, per config).
            return true;
        }
        false
    }

    /// Memory demand already on the wire toward `node` (remote submissions
    /// and migrations whose image has not landed yet). Without this, two
    /// migrations launched within one exchange period would both see the
    /// destination as empty and overcommit it. O(1): reads the inbound
    /// aggregate maintained by delta on transit insert/remove.
    fn in_transit_demand(&self, node: NodeId) -> Bytes {
        self.inbound[node.0 as usize].demand
    }

    /// Jobs on the wire toward `node` (counted against its slots).
    fn in_transit_count(&self, node: NodeId) -> usize {
        self.inbound[node.0 as usize].count as usize
    }

    /// The memory `node` can actually still commit to: live idle memory
    /// minus what is already inbound.
    fn committed_idle(&self, node: NodeId) -> Bytes {
        self.nodes[node.0 as usize]
            .idle_memory()
            .saturating_sub(self.in_transit_demand(node))
    }

    /// `true` if `node` still has an uncommitted job slot.
    fn has_uncommitted_slot(&self, node: NodeId) -> bool {
        let n = &self.nodes[node.0 as usize];
        n.used_slots() as usize + self.in_transit_count(node) < n.slot_cap() as usize
    }

    /// A reserved workstation that can host a `ws`-sized job right now.
    fn serving_room_for(&self, ws: Bytes) -> Option<NodeId> {
        self.reservations
            .reservations()
            .iter()
            .filter(|r| {
                // During the reserving period the node must first drain
                // (or, under EnoughMemory, free sufficient space) — which is
                // exactly the committed-idle check below.
                self.committed_idle(r.node) >= ws && self.has_uncommitted_slot(r.node)
            })
            .map(|r| r.node)
            .next()
    }

    /// Progresses reserving periods: drained (or roomy-enough) reserved
    /// nodes either receive the blocking victim or are released if blocking
    /// disappeared. Also abandons timed-out reservations.
    fn check_reservations(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        for node_id in self.reservations.sweep_timeouts(now) {
            self.release_reserved_flag(node_id, now, sched);
        }
        let reserving: Vec<NodeId> = self
            .reservations
            .reservations()
            .iter()
            .filter(|r| r.phase == ReservationPhase::Reserving)
            .map(|r| r.node)
            .collect();
        for node_id in reserving {
            let ready = {
                let node = &self.nodes[node_id.0 as usize];
                match self.config.reservation.end_condition {
                    ReservingEnd::AllJobsComplete => node.active_jobs() == 0,
                    ReservingEnd::EnoughMemory => match self.blocking_victim(node_id) {
                        Some((_, _, ws)) => {
                            self.committed_idle(node_id) >= ws && self.has_uncommitted_slot(node_id)
                        }
                        None => true,
                    },
                }
            };
            if !ready {
                continue;
            }
            if self.in_transit_count(node_id) > 0 {
                // A special-service migration is already inbound; wait for
                // it to land before deciding anything else.
                continue;
            }
            // The reserving period ended: if blocking still exists, migrate
            // the most memory-intensive faulting job here; otherwise switch
            // back to normal load sharing. Should the victim not fit even in
            // the drained reserved node (§2.3), it still receives dedicated
            // service so its faults stop hurting other jobs.
            match self.blocking_victim(node_id) {
                Some((src, victim, _ws)) => {
                    self.reservations.record_service(node_id, victim);
                    self.start_migration(src, victim, node_id, true, now, sched);
                    self.counters.reserved_migrations += 1;
                }
                None => {
                    // "During the reserving period, if the blocking problem
                    // disappears, the system will be back to the normal load
                    // sharing state."
                    self.reservations.release_unused(node_id);
                    self.release_reserved_flag(node_id, now, sched);
                }
            }
        }
    }

    /// Finds the worst currently blocked node and its most memory-intensive
    /// job: a faulting node (beyond threshold) whose victim job has no
    /// qualified ordinary destination. Returns `(src, job, working_set)`.
    ///
    /// `exclude_dst` is the reserved node being considered, which must not
    /// count as an ordinary destination.
    fn blocking_victim(&self, exclude_dst: NodeId) -> Option<(NodeId, JobId, Bytes)> {
        let mut worst: Option<(Bytes, NodeId, JobId, Bytes)> = None;
        // Only nodes hosting work can be over threshold; the active sweep
        // set covers every such node and iterates in the same ascending
        // order as the old full walk, so the first-maximum tie-break is
        // unchanged.
        for &i in &self.active {
            let i = i as usize;
            let node = &self.nodes[i];
            if node.is_reserved() || !node.is_up() {
                continue;
            }
            let usage = self.detector_usage(i);
            let threshold = self.config.overload_bytes(usage.user);
            if usage.overflow() <= threshold {
                continue;
            }
            let Some(victim) = node.most_memory_intensive_job() else {
                continue;
            };
            let ws = victim.current_working_set();
            // Existence probe in descending idle-memory order: committed
            // idle is at most raw idle, so once raw idle drops below `ws`
            // no later entry can qualify and the walk stops.
            let has_ordinary_dest = self
                .index
                .by_idle_desc()
                .take_while(|e| e.idle_memory >= ws)
                .any(|e| {
                    e.node != node.id()
                        && e.node != exclude_dst
                        && e.accepts_submissions()
                        && e.idle_memory.saturating_sub(self.in_transit_demand(e.node)) >= ws
                });
            if has_ordinary_dest {
                continue;
            }
            let key = usage.overflow();
            if worst.is_none_or(|(k, ..)| key > k) {
                worst = Some((key, node.id(), victim.id(), ws));
            }
        }
        worst.map(|(_, src, job, ws)| (src, job, ws))
    }

    /// Removes `job` from `src` and puts it on the wire to `dst`.
    fn start_migration(
        &mut self,
        src: NodeId,
        job_id: JobId,
        dst: NodeId,
        to_reserved: bool,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let Some(mut job) = self.node(src).remove_job(job_id, now) else {
            // The job completed in the meantime; the advance inside
            // `remove_job` put it in the outbox, so mark the node for the
            // next completion sweep, then undo service bookkeeping.
            self.note_advanced(src);
            if to_reserved && self.reservations.note_completion(dst, job_id) {
                self.release_reserved_flag(dst, now, sched);
            }
            return;
        };
        self.touch(src);
        self.schedule_wake(src, now, sched);
        self.log.record(
            now,
            SchedulerEventKind::MigratedOut,
            Some(job_id),
            Some(src),
        );
        self.log.record(
            now,
            if to_reserved {
                SchedulerEventKind::SpecialServiceStarted
            } else {
                SchedulerEventKind::MigrationStarted
            },
            Some(job_id),
            Some(dst),
        );
        let image = job.current_working_set();
        let cost = self.config.cluster.network.migration_cost(image);
        job.breakdown.migration += cost.as_secs_f64();
        job.migrations += 1;
        job.state = JobState::Migrating;
        self.transit_insert(Transit {
            job,
            dst,
            to_reserved,
            attempts: 0,
        });
        sched.schedule_in(cost, Event::TransitArrive { job: job_id });
    }

    fn handle_transit_arrive(
        &mut self,
        job_id: JobId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let Some(transit) = self.transit_remove(job_id) else {
            return; // already handled (should not happen)
        };
        let Transit {
            job,
            dst,
            to_reserved,
            ..
        } = transit;
        let home = dst;
        let result = if to_reserved {
            self.node(dst).admit_to_reserved(job, now)
        } else {
            self.node(dst).try_admit(job, now)
        };
        match result {
            Ok(()) => {
                self.touch(dst);
                self.log
                    .record(now, SchedulerEventKind::Placed, Some(job_id), Some(dst));
                self.schedule_wake(dst, now, sched);
            }
            Err(rejected) => {
                self.touch(dst);
                // Stale decision: the destination filled up while the job
                // was on the wire. Untrack any service bookkeeping and hold
                // the job pending.
                self.counters.stale_rejections += 1;
                if to_reserved && self.reservations.note_completion(dst, job_id) {
                    self.release_reserved_flag(dst, now, sched);
                }
                self.enqueue_pending(rejected.job, home, now);
            }
        }
    }

    /// Fault recovery for a transfer that failed in transit: retry with
    /// exponential backoff (the wait is charged as migration time, keeping
    /// the wall-clock breakdown identity exact), or — once the plan's retry
    /// budget is spent — abandon the transfer and re-queue the job.
    fn handle_migration_failure(
        &mut self,
        job_id: JobId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let (max_retries, base_backoff) = {
            // vr-lint::allow(panic-in-lib, reason = "internal invariant: TransitFail events are only scheduled while the fault injector exists")
            let injector = self.faults.as_ref().expect("failure without injector");
            (
                injector.plan().max_migration_retries,
                injector.plan().retry_backoff,
            )
        };
        let (dst, attempts) = {
            let transit = self
                .in_transit
                .get_mut(&job_id)
                // vr-lint::allow(panic-in-lib, reason = "internal invariant: the transit record outlives every scheduled TransitFail for its job")
                .expect("transit present");
            transit.attempts += 1;
            (transit.dst, transit.attempts)
        };
        self.log.record(
            now,
            SchedulerEventKind::MigrationFailed,
            Some(job_id),
            Some(dst),
        );
        if attempts <= max_retries {
            // Backoff doubles per failed attempt: base * 2^(attempts-1).
            let mut backoff = base_backoff;
            for _ in 0..(attempts - 1).min(16) {
                backoff = backoff + backoff;
            }
            let transit = self
                .in_transit
                .get_mut(&job_id)
                // vr-lint::allow(panic-in-lib, reason = "internal invariant: the transit record outlives every scheduled TransitFail for its job")
                .expect("transit present");
            transit.job.breakdown.migration += backoff.as_secs_f64();
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.migration_retries += 1;
            }
            sched.schedule_in(backoff, Event::TransitArrive { job: job_id });
        } else {
            let transit = self
                .transit_remove(job_id)
                // vr-lint::allow(panic-in-lib, reason = "internal invariant: the transit record outlives every scheduled TransitFail for its job")
                .expect("transit present");
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.migrations_abandoned += 1;
                injector.counters.requeued_jobs += 1;
            }
            if transit.to_reserved && self.reservations.note_completion(dst, job_id) {
                self.release_reserved_flag(dst, now, sched);
            }
            self.log
                .record(now, SchedulerEventKind::Requeued, Some(job_id), Some(dst));
            self.enqueue_pending(transit.job, dst, now);
        }
    }

    /// Fault injection: crashes `node_id`, re-queueing its resident jobs.
    fn handle_node_crash(
        &mut self,
        node_id: NodeId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !self.nodes[node_id.0 as usize].is_up() {
            return; // already down (duplicate crash entries in the plan)
        }
        // Settle the node first so pre-crash completions count as completed.
        self.nodes[node_id.0 as usize].advance_to(now);
        self.note_advanced(node_id);
        self.collect_completions(now, sched);
        if let Some(injector) = self.faults.as_mut() {
            injector.counters.crashes += 1;
        }
        self.log
            .record(now, SchedulerEventKind::NodeCrashed, None, Some(node_id));
        // A crash takes any reservation (active or stalled) down with it.
        if self.reservations.release_unused(node_id)
            || std::mem::replace(&mut self.stalled[node_id.0 as usize], false)
        {
            self.log.record(
                now,
                SchedulerEventKind::ReservationReleased,
                None,
                Some(node_id),
            );
        }
        let drained = self.nodes[node_id.0 as usize].crash(now);
        for job in drained {
            if let Some(injector) = self.faults.as_mut() {
                injector.counters.requeued_jobs += 1;
            }
            self.log.record(
                now,
                SchedulerEventKind::Requeued,
                Some(job.id()),
                Some(node_id),
            );
            self.enqueue_pending(job, node_id, now);
        }
        self.touch(node_id);
        self.refresh_index_incremental(now, |_| false);
        self.try_place_pending(now, sched);
    }

    /// Fault injection: brings a crashed node back into service.
    fn handle_node_restart(
        &mut self,
        node_id: NodeId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if self.nodes[node_id.0 as usize].is_up() {
            return;
        }
        self.nodes[node_id.0 as usize].restart(now);
        if let Some(injector) = self.faults.as_mut() {
            injector.counters.restarts += 1;
        }
        self.log
            .record(now, SchedulerEventKind::NodeRestarted, None, Some(node_id));
        self.touch(node_id);
        self.refresh_index_incremental(now, |_| false);
        self.try_place_pending(now, sched);
    }

    /// Fault injection: a stalled reservation release finally takes effect.
    fn handle_reservation_unstall(
        &mut self,
        node_id: NodeId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if !std::mem::replace(&mut self.stalled[node_id.0 as usize], false) {
            return; // cleared meanwhile (e.g. the node crashed)
        }
        if self.reservations.is_reserved(node_id) {
            return; // defensively: a newer reservation owns the flag now
        }
        self.nodes[node_id.0 as usize].advance_to(now);
        self.nodes[node_id.0 as usize].set_reserved(false);
        self.touch(node_id);
        self.log.record(
            now,
            SchedulerEventKind::ReservationReleased,
            None,
            Some(node_id),
        );
        self.refresh_index(now, sched);
        self.schedule_wake(node_id, now, sched);
        self.try_place_pending(now, sched);
    }

    /// The §1 strawman: swap the victim out entirely, freeing its memory so
    /// submissions are no longer blocked.
    fn suspend_job(
        &mut self,
        src: NodeId,
        job_id: JobId,
        now: SimTime,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let Some(mut job) = self.node(src).remove_job(job_id, now) else {
            // Completed during the decision window; the advance inside
            // `remove_job` may have filled the outbox.
            self.note_advanced(src);
            return;
        };
        self.touch(src);
        self.schedule_wake(src, now, sched);
        // Swapping the image out to disk costs real time, charged as
        // migration time; the queue clock starts once the swap-out ends.
        let image = job.current_working_set();
        let out_cost = self.nodes[src.0 as usize]
            .params()
            .memory
            .swap_transfer_time(image);
        job.breakdown.migration += out_cost.as_secs_f64();
        job.state = JobState::Suspended;
        self.suspend_counts[job.id().0 as usize] += 1;
        self.log.record(
            now,
            SchedulerEventKind::Suspended,
            Some(job.id()),
            Some(src),
        );
        self.counters.suspensions += 1;
        self.suspended.push(SuspendedJob {
            job,
            since: now + out_cost,
        });
    }

    /// Resumes suspended jobs, but only while no *new* submission is
    /// waiting: under a continuous job flow, fresh jobs keep claiming the
    /// capacity and suspended large jobs starve — the unfairness the paper
    /// rejects this approach for.
    fn try_resume_suspended(&mut self, now: SimTime, sched: &mut Scheduler<'_, Event>) {
        if self.suspended.is_empty() || !self.pending.is_empty() {
            return;
        }
        let parked = std::mem::take(&mut self.suspended);
        for mut entry in parked {
            if now < entry.since {
                // Still swapping out.
                self.suspended.push(entry);
                continue;
            }
            let home = NodeId(self.rng.index(self.nodes.len()) as u32);
            let decision = self.place_decision(&entry.job, home);
            let dst = match decision {
                Placement::Blocked => {
                    // A job whose demand exceeds every workstation's user
                    // memory can never re-qualify through normal placement.
                    // §1: such jobs "can be executed only when the cluster
                    // becomes lightly loaded" — force-resume onto a fully
                    // idle workstation if one exists.
                    let idle_node = self
                        .nodes
                        .iter()
                        .filter(|n| {
                            n.active_jobs() == 0
                                && !n.is_reserved()
                                && self.inbound[n.id().0 as usize].count == 0
                                && n.can_admit(&entry.job).is_ok()
                        })
                        .max_by_key(|n| (n.idle_memory(), std::cmp::Reverse(n.id())))
                        .map(|n| n.id());
                    match idle_node {
                        Some(n) => n,
                        None => {
                            self.suspended.push(entry);
                            continue;
                        }
                    }
                }
                Placement::Local(n) | Placement::Remote(n) => n,
            };
            // Queue time accrued while parked, then a swap-in transfer
            // (modelled through the transit machinery so time accounting
            // stays exact).
            entry.job.breakdown.queue += (now - entry.since).as_secs_f64();
            let image = entry.job.current_working_set();
            let mut in_cost = self.nodes[dst.0 as usize]
                .params()
                .memory
                .swap_transfer_time(image);
            if matches!(decision, Placement::Remote(_)) {
                in_cost += self.config.cluster.network.remote_submit_cost;
            }
            entry.job.breakdown.migration += in_cost.as_secs_f64();
            entry.job.state = JobState::Migrating;
            self.log.record(
                now,
                SchedulerEventKind::Resumed,
                Some(entry.job.id()),
                Some(dst),
            );
            self.counters.resumes += 1;
            let id = entry.job.id();
            self.transit_insert(Transit {
                job: entry.job,
                dst,
                to_reserved: false,
                attempts: 0,
            });
            sched.schedule_in(in_cost, Event::TransitArrive { job: id });
        }
    }

    fn check_done(&mut self, now: SimTime) {
        if self.done {
            return;
        }
        if self.arrived == self.total_jobs
            && self.pending.is_empty()
            && self.in_transit.is_empty()
            && self.suspended.is_empty()
            // Any node hosting a job is in the active sweep set, so the
            // cluster-wide drain check only needs to look there.
            && self.active.iter().all(|&i| self.nodes[i as usize].active_jobs() == 0)
        {
            self.done = true;
            self.finished_at = now;
        }
    }

    fn into_report(mut self, trace: &Trace, config: &SimConfig, now: SimTime) -> RunReport {
        // Account still-unfinished jobs (horizon hit): keep partial state.
        let mut jobs = std::mem::take(&mut self.completed);
        let mut unfinished = 0usize;
        for entry in std::mem::take(&mut self.pending) {
            unfinished += 1;
            let mut job = entry.job;
            job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
            jobs.push(job);
        }
        for transit in std::mem::take(&mut self.in_transit).into_values() {
            unfinished += 1;
            jobs.push(transit.job);
        }
        for entry in std::mem::take(&mut self.suspended) {
            unfinished += 1;
            let mut job = entry.job;
            job.breakdown.queue += now.saturating_since(entry.since).as_secs_f64();
            jobs.push(job);
        }
        for node in &mut self.nodes {
            node.advance_to(now);
            for job in node.take_completed() {
                jobs.push(job);
            }
        }
        for node in &self.nodes {
            for job in node.jobs() {
                unfinished += 1;
                jobs.push(job.clone());
            }
        }
        unfinished += trace.len().saturating_sub(jobs.len()); // never-arrived
        jobs.sort_by_key(|j| j.id());
        let summary = WorkloadSummary::of_jobs(jobs.iter());
        RunReport {
            trace_name: trace.name.clone(),
            policy: config.policy,
            seed: config.seed,
            summary,
            gauges: self.gauges,
            counters: self.counters,
            reservations: self.reservations.stats(),
            node_counters: self.nodes.iter().map(|n| n.counters()).collect(),
            events: self.log,
            finished_at: if self.done { self.finished_at } else { now },
            unfinished_jobs: unfinished,
            faults: self.faults.as_ref().map(|f| f.counters).unwrap_or_default(),
            run_stats: RunStats::default(),
            audit_violations: Vec::new(),
            jobs,
        }
    }
}

impl World for ClusterWorld {
    type Event = Event;

    fn handle(&mut self, sched: &mut Scheduler<'_, Event>, event: Event) {
        let now = sched.now();
        match event {
            Event::Arrival(spec) => {
                self.arrived += 1;
                let job = RunningJob::new(*spec);
                let home = NodeId(self.rng.index(self.nodes.len()) as u32);
                self.log.record(
                    now,
                    SchedulerEventKind::Submitted,
                    Some(job.id()),
                    Some(home),
                );
                if self.config.pending_discipline == crate::config::PendingDiscipline::Fifo
                    && !self.pending.is_empty()
                {
                    // Submissions are blocked: new arrivals join the back of
                    // the queue rather than jumping past older blocked jobs.
                    self.enqueue_pending(job, home, now);
                } else {
                    self.place_job(job, home, now, sched, true);
                }
            }
            Event::NodeWake { node, epoch } => {
                if self.nodes[node.0 as usize].epoch() != epoch {
                    return; // stale wake: the node changed since scheduling
                }
                self.nodes[node.0 as usize].advance_to(now);
                self.note_advanced(node);
                self.collect_completions(now, sched);
                // collect_completions only re-schedules nodes that completed
                // something; a pure phase-boundary wake still needs a new
                // wake-up.
                if self.nodes[node.0 as usize].epoch() == epoch {
                    self.schedule_wake(node, now, sched);
                }
            }
            Event::Exchange => {
                self.refresh_index_lossy(now, sched);
                self.overload_scan(now, sched);
                self.resize_scan(now, sched);
                self.check_reservations(now, sched);
                self.try_resume_suspended(now, sched);
                self.check_done(now);
                if !self.done {
                    sched.schedule_in(self.config.cluster.load_exchange_period, Event::Exchange);
                }
            }
            Event::Sample => {
                self.advance_active(now);
                self.collect_completions(now, sched);
                let pending = self.pending.len();
                self.gauges.sample(self.nodes.iter(), pending, now);
                if !self.done {
                    sched.schedule_in(self.config.sample_period, Event::Sample);
                }
            }
            Event::PendingRetry => {
                if !self.pending.is_empty() {
                    self.refresh_index(now, sched);
                    self.try_place_pending(now, sched);
                }
                self.check_done(now);
                if !self.done {
                    sched.schedule_in(self.config.pending_retry_period, Event::PendingRetry);
                }
            }
            Event::TransitArrive { job } => {
                if self.transit_contains(job)
                    && self.faults.as_mut().is_some_and(|f| f.migration_fails())
                {
                    self.handle_migration_failure(job, now, sched);
                } else {
                    self.handle_transit_arrive(job, now, sched);
                }
                self.check_done(now);
            }
            Event::NodeCrash { node } => {
                self.handle_node_crash(node, now, sched);
            }
            Event::NodeRestart { node } => {
                self.handle_node_restart(node, now, sched);
            }
            Event::ReservationUnstall { node } => {
                self.handle_reservation_unstall(node, now, sched);
                self.check_done(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::params::ClusterParams;
    use vr_workload::synth;

    fn small_cluster() -> ClusterParams {
        let mut params = ClusterParams::cluster2();
        params.nodes.truncate(8);
        params
    }

    fn run(policy: PolicyKind, trace: &Trace) -> RunReport {
        let config = SimConfig::new(small_cluster(), policy).with_seed(7);
        Simulation::new(config).run(trace)
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let trace = Trace {
            name: "empty".into(),
            jobs: vec![],
        };
        let report = run(PolicyKind::GLoadSharing, &trace);
        assert_eq!(report.summary.jobs, 0);
        assert!(report.all_completed());
    }

    #[test]
    fn light_load_completes_all_jobs_with_low_slowdown() {
        let trace = synth::light_load(20, &mut SimRng::seed_from(3));
        for policy in PolicyKind::ALL {
            let report = run(policy, &trace);
            assert!(report.all_completed(), "{policy}: unfinished jobs");
            assert_eq!(report.summary.jobs, 20, "{policy}");
            assert!(
                report.avg_slowdown() < 1.5,
                "{policy}: slowdown {} too high for light load",
                report.avg_slowdown()
            );
            report.check_breakdown_identity(0.01).unwrap();
        }
    }

    #[test]
    fn light_load_never_reconfigures() {
        // §5 condition 1: a lightly loaded cluster gives V-R nothing to do.
        let trace = synth::light_load(20, &mut SimRng::seed_from(3));
        let report = run(PolicyKind::VReconfiguration, &trace);
        assert_eq!(report.reservations.started, 0);
        assert_eq!(report.counters.blocking_detections, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let a = run(PolicyKind::VReconfiguration, &trace);
        let b = run(PolicyKind::VReconfiguration, &trace);
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.reservations, b.reservations);
        assert_eq!(a.finished_at, b.finished_at);
    }

    #[test]
    fn staggered_one_group_is_byte_identical_to_global() {
        use crate::config::LoadInfoMode;
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let global = run(policy, &trace);
            let staggered = Simulation::new(
                SimConfig::new(small_cluster(), policy)
                    .with_seed(7)
                    .with_load_info(LoadInfoMode::Staggered { groups: 1 }),
            )
            .run(&trace);
            // With one group every node reports at every tick, so the mode
            // must be indistinguishable from the global exchange.
            assert_eq!(global, staggered, "{policy}");
        }
    }

    #[test]
    fn staggered_load_info_completes_and_is_deterministic() {
        use crate::config::LoadInfoMode;
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let config = || {
            SimConfig::new(small_cluster(), PolicyKind::VReconfiguration)
                .with_seed(7)
                .with_load_info(LoadInfoMode::Staggered { groups: 4 })
        };
        let a = Simulation::new(config()).run(&trace);
        let b = Simulation::new(config()).run(&trace);
        assert_eq!(a, b);
        assert!(a.all_completed(), "stale load vectors lost jobs");
        a.check_breakdown_identity(0.01).unwrap();
    }

    #[test]
    fn commit_aware_placement_completes_and_is_deterministic() {
        use crate::config::PlacementMode;
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let config = || {
            SimConfig::new(small_cluster(), PolicyKind::VReconfiguration)
                .with_seed(7)
                .with_placement(PlacementMode::CommitAware)
        };
        let a = Simulation::new(config()).run(&trace);
        let b = Simulation::new(config()).run(&trace);
        assert_eq!(a, b);
        assert!(a.all_completed(), "commit-aware placement lost jobs");
        a.check_breakdown_identity(0.01).unwrap();
    }

    #[test]
    fn commit_aware_placement_spreads_a_contended_burst() {
        use crate::config::PlacementMode;
        use vr_workload::scale::ScaleSpec;
        // A scale-generator burst: many jobs target the same apparently
        // least-loaded node between exchange ticks. Optimistic placement
        // resolves the races by admission rejection + re-queue; commit-aware
        // subtracts in-flight demand up front, so the bounce count drops.
        // Paper-sized 384 MB nodes: two mean SPEC working sets fill one, so
        // the arrival peak actually contends for memory (the default 1.5 GB
        // headroom would absorb the whole burst without a single bounce).
        let spec = ScaleSpec::new(64, 500)
            .with_node_memory(vr_cluster::units::Bytes::from_mb(384))
            .with_utilization(1.2);
        let trace = spec.trace(&mut SimRng::seed_from(42));
        let run_with = |mode: PlacementMode| {
            Simulation::new(
                SimConfig::new(spec.cluster(), PolicyKind::VReconfiguration)
                    .with_seed(7)
                    .with_placement(mode),
            )
            .run(&trace)
        };
        let optimistic = run_with(PlacementMode::Optimistic);
        let commit_aware = run_with(PlacementMode::CommitAware);
        assert!(optimistic.all_completed());
        assert!(commit_aware.all_completed());
        assert!(
            optimistic.counters.stale_rejections > 0,
            "burst failed to contend: no optimistic placement ever bounced"
        );
        assert!(
            commit_aware.counters.stale_rejections < optimistic.counters.stale_rejections,
            "commit-aware bounced {} times, optimistic {}",
            commit_aware.counters.stale_rejections,
            optimistic.counters.stale_rejections
        );
        assert!(
            commit_aware.run_stats.events_processed <= optimistic.run_stats.events_processed,
            "commit-aware processed more events ({} vs {})",
            commit_aware.run_stats.events_processed,
            optimistic.run_stats.events_processed
        );
    }

    #[test]
    fn blocking_scenario_triggers_reconfiguration() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let gls = run(PolicyKind::GLoadSharing, &trace);
        let vr = run(PolicyKind::VReconfiguration, &trace);
        assert!(
            gls.counters.blocking_detections > 0,
            "scenario failed to block"
        );
        assert!(vr.reservations.started > 0, "V-R never reserved");
        assert!(vr.reservations.jobs_served > 0, "V-R never served a job");
        assert!(vr.all_completed());
        assert!(gls.all_completed());
    }

    #[test]
    fn vreconfiguration_beats_gls_on_the_blocking_scenario() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let gls = run(PolicyKind::GLoadSharing, &trace);
        let vr = run(PolicyKind::VReconfiguration, &trace);
        assert!(
            vr.avg_slowdown() < gls.avg_slowdown(),
            "V-R {:.3} should beat G-LS {:.3}",
            vr.avg_slowdown(),
            gls.avg_slowdown()
        );
        assert!(
            vr.total_queue_secs() < gls.total_queue_secs(),
            "V-R queue {:.0}s should be below G-LS {:.0}s",
            vr.total_queue_secs(),
            gls.total_queue_secs()
        );
    }

    #[test]
    fn breakdown_identity_holds_under_stress() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let report = run(policy, &trace);
            report.check_breakdown_identity(0.05).unwrap();
        }
    }

    #[test]
    fn all_reservations_are_eventually_released() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let report = run(PolicyKind::VReconfiguration, &trace);
        let r = report.reservations;
        assert_eq!(
            r.started,
            r.released_after_service + r.released_unused + r.timed_out,
            "reservation leak: {r:?}"
        );
    }

    #[test]
    fn gls_uses_remote_submission_under_load() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let report = run(PolicyKind::GLoadSharing, &trace);
        assert!(report.counters.remote_submissions > 0);
    }

    #[test]
    fn no_load_sharing_never_migrates() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let report = run(PolicyKind::NoLoadSharing, &trace);
        assert_eq!(report.counters.overload_migrations, 0);
        assert_eq!(report.counters.remote_submissions, 0);
        assert_eq!(report.reservations.started, 0);
    }

    #[test]
    fn tiny_reserve_timeout_abandons_reservations_but_recovers() {
        // "If a workstation can not be reserved within a pre-determined
        // time interval, it implies that the cluster is truly heavily
        // loaded" — with an absurdly small timeout every reserving period
        // is abandoned, and the system must still finish all jobs.
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let config = SimConfig::new(small_cluster(), PolicyKind::VReconfiguration)
            .with_seed(7)
            .with_reservation(crate::config::ReservationOptions {
                reserve_timeout: vr_simcore::time::SimSpan::from_secs(2),
                ..crate::config::ReservationOptions::default()
            });
        let report = Simulation::new(config).run(&trace);
        assert!(report.all_completed());
        assert!(report.reservations.timed_out > 0, "timeout never fired");
        let r = report.reservations;
        assert_eq!(
            r.started,
            r.released_after_service + r.released_unused + r.timed_out
        );
    }

    #[test]
    fn enough_memory_end_condition_serves_without_full_drain() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let config = SimConfig::new(small_cluster(), PolicyKind::VReconfiguration)
            .with_seed(7)
            .with_reservation(crate::config::ReservationOptions {
                end_condition: crate::config::ReservingEnd::EnoughMemory,
                ..crate::config::ReservationOptions::default()
            });
        let report = Simulation::new(config).run(&trace);
        assert!(report.all_completed());
        assert!(report.reservations.jobs_served > 0);
        report.check_breakdown_identity(0.05).unwrap();
    }

    #[test]
    fn heterogeneous_cluster_reserves_big_memory_nodes() {
        // §2.3: "a reserved workstation will be the one with relatively
        // large physical memory space". Big nodes are ids 0..2 here.
        let cluster = vr_cluster::params::ClusterParams::heterogeneous(8, 2);
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let config = SimConfig::new(cluster, PolicyKind::VReconfiguration).with_seed(7);
        let report = Simulation::new(config).run(&trace);
        assert!(report.all_completed());
        if report.reservations.started > 0 {
            // Big-memory nodes did the serving: they admitted more than
            // their per-node share.
            let big: u64 = report.node_counters[..2].iter().map(|c| c.admitted).sum();
            let small: u64 = report.node_counters[2..].iter().map(|c| c.admitted).sum();
            assert!(
                big as f64 / 2.0 >= small as f64 / 6.0,
                "big nodes admitted {big}, small {small}"
            );
        }
    }

    #[test]
    fn suspension_strawman_suspends_and_eventually_resumes() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let report = run(PolicyKind::SuspendLargest, &trace);
        assert!(report.counters.suspensions > 0, "never suspended");
        assert_eq!(
            report.counters.suspensions, report.counters.resumes,
            "all suspended jobs must eventually resume once the flow stops"
        );
        assert!(report.all_completed());
        report.check_breakdown_identity(0.05).unwrap();
    }

    /// A blocking scenario whose filler stream keeps flowing for several
    /// multiples of the giants' runtime — the "job submissions continue to
    /// flow" condition under which §1 says suspension starves large jobs.
    fn sustained_blocking_trace() -> Trace {
        let base = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let mut jobs = base.jobs.clone();
        // Repeat the steady filler stream three more times, shifted.
        let fillers: Vec<JobSpec> = base
            .jobs
            .iter()
            .filter(|j| j.name == "filler")
            .cloned()
            .collect();
        for round in 1..=3u64 {
            for f in &fillers {
                let mut j = f.clone();
                j.submit += SimSpan::from_secs(1040 * round);
                jobs.push(j);
            }
        }
        jobs.sort_by_key(|j| j.submit);
        for (i, j) in jobs.iter_mut().enumerate() {
            j.id = JobId(i as u64);
        }
        Trace {
            name: "Synth-Blocking-Sustained".into(),
            jobs,
        }
    }

    #[test]
    fn suspension_is_unfair_to_large_jobs() {
        // §1: suspension "will not be fair to the large jobs that may
        // starve if job submissions continue to flow". Compare the giants'
        // slowdowns under suspension vs reconfiguration on a sustained
        // filler stream.
        let trace = sustained_blocking_trace();
        let giant_mean = |r: &RunReport| {
            let s: Vec<f64> = r
                .jobs
                .iter()
                .filter(|j| j.spec.name == "giant")
                .map(|j| j.slowdown())
                .collect();
            s.iter().sum::<f64>() / s.len() as f64
        };
        let suspend = run(PolicyKind::SuspendLargest, &trace);
        let vrecon = run(PolicyKind::VReconfiguration, &trace);
        assert!(suspend.counters.suspensions > 0);
        assert!(
            giant_mean(&suspend) > giant_mean(&vrecon),
            "suspension should starve giants: {:.2} vs V-R {:.2}",
            giant_mean(&suspend),
            giant_mean(&vrecon)
        );
    }

    #[test]
    fn network_ram_reduces_paging_under_blocking() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let base = SimConfig::new(small_cluster(), PolicyKind::GLoadSharing).with_seed(7);
        let local = Simulation::new(base.clone()).run(&trace);
        let netram = Simulation::new(base.with_network_ram()).run(&trace);
        assert!(netram.all_completed());
        assert!(
            netram.summary.totals.page < local.summary.totals.page,
            "netram page {:.0}s should be below local {:.0}s",
            netram.summary.totals.page,
            local.summary.totals.page
        );
        assert!(netram.avg_slowdown() < local.avg_slowdown());
        netram.check_breakdown_identity(0.05).unwrap();
    }

    #[test]
    fn network_ram_composes_with_reconfiguration() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let vr = Simulation::new(
            SimConfig::new(small_cluster(), PolicyKind::VReconfiguration).with_seed(7),
        )
        .run(&trace);
        let vr_netram = Simulation::new(
            SimConfig::new(small_cluster(), PolicyKind::VReconfiguration)
                .with_seed(7)
                .with_network_ram(),
        )
        .run(&trace);
        assert!(vr_netram.all_completed());
        assert!(vr_netram.avg_slowdown() <= vr.avg_slowdown() * 1.02);
    }

    #[test]
    fn event_log_tells_a_consistent_story() {
        use crate::events::SchedulerEventKind as K;
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        let report = run(PolicyKind::VReconfiguration, &trace);
        let log = &report.events;
        assert!(!log.is_empty());
        // Every job is submitted exactly once and completed exactly once.
        assert_eq!(log.of_kind(K::Submitted).count(), trace.len());
        assert_eq!(log.of_kind(K::Completed).count(), trace.len());
        // Per job: submission precedes first placement precedes completion.
        for job in &report.jobs {
            let events: Vec<_> = log.for_job(job.id()).collect();
            let submitted = events.iter().find(|e| e.kind == K::Submitted).unwrap();
            let placed = events.iter().find(|e| e.kind == K::Placed).unwrap();
            let completed = events.iter().find(|e| e.kind == K::Completed).unwrap();
            assert!(submitted.time <= placed.time);
            assert!(placed.time <= completed.time);
        }
        // Reservation begins and releases pair up.
        assert_eq!(
            log.of_kind(K::ReservationBegan).count() as u64,
            report.reservations.started
        );
        assert_eq!(
            log.of_kind(K::ReservationBegan).count(),
            log.of_kind(K::ReservationReleased).count()
        );
        // Special-service migrations match the reservation stats.
        assert_eq!(
            log.of_kind(K::SpecialServiceStarted).count() as u64,
            report.reservations.jobs_served
        );
    }

    #[test]
    fn only_suspend_policy_suspends() {
        let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let report = run(policy, &trace);
            assert_eq!(report.counters.suspensions, 0, "{policy}");
        }
    }
}
