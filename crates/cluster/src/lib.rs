//! # vr-cluster — the workstation substrate
//!
//! Models of everything physical in the ICDCS 2002 reproduction: jobs and
//! their memory demand, workstations with round-robin multiprogramming and a
//! page-fault model, the interconnect, and the global load index that
//! scheduling policies read.
//!
//! * [`units`] — [`Bytes`] memory quantities.
//! * [`job`] — [`JobSpec`] / [`RunningJob`]
//!   with the §5 [`TimeBreakdown`]
//!   (`wall = cpu + page + queue + migration`).
//! * [`cpu`] — processor-sharing approximation of round-robin scheduling.
//! * [`memory`] — the linear-overflow [`FaultModel`]
//!   substituting the original kernel-trace-driven fault model.
//! * [`node`] — the [`Workstation`] with lazy piecewise
//!   advancement.
//! * [`network`] — remote submission and `r + D/B` migration costs.
//! * [`netram`] — the network-RAM extension (§2.3 / ref \[12]): faults
//!   served from remote idle memory.
//! * [`loadinfo`] — the periodically exchanged
//!   [`LoadIndex`].
//! * [`params`] — the paper's two 32-node clusters and heterogeneous
//!   variants.
//! * [`protection`] — intra-node thrashing protection (TPF, ref \[6]),
//!   ablated against inter-node reconfiguration.
//!
//! ```
//! use vr_cluster::params::ClusterParams;
//! use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
//! use vr_cluster::units::Bytes;
//! use vr_simcore::time::{SimSpan, SimTime};
//!
//! let mut nodes = ClusterParams::cluster2().build_nodes();
//! let job = RunningJob::new(JobSpec {
//!     id: JobId(1),
//!     name: "m-sort".into(),
//!     class: JobClass::MemoryIntensive,
//!     submit: SimTime::ZERO,
//!     cpu_work: SimSpan::from_secs(120),
//!     memory: MemoryProfile::constant(Bytes::from_mb(60)),
//!     io_rate: 0.0,
//!     malleable: None,
//! });
//! nodes[0].try_admit(job, SimTime::ZERO).unwrap();
//! nodes[0].advance_to(SimTime::from_secs(121));
//! assert_eq!(nodes[0].take_completed().len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cpu;
pub mod job;
pub mod loadinfo;
pub mod memory;
pub mod netram;
pub mod network;
pub mod node;
pub mod params;
pub mod protection;
pub mod units;

pub use cpu::CpuParams;
pub use job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob, TimeBreakdown};
pub use loadinfo::{LoadIndex, NodeLoad};
pub use memory::{FaultModel, MemoryParams};
pub use netram::NetworkRamParams;
pub use network::NetworkParams;
pub use node::{NodeId, NodeParams, Workstation};
pub use params::ClusterParams;
pub use protection::ThrashingProtection;
pub use units::Bytes;
