//! Multi-seed robustness check of the headline comparisons.
//!
//! The paper reports single runs; this binary replays every
//! group × arrival-level pairing under several scheduling seeds and reports
//! the mean / min / max reduction, showing the V-R advantage is not a
//! seed artifact. (Trace generation stays fixed — the paper's traces are
//! fixed inputs; only the scheduler's home-node randomness varies.)

use vr_bench::Group;
use vr_metrics::table::TextTable;
use vr_simcore::stats::reduction_pct;
use vr_workload::trace::TraceLevel;
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

const SEEDS: [u64; 3] = [7, 1131, 90210];

fn main() {
    println!("multi-seed robustness: slowdown reduction of V-R over G-LS");
    println!(
        "({} seeds per cell; trace generation fixed at seed 42)\n",
        SEEDS.len()
    );
    let mut table = TextTable::new(vec!["trace", "mean reduction", "min", "max", "V-R wins"]);
    for group in [Group::Spec, Group::App] {
        for level in TraceLevel::ALL {
            let trace = group.trace(level);
            let mut reductions = Vec::new();
            for seed in SEEDS {
                let run = |policy: PolicyKind| {
                    let config = SimConfig::new(group.cluster(), policy).with_seed(seed);
                    Simulation::new(config).run(&trace)
                };
                let (gls, vr) = std::thread::scope(|scope| {
                    let g = scope.spawn(|| run(PolicyKind::GLoadSharing));
                    let v = scope.spawn(|| run(PolicyKind::VReconfiguration));
                    (g.join().expect("gls run"), v.join().expect("vr run"))
                });
                reductions.push(reduction_pct(gls.avg_slowdown(), vr.avg_slowdown()));
            }
            let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
            let min = reductions.iter().copied().fold(f64::INFINITY, f64::min);
            let max = reductions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let wins = reductions.iter().filter(|r| **r > 0.0).count();
            table.row(vec![
                trace.name.clone(),
                format!("{mean:+.1}%"),
                format!("{min:+.1}%"),
                format!("{max:+.1}%"),
                format!("{wins}/{}", reductions.len()),
            ]);
        }
    }
    println!("{}", table.render());
}
