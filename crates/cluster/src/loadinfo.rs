//! The global load index.
//!
//! "Each workstation maintains a global load index file which contains CPU,
//! memory, and I/O load status information of other computing nodes. The
//! load sharing system periodically collects and distributes the load
//! information among the workstations." (§3.3.1)
//!
//! [`LoadIndex`] models that: a snapshot of every node's load, refreshed at
//! the exchange period. Scheduling policies read the *index*, not the live
//! node state, so their decisions suffer the same staleness a real
//! distributed system would.

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimTime;

use crate::node::{NodeId, Workstation};
use crate::units::Bytes;

/// One node's entry in the global load index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// Which node.
    pub node: NodeId,
    /// Number of resident jobs.
    pub active_jobs: usize,
    /// Idle user memory.
    pub idle_memory: Bytes,
    /// Demand beyond user memory (being paged).
    pub overflow: Bytes,
    /// `true` if the node is experiencing page faults.
    pub faulting: bool,
    /// `true` if a CPU job slot is free.
    pub has_slot: bool,
    /// `true` if the node is reserved for special service.
    pub reserved: bool,
    /// `false` if the node is crashed. Down nodes report no capacity at all
    /// (no idle memory, no slot) so cluster-wide gauges exclude them.
    pub up: bool,
    /// User memory size (static, but carried for heterogeneity-aware
    /// decisions).
    pub user_memory: Bytes,
}

impl NodeLoad {
    /// Captures a node's current load. The node should have been advanced to
    /// `now` by the caller for exact values.
    ///
    /// A crashed node is captured as contributing nothing: zero jobs, zero
    /// idle memory, no free slot.
    pub fn capture(node: &Workstation) -> NodeLoad {
        if !node.is_up() {
            return NodeLoad {
                node: node.id(),
                active_jobs: 0,
                idle_memory: Bytes::ZERO,
                overflow: Bytes::ZERO,
                faulting: false,
                has_slot: false,
                reserved: node.is_reserved(),
                up: false,
                user_memory: node.params().memory.user,
            };
        }
        let usage = node.memory_usage();
        NodeLoad {
            node: node.id(),
            active_jobs: node.active_jobs(),
            idle_memory: usage.idle(),
            overflow: usage.overflow(),
            faulting: usage.is_oversubscribed(),
            has_slot: node.has_slot(),
            reserved: node.is_reserved(),
            up: true,
            user_memory: usage.user,
        }
    }

    /// The paper's qualification for accepting a submission: idle memory
    /// space, a free job slot, not reserved — and, with fault injection, up.
    pub fn accepts_submissions(&self) -> bool {
        self.up && !self.reserved && self.has_slot && !self.idle_memory.is_zero()
    }
}

/// A periodically refreshed snapshot of every node's load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadIndex {
    entries: Vec<NodeLoad>,
    refreshed_at: SimTime,
    /// Cluster-wide idle-memory sum, recomputed once per refresh. Entries
    /// are immutable between refreshes, so the cache cannot go stale; it is
    /// re-derived (not serialized) because it is a pure function of
    /// `entries`. Integer sum: order-independent, exactly equal to a walk.
    #[serde(skip)]
    cached_idle: Bytes,
    /// Cluster-wide user-memory sum, cached like [`LoadIndex::cached_idle`].
    #[serde(skip)]
    cached_user_total: Bytes,
}

impl LoadIndex {
    /// An empty index (before the first exchange).
    pub fn new() -> Self {
        LoadIndex::default()
    }

    /// Replaces the index with fresh captures of every node. In-place: the
    /// entry buffer is reused across refreshes (this runs every exchange
    /// tick), and the sort is O(n) for the usual already-ordered input.
    pub fn refresh<'a>(&mut self, nodes: impl IntoIterator<Item = &'a Workstation>, now: SimTime) {
        self.entries.clear();
        self.entries
            .extend(nodes.into_iter().map(NodeLoad::capture));
        self.entries.sort_by_key(|e| e.node);
        self.refreshed_at = now;
        self.recompute_sums();
    }

    /// Re-derives the cached cluster-wide sums from `entries`. Every path
    /// that rebuilds `entries` must end here.
    fn recompute_sums(&mut self) {
        self.cached_idle = self.entries.iter().map(|e| e.idle_memory).sum();
        self.cached_user_total = self.entries.iter().map(|e| e.user_memory).sum();
    }

    /// Refreshes the index but keeps the *old* entry for every node in
    /// `stale` — modelling a load exchange in which those nodes' reports
    /// were lost in transit. A stale node with no previous entry gets a
    /// fresh capture (there is nothing older to keep).
    pub fn refresh_except<'a>(
        &mut self,
        nodes: impl IntoIterator<Item = &'a Workstation>,
        now: SimTime,
        stale: &[NodeId],
    ) {
        let old = std::mem::take(&mut self.entries);
        self.entries = nodes
            .into_iter()
            .map(|node| {
                if stale.contains(&node.id()) {
                    if let Ok(i) = old.binary_search_by_key(&node.id(), |e| e.node) {
                        return old[i];
                    }
                }
                NodeLoad::capture(node)
            })
            .collect();
        self.entries.sort_by_key(|e| e.node);
        self.refreshed_at = now;
        self.recompute_sums();
    }

    /// When the index was last refreshed.
    pub fn refreshed_at(&self) -> SimTime {
        self.refreshed_at
    }

    /// The entry for one node, if present.
    pub fn get(&self, node: NodeId) -> Option<&NodeLoad> {
        self.entries
            .binary_search_by_key(&node, |e| e.node)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// All entries, ordered by node id.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLoad> {
        self.entries.iter()
    }

    /// Number of nodes in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` before the first refresh.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total idle memory accumulated across the cluster — the precondition
    /// gauge for virtual reconfiguration (§2.1).
    pub fn accumulated_idle_memory(&self) -> Bytes {
        debug_assert_eq!(
            self.cached_idle,
            self.entries.iter().map(|e| e.idle_memory).sum::<Bytes>(),
            "cached idle-memory sum out of sync with entries"
        );
        self.cached_idle
    }

    /// Average user memory per workstation (the reconfiguration threshold).
    pub fn average_user_memory(&self) -> Bytes {
        if self.entries.is_empty() {
            return Bytes::ZERO;
        }
        Bytes::new(self.cached_user_total.as_u64() / self.entries.len() as u64)
    }

    /// The best destination for an ordinary submission or migration: a
    /// non-reserved node with a free slot and idle memory, preferring the
    /// fewest active jobs, then the most idle memory.
    ///
    /// `exclude` filters out the source node.
    pub fn best_destination(&self, exclude: Option<NodeId>) -> Option<&NodeLoad> {
        self.entries
            .iter()
            .filter(|e| Some(e.node) != exclude && e.accepts_submissions())
            .min_by_key(|e| (e.active_jobs, std::cmp::Reverse(e.idle_memory), e.node))
    }

    /// The paper's `reserve_a_workstation()` choice: the most lightly loaded
    /// non-reserved workstation with the largest idle memory (in a
    /// heterogeneous cluster this also favours large-memory nodes, §2.3).
    pub fn reservation_candidate(&self) -> Option<&NodeLoad> {
        self.entries
            .iter()
            .filter(|e| e.up && !e.reserved)
            .max_by_key(|e| {
                (
                    e.idle_memory,
                    std::cmp::Reverse(e.active_jobs),
                    std::cmp::Reverse(e.node),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuParams;
    use crate::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
    use crate::memory::{FaultModel, MemoryParams};
    use crate::node::NodeParams;
    use vr_simcore::time::SimSpan;

    fn params(user_mb: u64) -> NodeParams {
        NodeParams {
            cpu: CpuParams::with_slots(4),
            memory: MemoryParams::with_capacity(Bytes::from_mb(user_mb), Bytes::from_mb(user_mb)),
            fault_model: FaultModel::default(),
            protection: Default::default(),
        }
    }

    fn node_with_jobs(id: u32, user_mb: u64, jobs: &[(u64, u64)]) -> Workstation {
        let mut node = Workstation::new(NodeId(id), params(user_mb));
        for &(jid, ws) in jobs {
            node.try_admit(
                RunningJob::new(JobSpec {
                    id: JobId(jid),
                    name: format!("j{jid}"),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(100),
                    memory: MemoryProfile::constant(Bytes::from_mb(ws)),
                    io_rate: 0.0,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        }
        node
    }

    #[test]
    fn capture_reflects_node_state() {
        let node = node_with_jobs(3, 128, &[(1, 100), (2, 50)]);
        let load = NodeLoad::capture(&node);
        assert_eq!(load.node, NodeId(3));
        assert_eq!(load.active_jobs, 2);
        assert_eq!(load.idle_memory, Bytes::ZERO);
        assert_eq!(load.overflow, Bytes::from_mb(22));
        assert!(load.faulting);
        assert!(load.has_slot);
        assert!(!load.accepts_submissions()); // no idle memory
    }

    #[test]
    fn index_lookup_and_gauges() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 28)]),
            node_with_jobs(1, 128, &[(2, 100)]),
            node_with_jobs(2, 128, &[]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::from_secs(5));
        assert_eq!(index.len(), 3);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(5));
        assert_eq!(
            index.get(NodeId(1)).unwrap().idle_memory,
            Bytes::from_mb(28)
        );
        assert!(index.get(NodeId(9)).is_none());
        // 100 + 28 + 128 idle.
        assert_eq!(index.accumulated_idle_memory(), Bytes::from_mb(256));
        assert_eq!(index.average_user_memory(), Bytes::from_mb(128));
    }

    #[test]
    fn best_destination_prefers_light_nodes() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 10), (2, 10)]),
            node_with_jobs(1, 128, &[(3, 10)]),
            node_with_jobs(2, 128, &[(4, 10)]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        // Nodes 1 and 2 tie on job count and idle memory; ties break by id.
        assert_eq!(index.best_destination(None).unwrap().node, NodeId(1));
        assert_eq!(
            index.best_destination(Some(NodeId(1))).unwrap().node,
            NodeId(2)
        );
    }

    #[test]
    fn best_destination_skips_unqualified() {
        let mut full = node_with_jobs(0, 128, &[(1, 5), (2, 5), (3, 5), (4, 5)]);
        full.advance_to(SimTime::ZERO);
        let saturated = node_with_jobs(1, 128, &[(5, 130)]);
        let mut reserved = node_with_jobs(2, 128, &[]);
        reserved.set_reserved(true);
        let nodes = [full, saturated, reserved];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        // No slot / no idle memory / reserved: nothing qualifies.
        assert!(index.best_destination(None).is_none());
    }

    #[test]
    fn reservation_candidate_maximizes_idle_memory() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 100)]),
            node_with_jobs(1, 128, &[(2, 20)]),
            node_with_jobs(2, 128, &[(3, 60)]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn reservation_candidate_ignores_already_reserved() {
        let mut best = node_with_jobs(0, 128, &[]);
        best.set_reserved(true);
        let nodes = [best, node_with_jobs(1, 128, &[(1, 64)])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn heterogeneous_reservation_prefers_big_memory_nodes() {
        // §2.3: "a reserved workstation will be the one with relatively
        // large physical memory space".
        let nodes = [node_with_jobs(0, 128, &[]), node_with_jobs(1, 384, &[])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn down_node_contributes_nothing() {
        let mut down = node_with_jobs(0, 128, &[(1, 30)]);
        down.crash(SimTime::ZERO);
        let nodes = [down, node_with_jobs(1, 128, &[(2, 28)])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        let entry = index.get(NodeId(0)).unwrap();
        assert!(!entry.up);
        assert_eq!(entry.idle_memory, Bytes::ZERO);
        assert!(!entry.has_slot);
        assert!(!entry.accepts_submissions());
        // Gauges and candidate selection exclude the dead node.
        assert_eq!(index.accumulated_idle_memory(), Bytes::from_mb(100));
        assert_eq!(index.best_destination(None).unwrap().node, NodeId(1));
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn refresh_except_keeps_stale_entries() {
        let mut node0 = node_with_jobs(0, 128, &[]);
        let node1 = node_with_jobs(1, 128, &[]);
        let mut index = LoadIndex::new();
        index.refresh([&node0, &node1], SimTime::ZERO);
        assert_eq!(index.get(NodeId(0)).unwrap().active_jobs, 0);
        // Node 0 gains a job, but its next report is lost.
        node0
            .try_admit(
                RunningJob::new(JobSpec {
                    id: JobId(9),
                    name: "j9".into(),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(100),
                    memory: MemoryProfile::constant(Bytes::from_mb(10)),
                    io_rate: 0.0,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        index.refresh_except([&node0, &node1], SimTime::from_secs(5), &[NodeId(0)]);
        // Peers still see the pre-admission snapshot of node 0.
        assert_eq!(index.get(NodeId(0)).unwrap().active_jobs, 0);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(5));
        // A lost report with no prior entry falls back to a fresh capture.
        let mut empty = LoadIndex::new();
        empty.refresh_except([&node0, &node1], SimTime::from_secs(6), &[NodeId(0)]);
        assert_eq!(empty.get(NodeId(0)).unwrap().active_jobs, 1);
    }

    #[test]
    fn empty_index_defaults() {
        let index = LoadIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.accumulated_idle_memory(), Bytes::ZERO);
        assert_eq!(index.average_user_memory(), Bytes::ZERO);
        assert!(index.best_destination(None).is_none());
        assert!(index.reservation_candidate().is_none());
    }
}
