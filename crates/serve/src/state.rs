//! Shared server state: counters, the in-memory hot tier, and the
//! in-flight table that powers request coalescing.
//!
//! Everything here is deliberately boring concurrency: `BTreeMap`s under
//! single `Mutex`es and relaxed atomics for counters. The request rate a
//! scheduling what-if service sees is bounded by simulation time, not
//! lock throughput, so clarity wins. Poisoned locks are impossible in
//! practice (no panics while holding them) but are recovered with
//! [`PoisonError::into_inner`] anyway: a counter or cache tier is still
//! valid after an unwinding writer, and a serving loop must not die to a
//! secondary panic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Monotonic request counters, all relaxed: they are reporting, not
/// synchronisation.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests fully read off a socket (any method, any outcome).
    pub requests: AtomicU64,
    /// `/run` answered from the in-memory hot tier.
    pub hot_hits: AtomicU64,
    /// `/run` answered from the on-disk result cache.
    pub disk_hits: AtomicU64,
    /// Simulations actually executed by a worker.
    pub sims_executed: AtomicU64,
    /// `/run` requests that joined an in-flight simulation instead of
    /// starting their own.
    pub coalesced: AtomicU64,
    /// `/run` requests refused with 503 because the in-flight table was
    /// full.
    pub overloads: AtomicU64,
    /// Connections refused with 429 before reading the request.
    pub rejected_conns: AtomicU64,
    /// Requests answered with a 4xx for being malformed (parse errors,
    /// bad specs, wrong method/path).
    pub bad_requests: AtomicU64,
    /// Requests that timed out mid-read (408).
    pub timeouts: AtomicU64,
}

impl Counters {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// The in-memory hot tier: the most recently used response bodies, keyed
/// by scenario content hash. Bodies are `Arc<String>` so a hit hands out
/// a reference instead of copying a multi-KB report under the lock.
#[derive(Debug)]
pub struct HotTier {
    cap: usize,
    inner: Mutex<HotInner>,
}

#[derive(Debug, Default)]
struct HotInner {
    /// Recency stamp source; bumped on every touch.
    seq: u64,
    /// hash → (recency stamp, body).
    by_hash: BTreeMap<String, (u64, Arc<String>)>,
    /// recency stamp → hash, for O(log n) victim selection.
    order: BTreeMap<u64, String>,
}

impl HotTier {
    /// A tier holding at most `cap` bodies (`cap == 0` disables it).
    pub fn new(cap: usize) -> HotTier {
        HotTier {
            cap,
            inner: Mutex::new(HotInner::default()),
        }
    }

    /// Looks a hash up, refreshing its recency on hit.
    pub fn get(&self, hash: &str) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.seq += 1;
        let stamp = inner.seq;
        let entry = inner.by_hash.get_mut(hash)?;
        let old = std::mem::replace(&mut entry.0, stamp);
        let body = Arc::clone(&entry.1);
        inner.order.remove(&old);
        inner.order.insert(stamp, hash.to_owned());
        Some(body)
    }

    /// Inserts (or refreshes) a body, evicting the least recently used
    /// entry when full.
    pub fn put(&self, hash: &str, body: Arc<String>) {
        if self.cap == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.seq += 1;
        let stamp = inner.seq;
        if let Some((old, _)) = inner.by_hash.insert(hash.to_owned(), (stamp, body)) {
            inner.order.remove(&old);
        }
        inner.order.insert(stamp, hash.to_owned());
        while inner.by_hash.len() > self.cap {
            let Some((&oldest, _)) = inner.order.iter().next() else {
                break;
            };
            if let Some(victim) = inner.order.remove(&oldest) {
                inner.by_hash.remove(&victim);
            }
        }
    }

    /// Number of resident bodies.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .by_hash
            .len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result slot one in-flight simulation publishes to every request
/// waiting on it (the leader included).
#[derive(Debug, Default)]
pub struct Slot {
    done: Mutex<Option<Result<Arc<String>, String>>>,
    cv: Condvar,
}

impl Slot {
    /// Publishes the outcome and wakes every waiter.
    pub fn fill(&self, outcome: Result<Arc<String>, String>) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = Some(outcome);
        self.cv.notify_all();
    }

    /// Blocks until the outcome is published.
    pub fn wait(&self) -> Result<Arc<String>, String> {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(outcome) = done.as_ref() {
                return outcome.clone();
            }
            done = self.cv.wait(done).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// The in-flight table: scenario hash → the slot its waiters block on.
/// Doubles as the admission gate — `try_admit` refuses new leaders once
/// the table holds `max_inflight` entries.
#[derive(Debug)]
pub struct Inflight {
    max: usize,
    table: Mutex<BTreeMap<String, Arc<Slot>>>,
}

/// Outcome of asking the in-flight table about a hash.
#[derive(Debug)]
pub enum Admission {
    /// This request is the leader: it enqueued the simulation; the slot
    /// is the one it (and followers) wait on.
    Leader(Arc<Slot>),
    /// An identical request is already in flight; wait on its slot.
    Follower(Arc<Slot>),
    /// The table is full; the request must be refused with 503.
    Overloaded,
}

impl Inflight {
    /// A table admitting at most `max` concurrent distinct scenarios.
    pub fn new(max: usize) -> Inflight {
        Inflight {
            max: max.max(1),
            table: Mutex::new(BTreeMap::new()),
        }
    }

    /// Coalesce onto an existing slot, admit as a new leader, or refuse.
    /// Followers always coalesce, even at capacity: they add load to a
    /// simulation already paid for.
    pub fn try_admit(&self, hash: &str) -> Admission {
        let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slot) = table.get(hash) {
            return Admission::Follower(Arc::clone(slot));
        }
        if table.len() >= self.max {
            return Admission::Overloaded;
        }
        let slot = Arc::new(Slot::default());
        table.insert(hash.to_owned(), Arc::clone(&slot));
        Admission::Leader(slot)
    }

    /// Removes a finished entry (the worker calls this *before* filling
    /// the slot, so a request arriving after removal starts fresh rather
    /// than waiting on a dead slot).
    pub fn finish(&self, hash: &str) -> Option<Arc<Slot>> {
        self.table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(hash)
    }

    /// Number of distinct scenarios currently in flight.
    pub fn len(&self) -> usize {
        self.table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_tier_evicts_least_recently_used() {
        let tier = HotTier::new(2);
        tier.put("a", Arc::new("A".to_owned()));
        tier.put("b", Arc::new("B".to_owned()));
        // Touch `a` so `b` is the LRU victim.
        assert_eq!(tier.get("a").unwrap().as_str(), "A");
        tier.put("c", Arc::new("C".to_owned()));
        assert_eq!(tier.len(), 2);
        assert!(tier.get("b").is_none(), "b should have been evicted");
        assert_eq!(tier.get("a").unwrap().as_str(), "A");
        assert_eq!(tier.get("c").unwrap().as_str(), "C");
    }

    #[test]
    fn hot_tier_put_refreshes_existing_key() {
        let tier = HotTier::new(2);
        tier.put("a", Arc::new("A1".to_owned()));
        tier.put("a", Arc::new("A2".to_owned()));
        assert_eq!(tier.len(), 1);
        assert_eq!(tier.get("a").unwrap().as_str(), "A2");
    }

    #[test]
    fn zero_capacity_tier_stores_nothing() {
        let tier = HotTier::new(0);
        tier.put("a", Arc::new("A".to_owned()));
        assert!(tier.is_empty());
        assert!(tier.get("a").is_none());
    }

    #[test]
    fn inflight_coalesces_then_overloads() {
        let inflight = Inflight::new(2);
        let Admission::Leader(first) = inflight.try_admit("h1") else {
            panic!("first request must lead");
        };
        assert!(matches!(inflight.try_admit("h1"), Admission::Follower(_)));
        assert!(matches!(inflight.try_admit("h2"), Admission::Leader(_)));
        // Table full: a third distinct hash is refused...
        assert!(matches!(inflight.try_admit("h3"), Admission::Overloaded));
        // ...but followers of in-flight work still coalesce.
        assert!(matches!(inflight.try_admit("h2"), Admission::Follower(_)));
        assert_eq!(inflight.len(), 2);
        // Finishing h1 frees a seat.
        inflight
            .finish("h1")
            .unwrap()
            .fill(Ok(Arc::new(String::new())));
        first.wait().unwrap();
        assert!(matches!(inflight.try_admit("h3"), Admission::Leader(_)));
    }

    #[test]
    fn slot_delivers_result_to_concurrent_waiters() {
        let slot = Arc::new(Slot::default());
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let slot = Arc::clone(&slot);
                std::thread::spawn(move || slot.wait())
            })
            .collect();
        slot.fill(Ok(Arc::new("body".to_owned())));
        for w in waiters {
            assert_eq!(w.join().unwrap().unwrap().as_str(), "body");
        }
        // Late waiters see the result immediately.
        assert_eq!(slot.wait().unwrap().as_str(), "body");
    }

    #[test]
    fn slot_propagates_failure() {
        let slot = Slot::default();
        slot.fill(Err("sim panicked".to_owned()));
        assert_eq!(slot.wait().unwrap_err(), "sim panicked");
    }
}
