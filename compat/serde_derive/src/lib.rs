//! No-op stand-ins for serde's derive macros.
//!
//! The workspace derives `Serialize`/`Deserialize` declaratively but never
//! drives serialization through serde (all interchange formats are
//! hand-rolled), so expanding to nothing preserves behavior. The
//! `attributes(serde)` registration keeps `#[serde(...)]` field attributes
//! legal should any appear later.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
