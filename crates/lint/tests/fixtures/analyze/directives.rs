// vr-analyze::allow(lock-cycle, reason = "fixture: suppresses nothing")
pub fn idle() {}

// vr-analyze::blocking(reason = "fixture: attaches to nothing")
pub struct Marker;

// vr-analyze::nonsense(reason = "fixture")
pub fn also_idle() {}
