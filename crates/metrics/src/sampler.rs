//! Periodic cluster gauges: idle memory volume and job balance skew.
//!
//! §4.1: "We collect the total idle memory volume in the cluster every
//! second to calculate the average amount of idle memory space during the
//! entire lifetime." §4.2: "We collect the number of active jobs in each
//! workstation every second to calculate the standard deviation of the
//! number of active jobs among all non-reserved workstations at this moment.
//! This standard deviation gives the job balance skew."
//!
//! [`ClusterGauges`] records both series; the simulation driver calls
//! [`ClusterGauges::sample`] on its sampling event.

use serde::{Deserialize, Serialize};
use vr_cluster::node::Workstation;
use vr_cluster::units::Bytes;
use vr_simcore::series::TimeSeries;
use vr_simcore::stats::OnlineStats;
use vr_simcore::time::SimTime;

/// Population standard deviation of active-job counts across the given
/// (non-reserved) workstations — the paper's per-instant job balance skew.
pub fn balance_skew(active_jobs: &[usize]) -> f64 {
    active_jobs
        .iter()
        .map(|&n| n as f64)
        .collect::<OnlineStats>()
        .population_std_dev()
}

/// Periodically sampled cluster-wide gauges.
///
/// Reserved workstations are *virtually removed* from the cluster for the
/// duration of their special service, so — exactly as the paper does for the
/// job balance skew — the idle-memory and skew gauges measure the
/// non-reserved (virtual) cluster. The physical total including reserved
/// nodes is kept alongside for ablation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterGauges {
    /// Total idle memory across non-reserved workstations, in MB, per
    /// sample (the paper's "average idle memory volume" gauge).
    pub idle_memory_mb: TimeSeries,
    /// Total idle memory across *all* workstations, reserved included, in
    /// MB, per sample.
    pub physical_idle_memory_mb: TimeSeries,
    /// Job balance skew across non-reserved workstations, per sample.
    pub balance_skew: TimeSeries,
    /// Number of reserved workstations, per sample.
    pub reserved_nodes: TimeSeries,
    /// Number of jobs waiting in the cluster pending queue, per sample.
    pub pending_jobs: TimeSeries,
}

impl ClusterGauges {
    /// An empty gauge set.
    pub fn new() -> Self {
        ClusterGauges::default()
    }

    /// Samples all gauges from the given workstations. Nodes should be
    /// advanced to `now` by the caller for exact working-set values.
    pub fn sample<'a>(
        &mut self,
        nodes: impl IntoIterator<Item = &'a Workstation>,
        pending_jobs: usize,
        now: SimTime,
    ) {
        let mut idle = Bytes::ZERO;
        let mut physical_idle = Bytes::ZERO;
        let mut reserved = 0usize;
        let mut active_non_reserved = Vec::new();
        for node in nodes {
            physical_idle += node.idle_memory();
            if node.is_reserved() {
                reserved += 1;
            } else {
                idle += node.idle_memory();
                active_non_reserved.push(node.active_jobs());
            }
        }
        self.idle_memory_mb.push(now, idle.as_mb_f64());
        self.physical_idle_memory_mb
            .push(now, physical_idle.as_mb_f64());
        self.balance_skew
            .push(now, balance_skew(&active_non_reserved));
        self.reserved_nodes.push(now, reserved as f64);
        self.pending_jobs.push(now, pending_jobs as f64);
    }

    /// The paper's "average idle memory volume" (MB) over the run.
    pub fn avg_idle_memory_mb(&self) -> f64 {
        self.idle_memory_mb.sample_average()
    }

    /// The paper's "average job balance skew" over the run.
    pub fn avg_balance_skew(&self) -> f64 {
        self.balance_skew.sample_average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::cpu::CpuParams;
    use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
    use vr_cluster::memory::{FaultModel, MemoryParams};
    use vr_cluster::node::{NodeId, NodeParams};
    use vr_simcore::time::SimSpan;

    #[test]
    fn skew_of_balanced_cluster_is_zero() {
        assert_eq!(balance_skew(&[3, 3, 3, 3]), 0.0);
        assert_eq!(balance_skew(&[]), 0.0);
    }

    #[test]
    fn skew_grows_with_imbalance() {
        let balanced = balance_skew(&[2, 2, 2, 2]);
        let mild = balance_skew(&[1, 2, 3, 2]);
        let severe = balance_skew(&[0, 0, 0, 8]);
        assert!(balanced < mild && mild < severe);
        // [0,0,0,8]: mean 2, var (4+4+4+36)/4 = 12.
        assert!((severe - 12f64.sqrt()).abs() < 1e-12);
    }

    fn node(id: u32, jobs: usize, reserved: bool) -> Workstation {
        let mut n = Workstation::new(
            NodeId(id),
            NodeParams {
                cpu: CpuParams::with_slots(16),
                memory: MemoryParams::with_capacity(Bytes::from_mb(128), Bytes::from_mb(128)),
                fault_model: FaultModel::default(),
                protection: Default::default(),
            },
        );
        for j in 0..jobs {
            n.try_admit(
                RunningJob::new(JobSpec {
                    id: JobId((id as u64) << 16 | j as u64),
                    name: "x".into(),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(100),
                    memory: MemoryProfile::constant(Bytes::from_mb(10)),
                    io_rate: 0.0,
                    malleable: None,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        }
        n.set_reserved(reserved);
        n
    }

    #[test]
    fn sample_records_all_gauges() {
        let nodes = [node(0, 2, false), node(1, 0, true), node(2, 4, false)];
        let mut g = ClusterGauges::new();
        g.sample(nodes.iter(), 7, SimTime::from_secs(1));
        g.sample(nodes.iter(), 3, SimTime::from_secs(2));
        assert_eq!(g.idle_memory_mb.len(), 2);
        // Virtual-cluster idle excludes the reserved node:
        // (128-20) + (128-40) = 196 MB.
        assert!((g.avg_idle_memory_mb() - 196.0).abs() < 1e-9);
        // The physical gauge includes it: 196 + 128 = 324 MB.
        assert!((g.physical_idle_memory_mb.sample_average() - 324.0).abs() < 1e-9);
        // skew over non-reserved [2, 4]: std dev 1.
        assert!((g.avg_balance_skew() - 1.0).abs() < 1e-12);
        assert_eq!(g.reserved_nodes.sample_average(), 1.0);
        assert_eq!(g.pending_jobs.sample_average(), 5.0);
    }

    #[test]
    fn reserved_nodes_excluded_from_skew() {
        // One heavily loaded reserved node must not count as imbalance.
        let nodes = [node(0, 2, false), node(1, 2, false), node(2, 8, true)];
        let mut g = ClusterGauges::new();
        g.sample(nodes.iter(), 0, SimTime::from_secs(1));
        assert_eq!(g.avg_balance_skew(), 0.0);
    }
}
