//! The paper's overhead claim: "the adaptive process causes little
//! additional overhead" (§1, contribution 2).
//!
//! Two measurements back it:
//!
//! * the per-decision placement cost of V-Reconfiguration vs
//!   G-Loadsharing (identical code path — the reconfiguration machinery
//!   only runs on blocking), and
//! * wall-clock simulation time of the same blocking workload under both
//!   policies, which bounds the *scheduler-side* work including every
//!   reservation, scan, and special-service migration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vr_cluster::loadinfo::LoadIndex;
use vr_cluster::node::NodeId;
use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_simcore::rng::SimRng;
use vr_simcore::time::SimTime;
use vr_workload::synth;
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn placement_decision(c: &mut Criterion) {
    // A realistic 32-node index with mixed load.
    let mut nodes = ClusterParams::cluster1().build_nodes();
    let trace = synth::blocking_scenario(32, Bytes::from_mb(384));
    for (i, job) in trace.jobs.iter().take(64).enumerate() {
        let _ =
            nodes[i % 32].try_admit(vr_cluster::job::RunningJob::new(job.clone()), SimTime::ZERO);
    }
    let mut index = LoadIndex::new();
    index.refresh(nodes.iter(), SimTime::ZERO);
    let probe = vr_cluster::job::RunningJob::new(trace.jobs[0].clone());

    let mut group = c.benchmark_group("placement_decision");
    for policy in [
        PolicyKind::CpuOnly,
        PolicyKind::GLoadSharing,
        PolicyKind::VReconfiguration,
    ] {
        group.bench_function(policy.to_string(), |b| {
            let mut rng = SimRng::seed_from(1);
            b.iter(|| {
                black_box(policy.place(black_box(&probe), NodeId(5), black_box(&index), &mut rng))
            })
        });
    }
    group.finish();
}

fn end_to_end_overhead(c: &mut Criterion) {
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(8);
    let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
    let mut group = c.benchmark_group("simulation_wall_clock");
    group.sample_size(10);
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        group.bench_function(policy.to_string(), |b| {
            b.iter(|| {
                let config = SimConfig::new(cluster.clone(), policy).with_seed(7);
                let report = Simulation::new(config).run(&trace);
                black_box(report.summary.jobs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, placement_decision, end_to_end_overhead);
criterion_main!(benches);
