//! Processor model: round-robin multiprogramming as processor sharing.
//!
//! Each conventional workstation schedules its resident jobs round-robin
//! ("intra-workstation scheduling", §1 of the paper). Over intervals much
//! longer than the quantum, round-robin is statistically identical to
//! processor sharing: with `k` runnable jobs each receives a `1/k` CPU share,
//! degraded by the context-switch overhead (0.1 ms per switch) and by
//! page-fault stalls from the memory model.
//!
//! For a job with stall factor `s` (stall seconds per CPU second) on a node
//! with `k` jobs and context-switch efficiency `ε(k)`:
//!
//! ```text
//! progress rate  r = speed · ε(k) / k / (1 + s)     (CPU seconds per wall second)
//! ```
//!
//! and one wall-clock second decomposes exactly as the paper's §5 model
//! requires: `cpu += r`, `page += r·s`, `queue += 1 − r·(1+s)`.

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimSpan;

/// CPU configuration of a workstation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuParams {
    /// Execution speed relative to the reference node that trace CPU work is
    /// expressed in (1.0 = trace-native speed).
    pub speed: f64,
    /// Round-robin time slice.
    pub quantum: SimSpan,
    /// Cost of one context switch (0.1 ms in the paper).
    pub context_switch: SimSpan,
    /// The CPU threshold: the maximum number of job slots the CPU is willing
    /// to take (§1 of the paper).
    pub slots: u32,
}

impl CpuParams {
    /// Paper-standard CPU: native speed, 100 ms quantum, 0.1 ms context
    /// switch, and the given CPU threshold.
    pub fn with_slots(slots: u32) -> Self {
        CpuParams {
            speed: 1.0,
            quantum: SimSpan::from_millis(100),
            context_switch: SimSpan::from_micros(100),
            slots,
        }
    }

    /// Fraction of the CPU left after context-switch overhead when `k` jobs
    /// are multiprogrammed. One job runs switch-free.
    pub fn efficiency(&self, k: usize) -> f64 {
        if k <= 1 {
            return 1.0;
        }
        let q = self.quantum.as_secs_f64();
        let cs = self.context_switch.as_secs_f64();
        // vr-lint::allow(float-eq, reason = "exact zero-guard: both durations are non-negative, so the sum is zero only when preemption costs are disabled outright")
        if q + cs == 0.0 {
            1.0
        } else {
            q / (q + cs)
        }
    }

    /// Per-job progress rates (CPU seconds per wall second) for a node with
    /// the given per-job stall factors.
    ///
    /// The returned rates satisfy `Σ rᵢ·(1+sᵢ) ≤ speed` (the CPU cannot be
    /// more than fully used).
    pub fn progress_rates(&self, stall_factors: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.progress_rates_into(stall_factors, &mut out);
        out
    }

    /// [`CpuParams::progress_rates`] into a caller-owned buffer (cleared
    /// first), so the simulation hot path can reuse its allocation. The
    /// arithmetic is identical term for term.
    pub fn progress_rates_into(&self, stall_factors: &[f64], out: &mut Vec<f64>) {
        out.clear();
        let k = stall_factors.len();
        if k == 0 {
            return;
        }
        let share = self.progress_share(k);
        out.extend(stall_factors.iter().map(|s| share / (1.0 + s)));
    }

    /// The per-job CPU share `speed · ε(k) / k` (CPU seconds per wall second
    /// before stalls) when `k` jobs are multiprogrammed — the job-independent
    /// scalar of [`CpuParams::progress_rates`], exposed so fused callers can
    /// evaluate `share / (1 + sᵢ)` per job without a separate rate pass.
    pub fn progress_share(&self, k: usize) -> f64 {
        self.speed * self.efficiency(k) / k as f64
    }
}

/// How one wall-clock interval splits for a single job.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServiceSlice {
    /// CPU progress gained, in seconds.
    pub cpu: f64,
    /// Page-fault stall, in seconds.
    pub page: f64,
    /// Time spent waiting for the CPU, in seconds.
    pub queue: f64,
}

impl ServiceSlice {
    /// Splits a wall interval `dt` (seconds) for a job progressing at `rate`
    /// with stall factor `stall`.
    ///
    /// The three components always sum to exactly `dt`.
    pub fn split(dt: f64, rate: f64, stall: f64) -> ServiceSlice {
        let cpu = rate * dt;
        let page = cpu * stall;
        ServiceSlice {
            cpu,
            page,
            queue: (dt - cpu - page).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> CpuParams {
        CpuParams::with_slots(8)
    }

    #[test]
    fn single_job_runs_at_full_speed() {
        let rates = cpu().progress_rates(&[0.0]);
        assert_eq!(rates, vec![1.0]);
    }

    #[test]
    fn efficiency_is_one_for_single_job() {
        assert_eq!(cpu().efficiency(0), 1.0);
        assert_eq!(cpu().efficiency(1), 1.0);
    }

    #[test]
    fn context_switch_overhead_kicks_in_with_multiprogramming() {
        let e = cpu().efficiency(2);
        // quantum 100ms, switch 0.1ms: eff = 100 / 100.1.
        assert!((e - 100.0 / 100.1).abs() < 1e-12);
        assert!(e < 1.0);
    }

    #[test]
    fn equal_jobs_share_equally() {
        let rates = cpu().progress_rates(&[0.0, 0.0, 0.0, 0.0]);
        let expected = cpu().efficiency(4) / 4.0;
        for r in rates {
            assert!((r - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn stalled_jobs_progress_slower() {
        let rates = cpu().progress_rates(&[0.0, 1.0]);
        // The stalled job progresses at half the pace of the clean one.
        assert!((rates[1] - rates[0] / 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_cpu_use_never_exceeds_speed() {
        let stalls = [0.0, 0.5, 3.0, 10.0];
        let rates = cpu().progress_rates(&stalls);
        let used: f64 = rates
            .iter()
            .zip(stalls.iter())
            .map(|(r, s)| r * (1.0 + s))
            .sum();
        assert!(used <= 1.0 + 1e-12, "used {used}");
    }

    #[test]
    fn slower_node_scales_rates() {
        let slow = CpuParams {
            speed: 0.5,
            ..cpu()
        };
        assert_eq!(slow.progress_rates(&[0.0]), vec![0.5]);
    }

    #[test]
    fn service_slice_sums_to_dt() {
        let dt = 7.0;
        let s = ServiceSlice::split(dt, 0.25, 1.5);
        assert!((s.cpu + s.page + s.queue - dt).abs() < 1e-12);
        assert!((s.cpu - 1.75).abs() < 1e-12);
        assert!((s.page - 2.625).abs() < 1e-12);
    }

    #[test]
    fn lone_clean_job_accrues_no_queue_time() {
        let s = ServiceSlice::split(10.0, 1.0, 0.0);
        assert_eq!(s.cpu, 10.0);
        assert_eq!(s.page, 0.0);
        assert_eq!(s.queue, 0.0);
    }

    #[test]
    fn empty_node_has_no_rates() {
        assert!(cpu().progress_rates(&[]).is_empty());
    }
}
