//! `vrecon` — command-line interface to the ICDCS 2002 reproduction.
//!
//! ```sh
//! vrecon gen --group spec --level 3 --out spec3.vrt
//! vrecon inspect spec3.vrt
//! vrecon run spec3.vrt --cluster cluster1 --policy vrecon
//! vrecon compare spec3.vrt --cluster cluster1
//! vrecon trace spec --level 3 --out spec3-trace.json
//! ```

mod args;
mod commands;

use std::io::Write;
use std::process::ExitCode;

use args::Args;
use commands::{dispatch, USAGE};

/// Options that are flags (take no value).
const FLAGS: &[&str] = &[
    "netram",
    "csv",
    "log",
    "gantt",
    "audit",
    "no-cache",
    "broken-oracle",
    "help",
];

/// Prints to stdout, treating a broken pipe (e.g. `vrecon ... | head`) as a
/// clean exit instead of a panic.
fn emit(text: &str) -> ExitCode {
    let mut out = std::io::stdout().lock();
    match writeln!(out, "{text}") {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error writing output: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() || raw[0] == "--help" || raw[0] == "help" {
        return emit(USAGE);
    }
    let subcommand = raw.remove(0);
    let parsed = match Args::parse(raw, FLAGS) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.flag("help") {
        return emit(USAGE);
    }
    match dispatch(&subcommand, &parsed) {
        Ok(output) => emit(&output),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
