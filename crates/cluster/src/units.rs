//! Memory quantities.
//!
//! [`Bytes`] is a newtype over `u64` so that memory sizes never mix with
//! other integers (page counts, job counts, …). Constructors exist for the
//! units the paper uses: kilobytes (page size), megabytes (working sets).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A quantity of memory in bytes.
///
/// ```
/// use vr_cluster::units::Bytes;
///
/// let ws = Bytes::from_mb(190);
/// assert_eq!(ws.as_u64(), 190 * 1024 * 1024);
/// assert_eq!(ws / Bytes::from_kb(4), 48_640.0); // pages
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity of raw bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// `kb` binary kilobytes (KiB).
    pub const fn from_kb(kb: u64) -> Self {
        Bytes(kb * 1024)
    }

    /// `mb` binary megabytes (MiB).
    pub const fn from_mb(mb: u64) -> Self {
        Bytes(mb * 1024 * 1024)
    }

    /// Fractional megabytes, rounded to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `mb` is negative or NaN.
    pub fn from_mb_f64(mb: f64) -> Self {
        assert!(
            mb.is_finite() && mb >= 0.0,
            "Bytes::from_mb_f64 requires a finite non-negative value, got {mb}"
        );
        Bytes((mb * 1024.0 * 1024.0).round() as u64)
    }

    /// The raw byte count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// This quantity in fractional megabytes.
    pub fn as_mb_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// This quantity in bits (for network-transfer math).
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// `true` if zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// The smaller of two quantities.
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    /// The larger of two quantities.
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    /// Scales by a non-negative factor, rounding to the nearest byte.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    pub fn mul_f64(self, factor: f64) -> Bytes {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "Bytes::mul_f64 requires a finite non-negative factor, got {factor}"
        );
        Bytes((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        // vr-lint::allow(panic-in-lib, reason = "overflow of a u64 byte count means a corrupt workload; aborting beats silent wraparound")
        Bytes(self.0.checked_add(rhs.0).expect("Bytes overflow"))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// # Panics
    ///
    /// Panics if the result would be negative; use
    /// [`Bytes::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: Bytes) -> Bytes {
        assert!(self.0 >= rhs.0, "Bytes subtraction would be negative");
        Bytes(self.0 - rhs.0)
    }
}

impl std::ops::Div for Bytes {
    type Output = f64;
    /// The ratio of two quantities (e.g. working set / page size = pages).
    fn div(self, rhs: Bytes) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.1}MB", self.as_mb_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.1}KB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(Bytes::from_kb(4).as_u64(), 4096);
        assert_eq!(Bytes::from_mb(1).as_u64(), 1_048_576);
        assert_eq!(Bytes::from_mb_f64(1.5).as_u64(), 1_572_864);
        assert!((Bytes::from_mb(190).as_mb_f64() - 190.0).abs() < 1e-12);
        assert_eq!(Bytes::new(2).as_bits(), 16);
    }

    #[test]
    fn arithmetic() {
        let a = Bytes::from_mb(10);
        let b = Bytes::from_mb(4);
        assert_eq!(a + b, Bytes::from_mb(14));
        assert_eq!(a - b, Bytes::from_mb(6));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.mul_f64(0.5), Bytes::from_mb(5));
        assert_eq!(a / b, 2.5);
        assert_eq!([a, b].into_iter().sum::<Bytes>(), Bytes::from_mb(14));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn underflow_panics() {
        let _ = Bytes::from_mb(1) - Bytes::from_mb(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Bytes::new(512).to_string(), "512B");
        assert_eq!(Bytes::from_kb(4).to_string(), "4.0KB");
        assert_eq!(Bytes::from_mb(190).to_string(), "190.0MB");
    }
}
