// vr-lint::allow(nondeterministic-collection, reason = "fixture: a live allow that suppresses the use below")
use std::collections::HashMap;

// vr-lint::allow(wall-clock, reason = "fixture: nothing here reads a clock, so this allow is stale")
pub fn nothing() {}

// vr-lint::allow(bogus-rule, reason = "fixture: this rule does not exist")
pub fn also_nothing() {}

// vr-lint::allow(float-eq)
pub fn still_nothing() {}

pub type Table = HashMap<u8, u8>;
