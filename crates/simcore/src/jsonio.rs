//! A minimal, dependency-free JSON document model.
//!
//! The build environment has no registry access, so the workspace's `serde`
//! is a no-op stand-in (see `compat/README.md`) and on-disk formats are
//! hand-rolled. This module provides the document model behind the result
//! cache and the sweep telemetry file: a [`Json`] tree, a writer, and a
//! recursive-descent parser.
//!
//! Two properties are load-bearing for the content-addressed result cache:
//!
//! * **Lossless numbers.** Unsigned integers are kept as `u64` (seeds and
//!   job ids exceed 2^53, the exact-integer limit of `f64`), and floats are
//!   written in Rust's shortest round-trip form, so
//!   `parse(write(x)) == x` bit-for-bit for every finite value.
//! * **Deterministic output.** Objects preserve insertion order (they are
//!   association lists, not hash maps), so the same document always
//!   serializes to the same bytes — equal reports produce equal cache
//!   files.
//!
//! Non-finite floats (never produced by a healthy run, but guarded anyway)
//! are encoded as the strings `"NaN"`, `"inf"`, and `"-inf"`; bare numeric
//! lookups never decode them, only [`Json::as_f64`] does.
//!
//! ```
//! use vr_simcore::jsonio::Json;
//!
//! let doc = Json::obj([
//!     ("seed", Json::U64(u64::MAX)),
//!     ("slowdown", Json::F64(1.25)),
//!     ("name", Json::str("SPEC-Trace-3")),
//! ]);
//! let text = doc.render();
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, kept exact (never routed through `f64`).
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Shorthand for a string node.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an object node from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Json)>>(fields: I) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object node.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This node as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// This node as an `f64`. Integers widen; the sentinel strings `"NaN"`,
    /// `"inf"`, and `"-inf"` decode to their non-finite values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// This node as a `bool`, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This node as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This node's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an `F64` node, demoting non-finite values to their sentinel
    /// strings so the output stays valid JSON.
    pub fn f64(x: f64) -> Json {
        if x.is_finite() {
            Json::F64(x)
        } else if x.is_nan() {
            Json::str("NaN")
        } else if x > 0.0 {
            Json::str("inf")
        } else {
            Json::str("-inf")
        }
    }

    /// Serializes the document compactly (no insignificant whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing data after document"));
        }
        Ok(value)
    }
}

/// Writes a float in Rust's shortest round-trip form. The `{:?}` formatter
/// always keeps a `.0` or an exponent on whole values, so the token remains
/// lexically a float and re-parses into `Json::F64`, never `Json::U64`.
fn write_f64(x: f64, out: &mut String) {
    debug_assert!(x.is_finite(), "non-finite floats use Json::f64");
    let _ = write!(out, "{x:?}");
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected {:?}", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected {word}")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    match bytes.get(*pos) {
        Some(b'-') => *pos += 1,
        Some(b'0'..=b'9') => {}
        _ => return Err(err(start, "expected a value")),
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // vr-lint::allow(panic-in-lib, reason = "the scan loop above only accepts ASCII digit, sign, and exponent bytes")
    let token = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII number token");
    if token.is_empty() || token == "-" {
        return Err(err(start, "expected a value"));
    }
    if !is_float && !token.starts_with('-') {
        return token
            .parse::<u64>()
            .map(Json::U64)
            .map_err(|e| err(start, format!("bad integer {token:?}: {e}")));
    }
    token
        .parse::<f64>()
        .map(Json::F64)
        .map_err(|e| err(start, format!("bad number {token:?}: {e}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ASCII \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, format!("bad \\u escape {hex:?}")))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume a whole run of unescaped bytes at once: validating
                // per character would rescan the remaining input each time
                // and turn large documents quadratic.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err(start, "invalid UTF-8"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_node_kind() {
        let doc = Json::obj([
            ("null", Json::Null),
            ("yes", Json::Bool(true)),
            ("no", Json::Bool(false)),
            ("big", Json::U64(u64::MAX)),
            ("zero", Json::U64(0)),
            ("float", Json::F64(0.1)),
            ("whole_float", Json::F64(3.0)),
            ("tiny", Json::F64(5e-324)),
            ("neg", Json::F64(-2.5)),
            ("text", Json::str("hi \"there\"\n\\ tab\t€")),
            (
                "arr",
                Json::Arr(vec![Json::U64(1), Json::F64(2.5), Json::Null]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::obj::<String, _>([])),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Deterministic output: render → parse → render is a fixed point.
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3ff0_0000_0000_0001u64, // 1.0 + ulp
            0x3fb9_9999_9999_999a,    // 0.1
            0x7fef_ffff_ffff_ffff,    // f64::MAX
            0x0000_0000_0000_0001,    // min subnormal
            0x4340_0000_0000_0001,    // > 2^53, odd significand
        ] {
            let x = f64::from_bits(bits);
            let parsed = Json::parse(&Json::F64(x).render()).unwrap();
            assert_eq!(parsed.as_f64().unwrap().to_bits(), bits, "{x}");
        }
    }

    #[test]
    fn whole_floats_stay_floats_and_integers_stay_exact() {
        assert_eq!(Json::parse("3.0").unwrap(), Json::F64(3.0));
        assert_eq!(Json::parse("3").unwrap(), Json::U64(3));
        // 2^53 + 1 is not representable in f64; the u64 path keeps it.
        assert_eq!(
            Json::parse("9007199254740993").unwrap().as_u64(),
            Some(9007199254740993)
        );
    }

    #[test]
    fn non_finite_sentinels() {
        assert_eq!(Json::f64(f64::INFINITY), Json::str("inf"));
        assert_eq!(Json::f64(f64::NEG_INFINITY), Json::str("-inf"));
        assert_eq!(Json::f64(f64::NAN), Json::str("NaN"));
        assert!(Json::str("NaN").as_f64().unwrap().is_nan());
        assert_eq!(Json::str("-inf").as_f64(), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = Json::obj([("a", Json::U64(1)), ("b", Json::str("x"))]);
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::U64(7).as_f64(), Some(7.0));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Arr(vec![]).as_arr(), Some(&[][..]));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "-",
            "\"unterminated",
            "[1] x",
            "nul",
            "+5",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let doc = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\n\" } ").unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("A\n"));
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn control_characters_escape() {
        let s = Json::str("\u{1}");
        let text = s.render();
        assert_eq!(text, "\"\\u0001\"");
        assert_eq!(Json::parse(&text).unwrap(), s);
    }
}
