//! Sweep throughput accounting.
//!
//! The experiment runner measures, per scenario, how many simulator
//! events it replayed and how long that took on the wall clock. This
//! module aggregates those measurements into the figures reported in
//! `BENCH_sweep.json`: total events, aggregate events/second, and the
//! per-run distribution — so regressions in simulator speed show up as a
//! number, not a feeling.

use vr_simcore::stats::{OnlineStats, Summary};

/// Aggregate throughput of a batch of timed simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputSummary {
    /// Number of runs measured (cache hits are excluded by the caller —
    /// a decode is not simulator throughput).
    pub runs: usize,
    /// Total simulator events replayed across all runs.
    pub total_events: u64,
    /// Total wall-clock seconds spent across all runs.
    pub total_wall_secs: f64,
    /// `total_events / total_wall_secs` — the batch-level rate.
    pub aggregate_events_per_sec: f64,
    /// Distribution of per-run events/second.
    pub per_run: Summary,
}

impl ThroughputSummary {
    /// Aggregates `(events, wall_secs)` measurements. Runs with a
    /// non-positive wall time are counted in the totals but excluded from
    /// the per-run rate distribution (a rate over zero time is noise).
    pub fn of_runs<I>(measurements: I) -> ThroughputSummary
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        let mut runs = 0usize;
        let mut total_events = 0u64;
        let mut total_wall_secs = 0.0f64;
        let mut rates = OnlineStats::new();
        for (events, wall_secs) in measurements {
            runs += 1;
            total_events += events;
            total_wall_secs += wall_secs.max(0.0);
            if wall_secs > 0.0 {
                rates.push(events as f64 / wall_secs);
            }
        }
        let aggregate = if total_wall_secs > 0.0 {
            total_events as f64 / total_wall_secs
        } else {
            0.0
        };
        ThroughputSummary {
            runs,
            total_events,
            total_wall_secs,
            aggregate_events_per_sec: aggregate,
            per_run: rates.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_totals_and_rates() {
        let t = ThroughputSummary::of_runs([(1000, 2.0), (3000, 2.0)]);
        assert_eq!(t.runs, 2);
        assert_eq!(t.total_events, 4000);
        assert!((t.total_wall_secs - 4.0).abs() < 1e-12);
        assert!((t.aggregate_events_per_sec - 1000.0).abs() < 1e-9);
        assert_eq!(t.per_run.count, 2);
        assert!((t.per_run.mean - 1000.0).abs() < 1e-9);
        assert!((t.per_run.min - 500.0).abs() < 1e-9);
        assert!((t.per_run.max - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn zero_wall_runs_do_not_poison_rates() {
        let t = ThroughputSummary::of_runs([(500, 0.0), (500, 1.0)]);
        assert_eq!(t.runs, 2);
        assert_eq!(t.total_events, 1000);
        assert_eq!(t.per_run.count, 1);
        assert!((t.aggregate_events_per_sec - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_batch_is_all_zeros() {
        let t = ThroughputSummary::of_runs([]);
        assert_eq!(t.runs, 0);
        assert_eq!(t.aggregate_events_per_sec, 0.0);
        assert_eq!(t.per_run.count, 0);
    }
}
