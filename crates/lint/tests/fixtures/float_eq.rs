pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn is_neg_one(x: f64) -> bool {
    x != -1.0
}

pub fn int_eq_is_fine(n: u64) -> bool {
    n == 17
}
