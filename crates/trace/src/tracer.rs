//! The [`Tracer`] hook: drains world records after every engine event.

use vr_simcore::engine::{EventHook, World};
use vr_simcore::time::SimTime;

use crate::span::{derive_spans, TraceSpan};
use crate::{TraceProfile, TraceRecord, TraceSource};

/// An [`EventHook`] that accumulates a structured trace of the run.
///
/// After each engine event it reads the records the world appended since
/// the previous event (cursor pattern — the world is never mutated) and
/// updates the profiling counters. Call [`Tracer::finish`] when the run
/// ends to derive spans and obtain the exportable [`TraceData`].
#[derive(Debug, Default)]
pub struct Tracer {
    cursor: usize,
    records: Vec<TraceRecord>,
    profile: TraceProfile,
    last_event_time: Option<SimTime>,
}

impl Tracer {
    /// A tracer with no records yet.
    // vr-analyze::allow(panic-path, reason = "delegates to TraceProfile::new, whose histogram shape is a compile-time constant")
    pub fn new() -> Self {
        Tracer {
            cursor: 0,
            records: Vec::new(),
            profile: TraceProfile::new(),
            last_event_time: None,
        }
    }

    /// Records drained so far.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the tracer, deriving spans and packaging the trace.
    /// `final_time` (the engine clock when the run stopped) closes any
    /// still-open spans.
    pub fn finish(self, final_time: SimTime) -> TraceData {
        let spans = derive_spans(&self.records, final_time);
        TraceData {
            final_time,
            records: self.records,
            spans,
            profile: self.profile,
        }
    }
}

impl<W: World + TraceSource> EventHook<W> for Tracer {
    fn after_event(&mut self, world: &W, now: SimTime) {
        self.profile.engine_events += 1;
        if let Some(prev) = self.last_event_time {
            let gap = now.saturating_since(prev);
            self.profile.gap_micros.record(gap.as_micros() as f64);
        }
        self.last_event_time = Some(now);
        let count = world.record_count();
        while self.cursor < count {
            let record = world.record_at(self.cursor);
            *self.profile.kind_counts.entry(record.kind).or_insert(0) += 1;
            self.records.push(record);
            self.cursor += 1;
        }
    }
}

/// The finished trace of one run: records, derived spans, and profile.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceData {
    /// Engine clock when the run stopped (closes open spans).
    pub final_time: SimTime,
    /// Every structured record, in emission order.
    pub records: Vec<TraceRecord>,
    /// Derived intervals, canonically ordered.
    pub spans: Vec<TraceSpan>,
    /// Profiling counters for the run.
    pub profile: TraceProfile,
}

#[cfg(test)]
mod tests {
    use vr_simcore::engine::{Engine, Scheduler};

    use super::*;

    /// A toy world whose only reaction to an event is appending a record.
    #[derive(Default)]
    struct Toy {
        log: Vec<TraceRecord>,
    }

    impl World for Toy {
        type Event = &'static str;
        fn handle(&mut self, sched: &mut Scheduler<'_, &'static str>, kind: &'static str) {
            let time = sched.now();
            self.log.push(TraceRecord {
                time,
                kind,
                job: Some(1),
                node: None,
            });
            if kind == "submitted" {
                sched.schedule_in(vr_simcore::time::SimSpan::from_secs(3), "completed");
            }
        }
    }

    impl TraceSource for Toy {
        fn record_count(&self) -> usize {
            self.log.len()
        }
        fn record_at(&self, i: usize) -> TraceRecord {
            self.log[i]
        }
    }

    #[test]
    fn tracer_drains_records_and_counts_events() {
        let mut world = Toy::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), "submitted");
        let mut tracer = Tracer::new();
        let stats = engine.run_until_with(&mut world, SimTime::MAX, &mut tracer);
        let data = tracer.finish(engine.now());
        assert_eq!(data.profile.engine_events, stats.events_processed);
        assert_eq!(data.records.len(), 2);
        assert_eq!(data.records[0].kind, "submitted");
        assert_eq!(data.records[1].kind, "completed");
        // One engine-event gap of 3 s was observed.
        assert_eq!(data.profile.gap_micros.count(), 1);
        // The derived job span covers submit → complete.
        assert_eq!(
            data.spans,
            vec![TraceSpan {
                name: "job",
                start: SimTime::from_secs(1),
                end: SimTime::from_secs(4),
                job: Some(1),
                node: None,
            }]
        );
    }
}
