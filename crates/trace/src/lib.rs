//! Deterministic observability for the simulator: `vr-trace`.
//!
//! The engine's [`EventHook`] seam delivers the world immutably after every
//! dispatched event. This crate rides that seam with a [`Tracer`] that
//! records structured per-event records (kind, time, job, node), derives
//! spans for job lifecycles and reservation episodes, and accumulates
//! profiling counters — without ever perturbing the simulation it observes.
//!
//! Everything here is a pure function of the event stream: same plan + seed
//! ⇒ byte-identical trace output. The crate is in vr-lint's deterministic
//! set (ordered containers only, no wall clocks, no environment reads);
//! wall-clock rates such as events/sec are computed by the orchestration
//! layer and passed *in* (see [`TraceProfile::to_json`]).
//!
//! Exporters:
//! - [`chrome_trace`] — Chrome trace-event JSON (`chrome://tracing`,
//!   Perfetto). Spans become `ph:"X"` complete events, records become
//!   `ph:"i"` instants.
//! - [`jsonl`] — compact JSON-lines via `vr_simcore::jsonio`: a header
//!   line, then one line per record and per span.
//!
//! [`EventHook`]: vr_simcore::engine::EventHook

#![forbid(unsafe_code)]

mod export;
mod profile;
mod span;
mod tracer;

use vr_simcore::time::SimTime;

pub use export::{chrome_trace, chrome_trace_json, jsonl};
pub use profile::TraceProfile;
pub use span::{derive_spans, TraceSpan};
pub use tracer::{TraceData, Tracer};

/// Version stamped into every exported trace (header line / top-level
/// `schema` field). Bump on any change to record, span, or profile layout.
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// One structured trace record: what happened, when, to whom.
///
/// `kind` is a `&'static str` token (e.g. `"submitted"`, `"placed"`,
/// `"reservation-began"`) so records stay allocation-free and per-kind
/// counters key on pointer-stable strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Static event-kind token.
    pub kind: &'static str,
    /// Job involved, if any.
    pub job: Option<u64>,
    /// Node involved, if any.
    pub node: Option<u64>,
}

/// A world that can expose its event history as [`TraceRecord`]s.
///
/// The tracer uses a cursor over `0..record_count()` — the same pattern the
/// invariant auditor uses over the event log — so each record is read
/// exactly once, in order, without the trace crate depending on the
/// world's concrete log type.
pub trait TraceSource {
    /// Number of records emitted so far (monotonically non-decreasing).
    fn record_count(&self) -> usize;
    /// The `i`-th record, for `i < record_count()`. Records at increasing
    /// indices must have non-decreasing times.
    fn record_at(&self, i: usize) -> TraceRecord;
}
