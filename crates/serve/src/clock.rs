//! The wall-clock injection boundary.
//!
//! The serving tier is the one place in the workspace where real time is
//! load-bearing: request latencies, socket read deadlines, and retry
//! hints are wall-clock quantities, not simulated ones. To keep that from
//! leaking into code that must stay deterministic, this module is the
//! **only** file in `vr-serve` allowed to name [`std::time::Instant`] —
//! `vrecon lint` enforces the boundary (see `WALL_CLOCK_BOUNDARY_FILES`
//! in `vr-lint`). Everything else in the crate handles opaque
//! [`Stopwatch`] values and plain `Duration`s, so a future virtual clock
//! for tests only has to replace this file.

use std::time::{Duration, Instant};

/// A started timer. The rest of the crate can measure elapsed time but
/// cannot mint or compare raw instants.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts a timer at the current wall-clock instant.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Seconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }

    /// Milliseconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_ms(&self) -> f64 {
        self.0.elapsed().as_secs_f64() * 1e3
    }

    /// Whether more than `limit` has elapsed since the start.
    pub fn expired(&self, limit: Duration) -> bool {
        self.0.elapsed() > limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(5));
        assert!(sw.elapsed_secs() > 0.0);
        assert!(sw.elapsed_ms() >= 5.0 * 0.5, "{}", sw.elapsed_ms());
        assert!(sw.expired(Duration::from_millis(1)));
        assert!(!sw.expired(Duration::from_secs(3600)));
    }
}
