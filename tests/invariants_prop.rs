//! Property-based invariants of the whole simulator: random workloads on
//! random small clusters must preserve the accounting identities regardless
//! of policy.

use proptest::prelude::*;
use vrecon_repro::prelude::*;

/// A randomly generated workload description.
#[derive(Debug, Clone)]
struct RandomWorkload {
    seed: u64,
    jobs: usize,
    nodes: usize,
    node_mb: u64,
    max_ws_frac: f64,
    arrival_rate: f64,
    policy: PolicyKind,
}

fn policy_strategy() -> impl Strategy<Value = PolicyKind> {
    prop::sample::select(PolicyKind::ALL.to_vec())
}

fn workload_strategy() -> impl Strategy<Value = RandomWorkload> {
    (
        any::<u64>(),
        2usize..40,
        2usize..10,
        prop::sample::select(vec![64u64, 128, 256]),
        0.1f64..0.9,
        0.05f64..0.5,
        policy_strategy(),
    )
        .prop_map(
            |(seed, jobs, nodes, node_mb, max_ws_frac, arrival_rate, policy)| RandomWorkload {
                seed,
                jobs,
                nodes,
                node_mb,
                max_ws_frac,
                arrival_rate,
                policy,
            },
        )
}

fn build_trace(w: &RandomWorkload) -> Trace {
    let mut rng = SimRng::seed_from(w.seed);
    let arrivals = vrecon_repro::workload::PoissonArrivals {
        rate_per_sec: w.arrival_rate,
        count: w.jobs,
    }
    .generate(&mut rng);
    let jobs = arrivals
        .iter()
        .enumerate()
        .map(|(i, &submit)| {
            let ws = Bytes::from_mb_f64(w.node_mb as f64 * rng.uniform_range(0.02, w.max_ws_frac));
            let work = rng.uniform_range(10.0, 240.0);
            JobSpec {
                id: JobId(i as u64),
                name: format!("rand-{i}"),
                class: JobClass::CpuIntensive,
                submit,
                cpu_work: SimSpan::from_secs_f64(work),
                memory: if rng.uniform() < 0.5 {
                    MemoryProfile::constant(ws)
                } else {
                    MemoryProfile::from_phases(vec![
                        (SimSpan::from_secs_f64(work * 0.2), ws.mul_f64(0.3)),
                        (SimSpan::MAX, ws),
                    ])
                    .expect("increasing boundaries")
                },
                io_rate: 0.0,
                malleable: None,
            }
        })
        .collect();
    Trace {
        name: format!("prop-{}", w.seed),
        jobs,
    }
}

fn run(w: &RandomWorkload) -> RunReport {
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(w.nodes);
    for node in &mut cluster.nodes {
        node.memory = vrecon_repro::cluster::MemoryParams::with_capacity(
            Bytes::from_mb(w.node_mb),
            Bytes::from_mb(w.node_mb),
        );
    }
    let trace = build_trace(w);
    trace.validate().expect("generated trace is valid");
    Simulation::new(SimConfig::new(cluster, w.policy).with_seed(w.seed ^ 0xabcd)).run(&trace)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Every job completes and its wall-clock identity holds.
    #[test]
    fn jobs_complete_and_breakdowns_are_exact(w in workload_strategy()) {
        let report = run(&w);
        prop_assert!(report.all_completed(), "{} unfinished under {}", report.unfinished_jobs, w.policy);
        prop_assert_eq!(report.summary.jobs, w.jobs);
        prop_assert!(report.check_breakdown_identity(0.05).is_ok());
    }

    /// No breakdown component is ever negative and slowdowns are >= ~1.
    #[test]
    fn components_are_nonnegative(w in workload_strategy()) {
        let report = run(&w);
        for job in &report.jobs {
            let b = &job.breakdown;
            prop_assert!(b.cpu >= 0.0 && b.page >= 0.0 && b.queue >= -1e-9 && b.migration >= 0.0,
                "negative component: {b:?}");
            prop_assert!(job.slowdown() >= 1.0 - 1e-6, "slowdown {} < 1", job.slowdown());
        }
    }

    /// Reservation accounting always balances.
    #[test]
    fn reservations_balance(w in workload_strategy()) {
        let report = run(&w);
        let r = report.reservations;
        prop_assert_eq!(r.started, r.released_after_service + r.released_unused + r.timed_out);
        if w.policy != PolicyKind::VReconfiguration {
            prop_assert_eq!(r.started, 0);
        }
    }

    /// Gauges never go negative and idle memory never exceeds cluster total.
    #[test]
    fn gauges_stay_in_range(w in workload_strategy()) {
        let report = run(&w);
        let total_mb = (w.nodes as u64 * w.node_mb) as f64;
        for (_, idle) in report.gauges.physical_idle_memory_mb.iter() {
            prop_assert!((0.0..=total_mb + 1e-6).contains(&idle), "idle {idle} of {total_mb}");
        }
        for (_, skew) in report.gauges.balance_skew.iter() {
            prop_assert!(skew >= 0.0);
        }
    }
}
