//! A minimal hand-rolled Rust lexer.
//!
//! The container is offline, so `syn`/`proc-macro2` are unavailable; like
//! `vr_simcore::jsonio`, the infrastructure is written from scratch. The
//! lexer is deliberately *token-level*: it does not parse items or types,
//! but it does get the hard tokenisation cases right, because a rule that
//! fires inside a string literal or a comment is worse than no rule at all:
//!
//! * strings with escapes (`"a \" b"`), byte strings, C strings;
//! * raw strings with any number of hashes (`r#"..."#`, `br##"..."##`);
//! * char literals vs lifetimes (`'a'` vs `'a`, `'\''`, `'\u{7D}'`);
//! * nested block comments (`/* outer /* inner */ still out */`);
//! * raw identifiers (`r#type`);
//! * float vs integer literals vs ranges and method calls
//!   (`1.5`, `1.`, `1..2`, `1.max(2)`, `1e9`, `2f64`).
//!
//! Comments are preserved (with positions) so the rule engine can parse
//! `vr-lint::allow(...)` suppression directives out of them.

/// What a token is, as far as the rule engine needs to know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `as`, `unwrap`). Raw
    /// identifiers are normalised: `r#type` lexes as `type`.
    Ident,
    /// A lifetime, without the quote: `'a` lexes as `a`.
    Lifetime,
    /// A char or byte literal: `'x'`, `b'\n'`.
    Char,
    /// Any string literal flavour: `"s"`, `r#"s"#`, `b"s"`, `c"s"`.
    Str,
    /// An integer literal, including suffixed and based forms.
    Int,
    /// A float literal: contains `.`, an exponent, or an `f32`/`f64` suffix.
    Float,
    /// Punctuation. Multi-char operators relevant to the rules are joined
    /// into one token: `::`, `==`, `!=`, `<=`, `>=`, `->`, `=>`.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// `true` if this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// `true` if this is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Body text, without the `//` / `/*` delimiters.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = *self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Bumps while `pred` holds, appending to `out`.
    fn take_while(&mut self, out: &mut String, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek(0) {
            if !pred(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never fails: malformed input
/// (e.g. an unterminated string) produces a best-effort token ending at EOF.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            cur.take_while(&mut text, |c| c != '\n');
            out.comments.push(Comment { text, line, col });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut text = String::new();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                        text.push_str("/*");
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth > 0 {
                            text.push_str("*/");
                        }
                    }
                    (Some(_), _) => {
                        let ch = cur.bump().unwrap_or('\0');
                        text.push(ch);
                    }
                    (None, _) => break, // unterminated
                }
            }
            out.comments.push(Comment { text, line, col });
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        // Strings, raw strings, raw identifiers, plain identifiers.
        if is_ident_start(c) {
            if let Some(tok) = try_lex_string_prefix(&mut cur, line, col) {
                out.tokens.push(tok);
                continue;
            }
            let mut text = String::new();
            // Raw identifier r#foo: skip the prefix, keep the name.
            if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump();
                cur.bump();
            }
            cur.take_while(&mut text, is_ident_continue);
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
                col,
            });
            continue;
        }
        if c == '"' {
            let text = lex_plain_string(&mut cur);
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
                col,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let tok = lex_number(&mut cur, line, col);
            out.tokens.push(tok);
            continue;
        }
        // Punctuation, joining the few multi-char operators the rules need.
        cur.bump();
        let joined = match (c, cur.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('=', Some('=')) => Some("=="),
            ('!', Some('=')) => Some("!="),
            ('<', Some('=')) => Some("<="),
            ('>', Some('=')) => Some(">="),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            _ => None,
        };
        let text = match joined {
            Some(two) => {
                cur.bump();
                two.to_owned()
            }
            None => c.to_string(),
        };
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text,
            line,
            col,
        });
    }
    out
}

/// Lexes from a leading `'`: either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // the opening quote
    match cur.peek(0) {
        // Escape: definitely a char literal. Consume the backslash and the
        // escaped char (which may itself be a quote), then run to the
        // terminating quote — escapes like \u{7D} contain no quotes.
        Some('\\') => {
            let mut text = String::from("\\");
            cur.bump();
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            while let Some(c) = cur.peek(0) {
                cur.bump();
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            out.tokens.push(Tok {
                kind: TokKind::Char,
                text,
                line,
                col,
            });
        }
        // `'a'` is a char; `'a` (no closing quote right after) a lifetime.
        Some(c) if is_ident_continue(c) => {
            if cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: c.to_string(),
                    line,
                    col,
                });
            } else {
                let mut text = String::new();
                cur.take_while(&mut text, is_ident_continue);
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                    col,
                });
            }
        }
        // A non-identifier char like '(' or '€': char literal.
        Some(c) => {
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Tok {
                kind: TokKind::Char,
                text: c.to_string(),
                line,
                col,
            });
        }
        None => {}
    }
}

/// If the cursor sits on a string-literal prefix (`r"`, `r#"`, `b"`, `b'`,
/// `br"`, `c"`, `cr#"` ...), lexes the whole literal and returns its token.
fn try_lex_string_prefix(cur: &mut Cursor, line: u32, col: u32) -> Option<Tok> {
    let c0 = cur.peek(0)?;
    // How many prefix chars before the raw-marker / quote?
    let (skip, raw) = match c0 {
        'r' => (1, true),
        'b' | 'c' => match cur.peek(1) {
            Some('"') => (1, false),
            Some('\'') if c0 == 'b' => {
                // Byte char literal b'x' / b'\n'.
                cur.bump(); // b
                let start = Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                    col,
                };
                let mut lexed = Lexed::default();
                lex_quote(cur, &mut lexed, line, col);
                return Some(lexed.tokens.pop().unwrap_or(start));
            }
            Some('r') => (2, true),
            _ => return None,
        },
        _ => return None,
    };
    // After the prefix: `#`* then `"` for raw; `"` for cooked.
    let mut hashes = 0usize;
    while cur.peek(skip + hashes) == Some('#') {
        hashes += 1;
    }
    if raw && hashes == 0 && cur.peek(skip) != Some('"') {
        return None; // plain identifier starting with r/br/cr
    }
    if !raw && hashes > 0 {
        return None;
    }
    if cur.peek(skip + hashes) != Some('"') {
        return None; // e.g. raw identifier r#foo — handled by the caller
    }
    for _ in 0..skip + hashes + 1 {
        cur.bump();
    }
    let mut text = String::new();
    if raw {
        // Scan for `"` followed by `hashes` hashes.
        'scan: while let Some(c) = cur.peek(0) {
            if c == '"' {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek(1 + k) != Some('#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..hashes + 1 {
                        cur.bump();
                    }
                    break 'scan;
                }
            }
            text.push(c);
            cur.bump();
        }
    } else {
        text = lex_string_body(cur);
    }
    Some(Tok {
        kind: TokKind::Str,
        text,
        line,
        col,
    })
}

/// Lexes a cooked string starting at its opening quote.
fn lex_plain_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    lex_string_body(cur)
}

/// Lexes a cooked string body after the opening quote, handling escapes.
fn lex_string_body(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '"' => {
                cur.bump();
                break;
            }
            '\\' => {
                text.push(c);
                cur.bump();
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => {
                text.push(c);
                cur.bump();
            }
        }
    }
    text
}

/// Lexes a numeric literal starting at an ASCII digit.
fn lex_number(cur: &mut Cursor, line: u32, col: u32) -> Tok {
    let mut text = String::new();
    let mut float = false;
    // Based integers: 0x / 0o / 0b — no float forms.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        text.push(cur.bump().unwrap_or('0'));
        text.push(cur.bump().unwrap_or('x'));
        cur.take_while(&mut text, is_ident_continue);
        return Tok {
            kind: TokKind::Int,
            text,
            line,
            col,
        };
    }
    cur.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
    // A `.` continues the literal only when it cannot be a range (`1..2`)
    // or a method/field access (`1.max(2)`).
    if cur.peek(0) == Some('.') {
        match cur.peek(1) {
            Some(c) if c.is_ascii_digit() => {
                float = true;
                text.push('.');
                cur.bump();
                cur.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
            }
            Some('.') => {}
            Some(c) if is_ident_start(c) => {}
            _ => {
                // `1.` at the end of an expression is a float literal.
                float = true;
                text.push('.');
                cur.bump();
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let after_sign = matches!(cur.peek(1), Some('+' | '-'));
        let digit_at = if after_sign { 2 } else { 1 };
        if cur.peek(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            text.push(cur.bump().unwrap_or('e'));
            if after_sign {
                text.push(cur.bump().unwrap_or('+'));
            }
            cur.take_while(&mut text, |c| c.is_ascii_digit() || c == '_');
        }
    }
    // Suffix (u32, f64, usize ...).
    let mut suffix = String::new();
    cur.take_while(&mut suffix, is_ident_continue);
    if suffix.starts_with('f') {
        float = true;
    }
    text.push_str(&suffix);
    Tok {
        kind: if float { TokKind::Float } else { TokKind::Int },
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // Nothing inside a string may surface as an identifier.
        assert_eq!(idents(r#"let s = "HashMap :: unwrap // x";"#), ["let", "s"]);
        assert_eq!(idents(r#"let s = "a \" HashMap";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"contains " quote and HashMap"#; let t = 1;"###;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
        let src = r###"let s = r##"nested "# marker"##; HashMap"###;
        assert_eq!(idents(src), ["let", "s", "HashMap"]);
        // Zero-hash raw string.
        assert_eq!(idents(r#"r"no \ escapes HashMap" x"#), ["x"]);
    }

    #[test]
    fn byte_and_c_strings() {
        assert_eq!(idents(r##"b"HashMap" br#"HashMap"# c"HashMap" x"##), ["x"]);
        let toks = kinds("b'a' b'\\n' y");
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1].0, TokKind::Char);
        assert_eq!(toks[2], (TokKind::Ident, "y".to_owned()));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("a /* x /* deeper */ still comment */ b");
        let names: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("deeper"));
    }

    #[test]
    fn unterminated_block_comment_ends_at_eof() {
        let lexed = lex("a /* open forever");
        let names: Vec<_> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(names, ["a"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'a 'static '_ '_' '\\'' '\\u{7D}' '(' x");
        assert_eq!(
            toks,
            vec![
                (TokKind::Char, "a".to_owned()),
                (TokKind::Lifetime, "a".to_owned()),
                (TokKind::Lifetime, "static".to_owned()),
                (TokKind::Lifetime, "_".to_owned()),
                (TokKind::Char, "_".to_owned()),
                (TokKind::Char, "\\'".to_owned()),
                (TokKind::Char, "\\u{7D}".to_owned()),
                (TokKind::Char, "(".to_owned()),
                (TokKind::Ident, "x".to_owned()),
            ]
        );
    }

    #[test]
    fn lifetime_in_generics() {
        let toks = kinds("fn f<'a>(x: &'a str) {}");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
    }

    #[test]
    fn raw_identifiers_normalise() {
        assert_eq!(idents("r#type r#fn regular"), ["type", "fn", "regular"]);
    }

    #[test]
    fn numbers_ints_floats_ranges_methods() {
        assert_eq!(
            kinds("1 1.5 1. 1..2 1.max(2) 1e9 1E-3 2f64 3usize 0xff 1_000.5"),
            vec![
                (TokKind::Int, "1".to_owned()),
                (TokKind::Float, "1.5".to_owned()),
                (TokKind::Float, "1.".to_owned()),
                (TokKind::Int, "1".to_owned()),
                (TokKind::Punct, ".".to_owned()),
                (TokKind::Punct, ".".to_owned()),
                (TokKind::Int, "2".to_owned()),
                (TokKind::Int, "1".to_owned()),
                (TokKind::Punct, ".".to_owned()),
                (TokKind::Ident, "max".to_owned()),
                (TokKind::Punct, "(".to_owned()),
                (TokKind::Int, "2".to_owned()),
                (TokKind::Punct, ")".to_owned()),
                (TokKind::Float, "1e9".to_owned()),
                (TokKind::Float, "1E-3".to_owned()),
                (TokKind::Float, "2f64".to_owned()),
                (TokKind::Int, "3usize".to_owned()),
                (TokKind::Int, "0xff".to_owned()),
                (TokKind::Float, "1_000.5".to_owned()),
            ]
        );
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a == b != c :: d -> e => f <= g >= h = i ! j");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "->", "=>", "<=", ">=", "=", "!"]);
    }

    #[test]
    fn positions_are_one_based_and_track_lines() {
        let lexed = lex("ab\n  cd \"s\"\n'x'");
        let t = &lexed.tokens;
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
        assert_eq!((t[2].line, t[2].col), (2, 6));
        assert_eq!((t[3].line, t[3].col), (3, 1));
    }

    #[test]
    fn comment_positions() {
        let lexed = lex("x // trailing note\n/* block */ y");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].col, 3);
        assert_eq!(lexed.comments[0].text, " trailing note");
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn doc_comments_are_comments() {
        let lexed = lex("/// uses HashMap internally\nfn f() {}");
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.is_ident("HashMap"))
                .count(),
            0
        );
        assert_eq!(lexed.comments.len(), 1);
    }

    #[test]
    fn string_with_comment_markers_inside() {
        assert_eq!(
            idents(r#"let s = "// not a comment"; x"#),
            ["let", "s", "x"]
        );
        let lexed = lex(r#""/* not a block */" y"#);
        assert!(lexed.comments.is_empty());
        assert_eq!(lexed.tokens[1].text, "y");
    }
}
