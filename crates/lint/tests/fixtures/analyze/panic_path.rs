/// Integer division.
///
/// # Panics
///
/// Panics when `b` is zero.
pub fn checked_div(a: u64, b: u64) -> u64 {
    assert!(b != 0);
    a / b
}

pub fn halve(a: u64) -> u64 {
    checked_div(a, 2)
}

/// Carries the contract.
///
/// # Panics
///
/// See [`checked_div`].
pub fn documented_halve(a: u64) -> u64 {
    checked_div(a, 2)
}
