//! `engine_bench` — engine micro-bench suite behind `BENCH_engine.json`.
//!
//! Replays the five `vrecon trace spec --level N` scenarios (cluster 1,
//! V-Reconfiguration, scheduler seed 7, trace seed 42 — identical to the
//! CLI defaults) and measures raw engine throughput: each level is timed
//! as the best of three untraced [`Simulation::run`] calls, then traced
//! once to collect the deterministic per-kind record counts and scheduler
//! counters.
//!
//! Modes:
//!
//! * `engine_bench --out BENCH_engine.json` — measure and write the JSON
//!   artifact (the committed perf baseline).
//! * `engine_bench --check BENCH_engine.json [--tolerance 0.10]` — measure
//!   again and gate against a committed baseline: deterministic fields
//!   (engine events, per-kind counts, blocking detections) must match
//!   *exactly*; `events_per_sec` may not regress by more than the
//!   tolerance. Exits non-zero on any violation — this is the CI
//!   `bench-gate` entry point.

use std::time::Instant;

use vr_cluster::job::MalleableSpec;
use vr_simcore::jsonio::Json;
use vr_simcore::rng::SimRng;
use vr_workload::trace::{spec_trace_scaled, Trace, TraceLevel, SPEC_LIFETIME_SCALE};
use vrecon::config::SimConfig;
use vrecon::plugin::ParamBag;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

use vr_bench::{SIM_SEED, TRACE_SEED};

/// Schema version of `BENCH_engine.json`.
const SCHEMA: u64 = 1;
/// Timed repetitions per level; the best (shortest) wall time wins, which
/// filters scheduler noise without averaging in cold-cache outliers.
const REPS: usize = 3;
/// Default allowed relative `events_per_sec` regression in `--check` mode.
const DEFAULT_TOLERANCE: f64 = 0.10;

const LEVELS: [(u64, TraceLevel); 5] = [
    (1, TraceLevel::Light),
    (2, TraceLevel::Moderate),
    (3, TraceLevel::Normal),
    (4, TraceLevel::ModeratelyIntensive),
    (5, TraceLevel::HighlyIntensive),
];

/// One bench row: the five historical V-R levels plus two ablation rows
/// for the plugin families (both replay the Normal trace so their numbers
/// are comparable against level 3).
struct BenchRow {
    no: u64,
    level: TraceLevel,
    policy: PolicyKind,
    params: ParamBag,
    /// Give every other job a `1..=2` malleable width range so the resize
    /// hook has material to work with.
    annotate_malleable: bool,
}

fn rows() -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = LEVELS
        .iter()
        .map(|&(no, level)| BenchRow {
            no,
            level,
            policy: PolicyKind::VReconfiguration,
            params: ParamBag::new(),
            annotate_malleable: false,
        })
        .collect();
    rows.push(BenchRow {
        no: 6,
        level: TraceLevel::Normal,
        policy: PolicyKind::Malleable,
        params: ParamBag::new().with("max_step", 1u32),
        annotate_malleable: true,
    });
    rows.push(BenchRow {
        no: 7,
        level: TraceLevel::Normal,
        policy: PolicyKind::Fractional,
        params: ParamBag::new().with("oversub", 1.5),
        annotate_malleable: false,
    });
    rows
}

fn scenario(row: &BenchRow) -> (SimConfig, Trace) {
    let mut trace = spec_trace_scaled(
        row.level,
        &mut SimRng::seed_from(TRACE_SEED),
        SPEC_LIFETIME_SCALE,
    );
    if row.annotate_malleable {
        for job in trace.jobs.iter_mut().step_by(2) {
            job.malleable = Some(MalleableSpec {
                min_width: 1,
                max_width: 2,
            });
        }
    }
    let cluster = vr_cluster::params::ClusterParams::cluster1();
    let config = SimConfig::new(cluster, row.policy)
        .with_policy_params(row.params.clone())
        .with_seed(SIM_SEED);
    (config, trace)
}

/// One level's measurements.
struct LevelResult {
    level: u64,
    policy: String,
    trace_name: String,
    engine_events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    blocking_detections: u64,
    kinds: Vec<(String, u64)>,
}

fn measure(row: &BenchRow) -> LevelResult {
    let (config, trace) = scenario(row);
    let sim = Simulation::new(config);

    // Untraced timed runs: the throughput number excludes tracer overhead
    // so it measures the engine hot path itself.
    let mut best = f64::INFINITY;
    let mut engine_events = 0;
    for _ in 0..REPS {
        let started = Instant::now();
        let report = sim.run(&trace);
        let elapsed = started.elapsed().as_secs_f64();
        engine_events = report.run_stats.events_processed;
        if elapsed < best {
            best = elapsed;
        }
    }

    // One traced run for the deterministic record counts.
    let (report, data) = sim.run_traced(&trace);
    assert_eq!(
        report.run_stats.events_processed, engine_events,
        "traced and untraced runs disagree on event count"
    );

    let events_per_sec = if best > 0.0 {
        engine_events as f64 / best
    } else {
        0.0
    };
    LevelResult {
        level: row.no,
        policy: row.policy.to_string(),
        trace_name: trace.name.clone(),
        engine_events,
        wall_secs: best,
        events_per_sec,
        blocking_detections: report.counters.blocking_detections,
        kinds: data
            .profile
            .kind_counts
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
    }
}

fn to_json(results: &[LevelResult]) -> Json {
    Json::obj([
        ("schema", Json::U64(SCHEMA)),
        (
            "scenario",
            Json::obj([
                ("group", Json::str("spec")),
                ("cluster", Json::str("cluster1")),
                ("seed", Json::U64(SIM_SEED)),
                ("trace_seed", Json::U64(TRACE_SEED)),
            ]),
        ),
        (
            "traces",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("level", Json::U64(r.level)),
                            ("policy", Json::str(r.policy.clone())),
                            ("trace", Json::str(r.trace_name.clone())),
                            ("engine_events", Json::U64(r.engine_events)),
                            ("wall_secs", Json::f64(r.wall_secs)),
                            ("events_per_sec", Json::f64(r.events_per_sec)),
                            ("blocking_detections", Json::U64(r.blocking_detections)),
                            (
                                "kinds",
                                Json::obj(r.kinds.iter().map(|(k, v)| (k.clone(), Json::U64(*v)))),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Compares fresh results against a parsed baseline document. Returns the
/// list of violations (empty = gate passes).
fn check(results: &[LevelResult], baseline: &Json, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(traces) = baseline.get("traces").and_then(Json::as_arr) else {
        return vec!["baseline has no `traces` array".to_owned()];
    };
    if traces.len() != results.len() {
        problems.push(format!(
            "baseline has {} traces, measured {}",
            traces.len(),
            results.len()
        ));
    }
    for r in results {
        let Some(base) = traces
            .iter()
            .find(|t| t.get("level").and_then(Json::as_u64) == Some(r.level))
        else {
            problems.push(format!("level {}: missing from baseline", r.level));
            continue;
        };
        let exact_u64 = |field: &str, got: u64, problems: &mut Vec<String>| match base
            .get(field)
            .and_then(Json::as_u64)
        {
            Some(want) if want == got => {}
            Some(want) => problems.push(format!(
                "level {}: {field} changed: baseline {want}, measured {got}",
                r.level
            )),
            None => problems.push(format!("level {}: baseline lacks {field}", r.level)),
        };
        exact_u64("engine_events", r.engine_events, &mut problems);
        exact_u64("blocking_detections", r.blocking_detections, &mut problems);
        match base.get("kinds") {
            Some(Json::Obj(base_kinds)) => {
                let fresh: Vec<(String, u64)> = r.kinds.clone();
                let base_kinds: Vec<(String, u64)> = base_kinds
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                    .collect();
                if fresh != base_kinds {
                    problems.push(format!(
                        "level {}: per-kind record counts changed: baseline {:?}, measured {:?}",
                        r.level, base_kinds, fresh
                    ));
                }
            }
            _ => problems.push(format!("level {}: baseline lacks kinds object", r.level)),
        }
        match base.get("events_per_sec").and_then(Json::as_f64) {
            Some(base_rate) => {
                let floor = base_rate * (1.0 - tolerance);
                if r.events_per_sec < floor {
                    problems.push(format!(
                        "level {}: throughput regressed beyond {:.0}%: baseline {:.0} ev/s, \
                         measured {:.0} ev/s (floor {:.0})",
                        r.level,
                        tolerance * 100.0,
                        base_rate,
                        r.events_per_sec,
                        floor
                    ));
                }
            }
            None => problems.push(format!("level {}: baseline lacks events_per_sec", r.level)),
        }
    }
    problems
}

struct Cli {
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out: None,
        check: None,
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => cli.out = args.next(),
            "--check" => cli.check = args.next(),
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => cli.tolerance = t,
                _ => die("--tolerance requires a value in [0, 1)"),
            },
            other => die(&format!(
                "unknown argument {other}; supported: --out FILE, --check FILE, --tolerance T"
            )),
        }
    }
    if cli.out.is_none() && cli.check.is_none() {
        cli.out = Some("BENCH_engine.json".to_owned());
    }
    cli
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn main() {
    let cli = parse_cli();
    let mut results = Vec::new();
    for row in rows() {
        let r = measure(&row);
        eprintln!(
            "level {} ({} under {}): {} events in {:.3}s = {:.0} events/sec, {} blocking detections",
            r.level,
            r.trace_name,
            r.policy,
            r.engine_events,
            r.wall_secs,
            r.events_per_sec,
            r.blocking_detections
        );
        results.push(r);
    }

    if let Some(path) = &cli.out {
        let mut text = to_json(&results).render();
        text.push('\n');
        if let Err(e) = std::fs::write(path, &text) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
        };
        let baseline = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => die(&format!("baseline {path} is not valid JSON: {e}")),
        };
        let problems = check(&results, &baseline, cli.tolerance);
        if problems.is_empty() {
            println!(
                "bench gate passed: {} levels within {:.0}% of {path}",
                results.len(),
                cli.tolerance * 100.0
            );
        } else {
            for p in &problems {
                eprintln!("bench gate: {p}");
            }
            eprintln!("bench gate FAILED: {} violation(s)", problems.len());
            std::process::exit(1);
        }
    }
}
