//! The discrete-event engine loop.
//!
//! A simulation is a [`World`] — a state machine that reacts to events — plus
//! an [`Engine`] that owns the clock and the pending-event set and feeds the
//! world one event at a time. Worlds schedule follow-up events through the
//! [`Scheduler`] they are handed on every callback.
//!
//! ```
//! use vr_simcore::engine::{Engine, Scheduler, World};
//! use vr_simcore::time::{SimSpan, SimTime};
//!
//! /// Counts ticks until told to stop.
//! struct Ticker {
//!     ticks: u32,
//! }
//!
//! impl World for Ticker {
//!     type Event = ();
//!
//!     fn handle(&mut self, sched: &mut Scheduler<'_, ()>, _ev: ()) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             sched.schedule_in(SimSpan::from_secs(1), ());
//!         }
//!     }
//! }
//!
//! let mut world = Ticker { ticks: 0 };
//! let mut engine = Engine::new();
//! engine.scheduler().schedule_at(SimTime::ZERO, ());
//! let stats = engine.run_until(&mut world, SimTime::MAX);
//! assert_eq!(world.ticks, 5);
//! assert_eq!(stats.events_processed, 5);
//! assert_eq!(engine.now(), SimTime::from_secs(4));
//! ```

use serde::{Deserialize, Serialize};

use crate::event::{EventHandle, EventQueue};
use crate::time::{SimSpan, SimTime};

/// A simulation state machine driven by an [`Engine`].
pub trait World {
    /// The event type the world reacts to.
    type Event;

    /// Reacts to one event. `sched.now()` is the event's firing time.
    fn handle(&mut self, sched: &mut Scheduler<'_, Self::Event>, event: Self::Event);
}

/// An observer invoked after every dispatched event.
///
/// Hooks see the world *after* it reacted, making them the natural seam for
/// invariant auditors, tracers, and other cross-cutting observers that must
/// not perturb the simulation itself (the world is handed out immutably).
/// The no-op hook is `()`, which [`Engine::run_until`] uses.
pub trait EventHook<W: World> {
    /// Called once per dispatched event, after `world` handled it. `now` is
    /// the event's firing time.
    fn after_event(&mut self, world: &W, now: SimTime);
}

impl<W: World> EventHook<W> for () {
    fn after_event(&mut self, _world: &W, _now: SimTime) {}
}

impl<W: World, H: EventHook<W> + ?Sized> EventHook<W> for &mut H {
    fn after_event(&mut self, world: &W, now: SimTime) {
        (**self).after_event(world, now);
    }
}

/// `None` is a no-op observer, so optional hooks (an auditor that is only
/// sometimes enabled, a tracer that is only sometimes requested) compose
/// without a combinatorial match over which ones are present.
impl<W: World, H: EventHook<W>> EventHook<W> for Option<H> {
    fn after_event(&mut self, world: &W, now: SimTime) {
        if let Some(hook) = self {
            hook.after_event(world, now);
        }
    }
}

impl<W: World, A: EventHook<W>, B: EventHook<W>> EventHook<W> for (A, B) {
    fn after_event(&mut self, world: &W, now: SimTime) {
        self.0.after_event(world, now);
        self.1.after_event(world, now);
    }
}

impl<W: World, A: EventHook<W>, B: EventHook<W>, C: EventHook<W>> EventHook<W> for (A, B, C) {
    fn after_event(&mut self, world: &W, now: SimTime) {
        self.0.after_event(world, now);
        self.1.after_event(world, now);
        self.2.after_event(world, now);
    }
}

/// A runtime-sized chain of hooks behind one [`EventHook`] — the vec
/// counterpart to the tuple impls, for observer sets only known at runtime.
///
/// Hooks run in insertion order after every dispatched event; each sees the
/// world immutably, so earlier hooks cannot perturb what later hooks (or
/// the simulation itself) observe.
#[derive(Default)]
pub struct HookChain<'h, W: World> {
    hooks: Vec<&'h mut dyn EventHook<W>>,
}

impl<'h, W: World> HookChain<'h, W> {
    /// An empty chain (a no-op observer until hooks are pushed).
    pub fn new() -> Self {
        HookChain { hooks: Vec::new() }
    }

    /// Appends a hook; it runs after every hook already in the chain.
    pub fn push(&mut self, hook: &'h mut dyn EventHook<W>) {
        self.hooks.push(hook);
    }

    /// Number of chained hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// `true` if no hooks are chained.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl<W: World> EventHook<W> for HookChain<'_, W> {
    fn after_event(&mut self, world: &W, now: SimTime) {
        for hook in &mut self.hooks {
            hook.after_event(world, now);
        }
    }
}

/// Scheduling access handed to a [`World`] during event handling (and
/// available from the engine between runs to seed initial events).
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — discrete-event simulations must
    /// never schedule backwards.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventHandle {
        assert!(
            time >= self.now,
            "cannot schedule into the past: now={} requested={}",
            self.now,
            time
        );
        self.queue.schedule(time, event)
    }

    /// Schedules `event` after a relative delay.
    ///
    /// # Panics
    ///
    /// Panics if `self.now + delay` overflows the clock — routed through
    /// [`Scheduler::schedule_at`] so both entry points share the
    /// cannot-schedule-into-the-past guard.
    pub fn schedule_in(&mut self, delay: SimSpan, event: E) -> EventHandle {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Returns `true` if it was still
    /// pending.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// The number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Counters describing one [`Engine::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RunStats {
    /// Events dispatched to the world.
    pub events_processed: u64,
    /// Clock value when the run stopped.
    pub final_time: SimTime,
    /// `true` if the run stopped because the queue drained (rather than the
    /// horizon being reached).
    pub drained: bool,
}

/// Owns the simulation clock and the pending-event set and drives a
/// [`World`].
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no pending
    /// events.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// A scheduler for seeding events outside of a world callback.
    pub fn scheduler(&mut self) -> Scheduler<'_, E> {
        Scheduler {
            now: self.now,
            queue: &mut self.queue,
        }
    }

    /// Dispatches the next event, advancing the clock to its firing time.
    ///
    /// Returns `false` if no event was pending.
    pub fn step<W: World<Event = E>>(&mut self, world: &mut W) -> bool {
        match self.queue.pop() {
            Some((time, event)) => {
                debug_assert!(time >= self.now, "event queue went backwards");
                self.now = time;
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                world.handle(&mut sched, event);
                true
            }
            None => false,
        }
    }

    /// Runs until the queue drains or the next event would fire strictly
    /// after `horizon`.
    ///
    /// Events firing exactly at `horizon` are processed. The clock never
    /// advances past the last processed event.
    pub fn run_until<W: World<Event = E>>(&mut self, world: &mut W, horizon: SimTime) -> RunStats {
        self.run_until_with(world, horizon, &mut ())
    }

    /// Like [`Engine::run_until`], but invokes `hook` after every dispatched
    /// event (see [`EventHook`]).
    pub fn run_until_with<W, H>(
        &mut self,
        world: &mut W,
        horizon: SimTime,
        hook: &mut H,
    ) -> RunStats
    where
        W: World<Event = E>,
        H: EventHook<W>,
    {
        let mut stats = RunStats::default();
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= horizon => {
                    self.step(world);
                    hook.after_event(world, self.now);
                    stats.events_processed += 1;
                }
                Some(_) => break,
                None => {
                    stats.drained = true;
                    break;
                }
            }
        }
        stats.final_time = self.now;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Ping,
        Pong,
    }

    #[derive(Default)]
    struct Recorder {
        log: Vec<(SimTime, Ev)>,
        respawn: bool,
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<'_, Ev>, event: Ev) {
            self.log.push((sched.now(), event));
            if self.respawn && event == Ev::Ping {
                sched.schedule_in(SimSpan::from_secs(1), Ev::Pong);
            }
        }
    }

    #[test]
    fn runs_events_in_order_and_advances_clock() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(2), Ev::Pong);
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        let stats = engine.run_until(&mut world, SimTime::MAX);
        assert_eq!(
            world.log,
            vec![
                (SimTime::from_secs(1), Ev::Ping),
                (SimTime::from_secs(2), Ev::Pong)
            ]
        );
        assert_eq!(stats.events_processed, 2);
        assert!(stats.drained);
        assert_eq!(stats.final_time, SimTime::from_secs(2));
    }

    #[test]
    fn horizon_is_inclusive() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(5), Ev::Ping);
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(6), Ev::Pong);
        let stats = engine.run_until(&mut world, SimTime::from_secs(5));
        assert_eq!(world.log, vec![(SimTime::from_secs(5), Ev::Ping)]);
        assert!(!stats.drained);
        // The event after the horizon is still pending.
        assert_eq!(engine.scheduler().pending(), 1);
    }

    #[test]
    fn world_can_schedule_follow_ups() {
        let mut world = Recorder {
            respawn: true,
            ..Recorder::default()
        };
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        engine.run_until(&mut world, SimTime::MAX);
        assert_eq!(
            world.log,
            vec![
                (SimTime::from_secs(1), Ev::Ping),
                (SimTime::from_secs(2), Ev::Pong)
            ]
        );
    }

    #[test]
    fn step_returns_false_when_empty() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        assert!(!engine.step(&mut world));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(5), Ev::Ping);
        engine.run_until(&mut world, SimTime::MAX);
        // Clock is now at 5s; scheduling at 1s must panic.
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Pong);
    }

    #[test]
    fn hook_observes_every_event_after_the_world_reacted() {
        struct Spy {
            seen: Vec<(SimTime, usize)>,
        }
        impl EventHook<Recorder> for Spy {
            fn after_event(&mut self, world: &Recorder, now: SimTime) {
                self.seen.push((now, world.log.len()));
            }
        }
        let mut world = Recorder {
            respawn: true,
            ..Recorder::default()
        };
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        let mut spy = Spy { seen: Vec::new() };
        let stats = engine.run_until_with(&mut world, SimTime::MAX, &mut spy);
        assert_eq!(stats.events_processed, 2);
        // The hook saw the world's log *after* each event was appended.
        assert_eq!(
            spy.seen,
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]
        );
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn scheduling_in_cannot_wrap_into_the_past() {
        // Mirror of `scheduling_into_the_past_panics` for the relative entry
        // point: `SimSpan` is unsigned, so the only way `schedule_in` could
        // produce a past time is u64 wraparound — which must panic loudly
        // instead of silently scheduling an ancient event.
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(5), Ev::Ping);
        engine.run_until(&mut world, SimTime::MAX);
        // Clock is now at 5s; now + MAX overflows and must panic.
        engine.scheduler().schedule_in(SimSpan::MAX, Ev::Pong);
    }

    struct Spy {
        name: &'static str,
        seen: Vec<(&'static str, SimTime, usize)>,
    }
    impl EventHook<Recorder> for Spy {
        fn after_event(&mut self, world: &Recorder, now: SimTime) {
            self.seen.push((self.name, now, world.log.len()));
        }
    }

    #[test]
    fn tuple_hooks_run_in_order_and_see_identical_states() {
        let mut world = Recorder {
            respawn: true,
            ..Recorder::default()
        };
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        let a = Spy {
            name: "a",
            seen: Vec::new(),
        };
        let b = Spy {
            name: "b",
            seen: Vec::new(),
        };
        let mut pair = (a, b);
        let stats = engine.run_until_with(&mut world, SimTime::MAX, &mut pair);
        assert_eq!(stats.events_processed, 2);
        let states = |spy: &Spy| spy.seen.iter().map(|&(_, t, n)| (t, n)).collect::<Vec<_>>();
        // Both hooks observed exactly the same post-reaction world states.
        assert_eq!(states(&pair.0), states(&pair.1));
        assert_eq!(
            states(&pair.0),
            vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]
        );
    }

    #[test]
    fn optional_hooks_compose_without_perturbing_each_other() {
        // (Some(auditor), None::<tracer>) behaves exactly like the auditor
        // alone: the observer set is composable without a match ladder.
        let run = |with_second: bool| {
            let mut world = Recorder {
                respawn: true,
                ..Recorder::default()
            };
            let mut engine = Engine::new();
            engine
                .scheduler()
                .schedule_at(SimTime::from_secs(1), Ev::Ping);
            let first = Spy {
                name: "first",
                seen: Vec::new(),
            };
            let second = with_second.then(|| Spy {
                name: "second",
                seen: Vec::new(),
            });
            let mut hooks = (Some(first), second);
            engine.run_until_with(&mut world, SimTime::MAX, &mut hooks);
            (hooks.0.unwrap().seen, hooks.1.map(|s| s.seen))
        };
        let (solo, none) = run(false);
        let (chained, second) = run(true);
        assert_eq!(none, None);
        // The first hook's observations are identical with and without a
        // second observer chained behind it.
        assert_eq!(solo, chained);
        let second = second.unwrap();
        assert_eq!(second.len(), chained.len());
    }

    #[test]
    fn hook_chain_runs_all_hooks_in_insertion_order() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        let mut a = Spy {
            name: "a",
            seen: Vec::new(),
        };
        let mut b = Spy {
            name: "b",
            seen: Vec::new(),
        };
        {
            let mut chain: HookChain<'_, Recorder> = HookChain::new();
            assert!(chain.is_empty());
            chain.push(&mut a);
            chain.push(&mut b);
            assert_eq!(chain.len(), 2);
            engine.run_until_with(&mut world, SimTime::MAX, &mut chain);
        }
        assert_eq!(a.seen, vec![("a", SimTime::from_secs(1), 1)]);
        assert_eq!(b.seen, vec![("b", SimTime::from_secs(1), 1)]);
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut world = Recorder::default();
        let mut engine = Engine::new();
        let h = engine
            .scheduler()
            .schedule_at(SimTime::from_secs(1), Ev::Ping);
        engine
            .scheduler()
            .schedule_at(SimTime::from_secs(2), Ev::Pong);
        assert!(engine.scheduler().cancel(h));
        engine.run_until(&mut world, SimTime::MAX);
        assert_eq!(world.log, vec![(SimTime::from_secs(2), Ev::Pong)]);
    }
}
