//! The global load index.
//!
//! "Each workstation maintains a global load index file which contains CPU,
//! memory, and I/O load status information of other computing nodes. The
//! load sharing system periodically collects and distributes the load
//! information among the workstations." (§3.3.1)
//!
//! [`LoadIndex`] models that: a snapshot of every node's load, refreshed at
//! the exchange period. Scheduling policies read the *index*, not the live
//! node state, so their decisions suffer the same staleness a real
//! distributed system would.

use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::ops::Bound;

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimTime;

use crate::node::{NodeId, Workstation};
use crate::units::Bytes;

/// One node's entry in the global load index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeLoad {
    /// Which node.
    pub node: NodeId,
    /// Number of resident jobs.
    pub active_jobs: usize,
    /// Idle user memory.
    pub idle_memory: Bytes,
    /// Demand beyond user memory (being paged).
    pub overflow: Bytes,
    /// `true` if the node is experiencing page faults.
    pub faulting: bool,
    /// `true` if a CPU job slot is free.
    pub has_slot: bool,
    /// `true` if the node is reserved for special service.
    pub reserved: bool,
    /// `false` if the node is crashed. Down nodes report no capacity at all
    /// (no idle memory, no slot) so cluster-wide gauges exclude them.
    pub up: bool,
    /// User memory size (static, but carried for heterogeneity-aware
    /// decisions).
    pub user_memory: Bytes,
}

impl NodeLoad {
    /// Captures a node's current load. The node should have been advanced to
    /// `now` by the caller for exact values.
    ///
    /// A crashed node is captured as contributing nothing: zero jobs, zero
    /// idle memory, no free slot.
    pub fn capture(node: &Workstation) -> NodeLoad {
        if !node.is_up() {
            return NodeLoad {
                node: node.id(),
                active_jobs: 0,
                idle_memory: Bytes::ZERO,
                overflow: Bytes::ZERO,
                faulting: false,
                has_slot: false,
                reserved: node.is_reserved(),
                up: false,
                user_memory: node.params().memory.user,
            };
        }
        let usage = node.memory_usage();
        NodeLoad {
            node: node.id(),
            active_jobs: node.active_jobs(),
            idle_memory: usage.idle(),
            overflow: usage.overflow(),
            faulting: usage.is_oversubscribed(),
            has_slot: node.has_slot(),
            reserved: node.is_reserved(),
            up: true,
            user_memory: usage.user,
        }
    }

    /// The paper's qualification for accepting a submission: idle memory
    /// space, a free job slot, not reserved — and, with fault injection, up.
    pub fn accepts_submissions(&self) -> bool {
        self.up && !self.reserved && self.has_slot && !self.idle_memory.is_zero()
    }
}

/// A periodically refreshed snapshot of every node's load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LoadIndex {
    entries: Vec<NodeLoad>,
    refreshed_at: SimTime,
    /// Cluster-wide idle-memory sum, recomputed once per refresh. Entries
    /// are immutable between refreshes, so the cache cannot go stale; it is
    /// re-derived (not serialized) because it is a pure function of
    /// `entries`. Integer sum: order-independent, exactly equal to a walk.
    #[serde(skip)]
    cached_idle: Bytes,
    /// Cluster-wide user-memory sum, cached like [`LoadIndex::cached_idle`].
    #[serde(skip)]
    cached_user_total: Bytes,
    /// Ordered placement index over the entries that accept submissions,
    /// keyed exactly like the placement comparator: fewest active jobs
    /// first, then most idle memory, then node id. Derived from `entries`
    /// (rebuilt on refresh, not serialized), so it can never disagree with
    /// a linear scan of the snapshot.
    #[serde(skip)]
    placement: BTreeSet<(usize, Reverse<Bytes>, NodeId)>,
    /// Ordered reservation index over up, non-reserved entries, keyed so
    /// the *last* element is the paper's reservation candidate: most idle
    /// memory, then fewest active jobs, then lowest node id.
    #[serde(skip)]
    by_idle: BTreeSet<(Bytes, Reverse<usize>, Reverse<NodeId>)>,
}

fn placement_key(e: &NodeLoad) -> (usize, Reverse<Bytes>, NodeId) {
    (e.active_jobs, Reverse(e.idle_memory), e.node)
}

fn by_idle_key(e: &NodeLoad) -> (Bytes, Reverse<usize>, Reverse<NodeId>) {
    (e.idle_memory, Reverse(e.active_jobs), Reverse(e.node))
}

impl LoadIndex {
    /// An empty index (before the first exchange).
    pub fn new() -> Self {
        LoadIndex::default()
    }

    /// Replaces the index with fresh captures of every node. In-place: the
    /// entry buffer is reused across refreshes (this runs every exchange
    /// tick), and the sort is O(n) for the usual already-ordered input.
    pub fn refresh<'a>(&mut self, nodes: impl IntoIterator<Item = &'a Workstation>, now: SimTime) {
        self.entries.clear();
        self.entries
            .extend(nodes.into_iter().map(NodeLoad::capture));
        self.entries.sort_by_key(|e| e.node);
        self.refreshed_at = now;
        self.recompute_derived();
    }

    /// Re-derives the cached cluster-wide sums and the ordered query
    /// indices from `entries`. Every path that rebuilds `entries` must end
    /// here.
    fn recompute_derived(&mut self) {
        self.cached_idle = self.entries.iter().map(|e| e.idle_memory).sum();
        self.cached_user_total = self.entries.iter().map(|e| e.user_memory).sum();
        self.placement.clear();
        self.by_idle.clear();
        for i in 0..self.entries.len() {
            let e = self.entries[i];
            self.index_entry(&e);
        }
    }

    /// Adds one entry to the ordered query indices it qualifies for.
    fn index_entry(&mut self, e: &NodeLoad) {
        if e.accepts_submissions() {
            self.placement.insert(placement_key(e));
        }
        if e.up && !e.reserved {
            self.by_idle.insert(by_idle_key(e));
        }
    }

    /// Removes one entry from the ordered query indices.
    fn unindex_entry(&mut self, e: &NodeLoad) {
        if e.accepts_submissions() {
            self.placement.remove(&placement_key(e));
        }
        if e.up && !e.reserved {
            self.by_idle.remove(&by_idle_key(e));
        }
    }

    /// Recaptures only `targets`, leaving every other entry untouched — the
    /// incremental form of [`LoadIndex::refresh`]. Correct whenever every
    /// node whose observable state changed since its last capture is in
    /// `targets`: an untargeted node's state is unchanged, so its existing
    /// entry already equals a fresh capture and the result is identical to
    /// a full refresh at O(changed · log n) instead of O(n) cost.
    ///
    /// Falls back to a full refresh when the index has not been populated
    /// yet (or the cluster size changed under it).
    pub fn refresh_targets(
        &mut self,
        nodes: &[Workstation],
        targets: impl IntoIterator<Item = NodeId>,
        now: SimTime,
    ) {
        if self.entries.len() != nodes.len() {
            self.refresh(nodes.iter(), now);
            return;
        }
        for node in targets {
            let i = node.0 as usize;
            debug_assert_eq!(self.entries[i].node, node, "index entries must be dense");
            let old = self.entries[i];
            let new = NodeLoad::capture(&nodes[i]);
            if new == old {
                continue;
            }
            self.unindex_entry(&old);
            // Integer delta on the cached sum: exact and order-independent,
            // so it lands on the same value a full recompute would.
            self.cached_idle = Bytes::new(
                self.cached_idle.as_u64() + new.idle_memory.as_u64() - old.idle_memory.as_u64(),
            );
            self.cached_user_total = Bytes::new(
                self.cached_user_total.as_u64() + new.user_memory.as_u64()
                    - old.user_memory.as_u64(),
            );
            self.entries[i] = new;
            self.index_entry(&new);
        }
        self.refreshed_at = now;
    }

    /// Refreshes the index but keeps the *old* entry for every node in
    /// `stale` — modelling a load exchange in which those nodes' reports
    /// were lost in transit. A stale node with no previous entry gets a
    /// fresh capture (there is nothing older to keep).
    pub fn refresh_except<'a>(
        &mut self,
        nodes: impl IntoIterator<Item = &'a Workstation>,
        now: SimTime,
        stale: &[NodeId],
    ) {
        let old = std::mem::take(&mut self.entries);
        self.entries = nodes
            .into_iter()
            .map(|node| {
                if stale.contains(&node.id()) {
                    if let Ok(i) = old.binary_search_by_key(&node.id(), |e| e.node) {
                        return old[i];
                    }
                }
                NodeLoad::capture(node)
            })
            .collect();
        self.entries.sort_by_key(|e| e.node);
        self.refreshed_at = now;
        self.recompute_derived();
    }

    /// When the index was last refreshed.
    pub fn refreshed_at(&self) -> SimTime {
        self.refreshed_at
    }

    /// The entry for one node, if present.
    pub fn get(&self, node: NodeId) -> Option<&NodeLoad> {
        self.entries
            .binary_search_by_key(&node, |e| e.node)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// All entries, ordered by node id.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLoad> {
        self.entries.iter()
    }

    /// Number of nodes in the index.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` before the first refresh.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total idle memory accumulated across the cluster — the precondition
    /// gauge for virtual reconfiguration (§2.1).
    pub fn accumulated_idle_memory(&self) -> Bytes {
        debug_assert_eq!(
            self.cached_idle,
            self.entries.iter().map(|e| e.idle_memory).sum::<Bytes>(),
            "cached idle-memory sum out of sync with entries"
        );
        self.cached_idle
    }

    /// Average user memory per workstation (the reconfiguration threshold).
    pub fn average_user_memory(&self) -> Bytes {
        if self.entries.is_empty() {
            return Bytes::ZERO;
        }
        Bytes::new(self.cached_user_total.as_u64() / self.entries.len() as u64)
    }

    /// The best destination for an ordinary submission or migration: a
    /// non-reserved node with a free slot and idle memory, preferring the
    /// fewest active jobs, then the most idle memory.
    ///
    /// `exclude` filters out the source node.
    pub fn best_destination(&self, exclude: Option<NodeId>) -> Option<&NodeLoad> {
        self.best_destination_for(Bytes::ZERO, exclude)
    }

    /// Like [`LoadIndex::best_destination`], additionally requiring at
    /// least `demand` idle memory — the paper's qualification for placing a
    /// job with a known working set. Resolved against the ordered placement
    /// index instead of a linear scan: within one active-jobs bucket
    /// entries are sorted by descending idle memory, so the bucket head
    /// either covers the demand or the whole bucket can be skipped. At most
    /// two probes (the head may be `exclude`) plus one range seek per
    /// bucket, and the bucket count is bounded by the per-node slot limit,
    /// so a query is O(slots · log n).
    ///
    /// Equivalent to
    /// `iter().filter(|e| Some(e.node) != exclude && e.accepts_submissions()
    /// && e.idle_memory >= demand).min_by_key(|e| (e.active_jobs,
    /// Reverse(e.idle_memory), e.node))`.
    pub fn best_destination_for(
        &self,
        demand: Bytes,
        exclude: Option<NodeId>,
    ) -> Option<&NodeLoad> {
        let mut from = Bound::Unbounded;
        loop {
            let mut bucket = self.placement.range((from, Bound::Unbounded));
            let &(jobs, Reverse(idle), node) = bucket.next()?;
            if idle >= demand {
                if Some(node) != exclude {
                    return self.get(node);
                }
                // The bucket head is the excluded node; the next entry in
                // the same bucket (same job count, next-best idle memory)
                // wins if it still covers the demand.
                if let Some(&(j2, Reverse(i2), n2)) = bucket.next() {
                    if j2 == jobs && i2 >= demand {
                        return self.get(n2);
                    }
                }
            }
            // Every remaining entry in this bucket has less idle memory
            // than one we already rejected: seek past the bucket. Accepting
            // entries always have non-zero idle memory, so this sentinel
            // sorts strictly after all of them.
            from = Bound::Excluded((jobs, Reverse(Bytes::ZERO), NodeId(u32::MAX)));
        }
    }

    /// [`LoadIndex::best_destination_for`] with an extra caller-side
    /// acceptance predicate (e.g. committed-capacity checks that live
    /// outside the index). Entries are offered to `accept` in placement
    /// order; within a bucket the walk stops as soon as *reported* idle
    /// memory drops below `demand` — reported idle is an upper bound on any
    /// caller-adjusted capacity, so no skipped entry could have been
    /// accepted on memory the index does not know about being *larger*.
    /// Worst case degenerates to a full scan only when most entries report
    /// enough idle memory yet fail `accept`; the saturated-cluster case
    /// (nothing fits) costs one probe per distinct job-count bucket.
    pub fn best_destination_where(
        &self,
        demand: Bytes,
        exclude: Option<NodeId>,
        mut accept: impl FnMut(&NodeLoad) -> bool,
    ) -> Option<&NodeLoad> {
        let mut from = Bound::Unbounded;
        loop {
            let mut bucket = self.placement.range((from, Bound::Unbounded));
            let &(jobs, Reverse(idle), node) = bucket.next()?;
            if idle >= demand {
                if Some(node) != exclude {
                    if let Some(load) = self.get(node) {
                        if accept(load) {
                            return Some(load);
                        }
                    }
                }
                // Walk the rest of the bucket: same job count, descending
                // reported idle, until reported idle can no longer cover
                // the demand.
                for &(j2, Reverse(i2), n2) in bucket {
                    if j2 != jobs || i2 < demand {
                        break;
                    }
                    if Some(n2) == exclude {
                        continue;
                    }
                    if let Some(load) = self.get(n2) {
                        if accept(load) {
                            return Some(load);
                        }
                    }
                }
            }
            from = Bound::Excluded((jobs, Reverse(Bytes::ZERO), NodeId(u32::MAX)));
        }
    }

    /// The paper's `reserve_a_workstation()` choice: the most lightly loaded
    /// non-reserved workstation with the largest idle memory (in a
    /// heterogeneous cluster this also favours large-memory nodes, §2.3).
    pub fn reservation_candidate(&self) -> Option<&NodeLoad> {
        let &(_, _, Reverse(node)) = self.by_idle.iter().next_back()?;
        self.get(node)
    }

    /// All up, non-reserved entries in descending reservation-preference
    /// order (most idle memory, then fewest active jobs, then lowest id).
    /// Callers apply live-state filters and take the first hit, which
    /// equals a `max_by_key` over the filtered set; feasibility probes can
    /// early-exit as soon as idle memory drops below the demanded working
    /// set.
    pub fn by_idle_desc(&self) -> impl Iterator<Item = &NodeLoad> {
        self.by_idle
            .iter()
            .rev()
            .filter_map(|&(_, _, Reverse(node))| self.get(node))
    }

    /// All accepting entries in placement-preference order (fewest active
    /// jobs, then most idle memory, then lowest id — best destination
    /// first). The first entry surviving a caller-side filter equals a
    /// `min_by_key` over the filtered set.
    pub fn placement_order(&self) -> impl Iterator<Item = &NodeLoad> {
        self.placement
            .iter()
            .filter_map(|&(_, _, node)| self.get(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuParams;
    use crate::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
    use crate::memory::{FaultModel, MemoryParams};
    use crate::node::NodeParams;
    use vr_simcore::time::SimSpan;

    fn params(user_mb: u64) -> NodeParams {
        NodeParams {
            cpu: CpuParams::with_slots(4),
            memory: MemoryParams::with_capacity(Bytes::from_mb(user_mb), Bytes::from_mb(user_mb)),
            fault_model: FaultModel::default(),
            protection: Default::default(),
        }
    }

    fn node_with_jobs(id: u32, user_mb: u64, jobs: &[(u64, u64)]) -> Workstation {
        let mut node = Workstation::new(NodeId(id), params(user_mb));
        for &(jid, ws) in jobs {
            node.try_admit(
                RunningJob::new(JobSpec {
                    id: JobId(jid),
                    name: format!("j{jid}"),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(100),
                    memory: MemoryProfile::constant(Bytes::from_mb(ws)),
                    io_rate: 0.0,
                    malleable: None,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        }
        node
    }

    #[test]
    fn capture_reflects_node_state() {
        let node = node_with_jobs(3, 128, &[(1, 100), (2, 50)]);
        let load = NodeLoad::capture(&node);
        assert_eq!(load.node, NodeId(3));
        assert_eq!(load.active_jobs, 2);
        assert_eq!(load.idle_memory, Bytes::ZERO);
        assert_eq!(load.overflow, Bytes::from_mb(22));
        assert!(load.faulting);
        assert!(load.has_slot);
        assert!(!load.accepts_submissions()); // no idle memory
    }

    #[test]
    fn index_lookup_and_gauges() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 28)]),
            node_with_jobs(1, 128, &[(2, 100)]),
            node_with_jobs(2, 128, &[]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::from_secs(5));
        assert_eq!(index.len(), 3);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(5));
        assert_eq!(
            index.get(NodeId(1)).unwrap().idle_memory,
            Bytes::from_mb(28)
        );
        assert!(index.get(NodeId(9)).is_none());
        // 100 + 28 + 128 idle.
        assert_eq!(index.accumulated_idle_memory(), Bytes::from_mb(256));
        assert_eq!(index.average_user_memory(), Bytes::from_mb(128));
    }

    #[test]
    fn best_destination_prefers_light_nodes() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 10), (2, 10)]),
            node_with_jobs(1, 128, &[(3, 10)]),
            node_with_jobs(2, 128, &[(4, 10)]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        // Nodes 1 and 2 tie on job count and idle memory; ties break by id.
        assert_eq!(index.best_destination(None).unwrap().node, NodeId(1));
        assert_eq!(
            index.best_destination(Some(NodeId(1))).unwrap().node,
            NodeId(2)
        );
    }

    #[test]
    fn best_destination_skips_unqualified() {
        let mut full = node_with_jobs(0, 128, &[(1, 5), (2, 5), (3, 5), (4, 5)]);
        full.advance_to(SimTime::ZERO);
        let saturated = node_with_jobs(1, 128, &[(5, 130)]);
        let mut reserved = node_with_jobs(2, 128, &[]);
        reserved.set_reserved(true);
        let nodes = [full, saturated, reserved];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        // No slot / no idle memory / reserved: nothing qualifies.
        assert!(index.best_destination(None).is_none());
    }

    #[test]
    fn reservation_candidate_maximizes_idle_memory() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 100)]),
            node_with_jobs(1, 128, &[(2, 20)]),
            node_with_jobs(2, 128, &[(3, 60)]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn reservation_candidate_ignores_already_reserved() {
        let mut best = node_with_jobs(0, 128, &[]);
        best.set_reserved(true);
        let nodes = [best, node_with_jobs(1, 128, &[(1, 64)])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn heterogeneous_reservation_prefers_big_memory_nodes() {
        // §2.3: "a reserved workstation will be the one with relatively
        // large physical memory space".
        let nodes = [node_with_jobs(0, 128, &[]), node_with_jobs(1, 384, &[])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn down_node_contributes_nothing() {
        let mut down = node_with_jobs(0, 128, &[(1, 30)]);
        down.crash(SimTime::ZERO);
        let nodes = [down, node_with_jobs(1, 128, &[(2, 28)])];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        let entry = index.get(NodeId(0)).unwrap();
        assert!(!entry.up);
        assert_eq!(entry.idle_memory, Bytes::ZERO);
        assert!(!entry.has_slot);
        assert!(!entry.accepts_submissions());
        // Gauges and candidate selection exclude the dead node.
        assert_eq!(index.accumulated_idle_memory(), Bytes::from_mb(100));
        assert_eq!(index.best_destination(None).unwrap().node, NodeId(1));
        assert_eq!(index.reservation_candidate().unwrap().node, NodeId(1));
    }

    #[test]
    fn refresh_except_keeps_stale_entries() {
        let mut node0 = node_with_jobs(0, 128, &[]);
        let node1 = node_with_jobs(1, 128, &[]);
        let mut index = LoadIndex::new();
        index.refresh([&node0, &node1], SimTime::ZERO);
        assert_eq!(index.get(NodeId(0)).unwrap().active_jobs, 0);
        // Node 0 gains a job, but its next report is lost.
        node0
            .try_admit(
                RunningJob::new(JobSpec {
                    id: JobId(9),
                    name: "j9".into(),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(100),
                    memory: MemoryProfile::constant(Bytes::from_mb(10)),
                    io_rate: 0.0,
                    malleable: None,
                }),
                SimTime::ZERO,
            )
            .unwrap();
        index.refresh_except([&node0, &node1], SimTime::from_secs(5), &[NodeId(0)]);
        // Peers still see the pre-admission snapshot of node 0.
        assert_eq!(index.get(NodeId(0)).unwrap().active_jobs, 0);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(5));
        // A lost report with no prior entry falls back to a fresh capture.
        let mut empty = LoadIndex::new();
        empty.refresh_except([&node0, &node1], SimTime::from_secs(6), &[NodeId(0)]);
        assert_eq!(empty.get(NodeId(0)).unwrap().active_jobs, 1);
    }

    #[test]
    fn empty_index_defaults() {
        let index = LoadIndex::new();
        assert!(index.is_empty());
        assert_eq!(index.accumulated_idle_memory(), Bytes::ZERO);
        assert_eq!(index.average_user_memory(), Bytes::ZERO);
        assert!(index.best_destination(None).is_none());
        assert!(index.reservation_candidate().is_none());
        assert!(index
            .best_destination_for(Bytes::from_mb(1), None)
            .is_none());
        assert_eq!(index.by_idle_desc().count(), 0);
        assert_eq!(index.placement_order().count(), 0);
    }

    #[test]
    fn best_destination_for_respects_demand() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 10)]),          // 118 MB idle, 1 job
            node_with_jobs(1, 128, &[(2, 100)]),         // 28 MB idle, 1 job
            node_with_jobs(2, 128, &[(3, 10), (4, 10)]), // 108 MB idle, 2 jobs
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        // Demand 50 MB: node 0 is the only 1-job node that fits.
        let hit = index
            .best_destination_for(Bytes::from_mb(50), None)
            .unwrap();
        assert_eq!(hit.node, NodeId(0));
        // Excluding node 0 forces a fall-through to the 2-job bucket.
        let hit = index
            .best_destination_for(Bytes::from_mb(50), Some(NodeId(0)))
            .unwrap();
        assert_eq!(hit.node, NodeId(2));
        // Demand nothing can satisfy.
        assert!(index
            .best_destination_for(Bytes::from_mb(500), None)
            .is_none());
    }

    #[test]
    fn ordered_queries_match_linear_scans() {
        let nodes = [
            node_with_jobs(0, 128, &[(1, 10), (2, 10)]),
            node_with_jobs(1, 384, &[(3, 40)]),
            node_with_jobs(2, 128, &[(4, 100)]),
            node_with_jobs(3, 128, &[]),
            node_with_jobs(4, 384, &[(5, 40)]),
        ];
        let mut index = LoadIndex::new();
        index.refresh(nodes.iter(), SimTime::ZERO);
        for demand_mb in [0, 30, 90, 200, 400] {
            for exclude in [None, Some(NodeId(3)), Some(NodeId(1))] {
                let demand = Bytes::from_mb(demand_mb);
                let linear = index
                    .iter()
                    .filter(|e| {
                        Some(e.node) != exclude
                            && e.accepts_submissions()
                            && e.idle_memory >= demand
                    })
                    .min_by_key(|e| (e.active_jobs, Reverse(e.idle_memory), e.node))
                    .map(|e| e.node);
                let indexed = index.best_destination_for(demand, exclude).map(|e| e.node);
                assert_eq!(indexed, linear, "demand {demand_mb} MB exclude {exclude:?}");
            }
        }
        let linear_res = index
            .iter()
            .filter(|e| e.up && !e.reserved)
            .max_by_key(|e| (e.idle_memory, Reverse(e.active_jobs), Reverse(e.node)))
            .map(|e| e.node);
        assert_eq!(index.reservation_candidate().map(|e| e.node), linear_res);
        // Ordered iterators sweep their comparator order exactly.
        let mut prev = None;
        for e in index.placement_order() {
            let key = (e.active_jobs, Reverse(e.idle_memory), e.node);
            assert!(prev.as_ref().is_none_or(|p| *p < key));
            prev = Some(key);
        }
        let mut prev = None;
        for e in index.by_idle_desc() {
            let key = (e.idle_memory, Reverse(e.active_jobs), Reverse(e.node));
            assert!(prev.as_ref().is_none_or(|p| *p > key));
            prev = Some(key);
        }
    }

    #[test]
    fn refresh_targets_matches_full_refresh() {
        let mut nodes = vec![
            node_with_jobs(0, 128, &[(1, 28)]),
            node_with_jobs(1, 128, &[]),
            node_with_jobs(2, 384, &[(2, 60)]),
            node_with_jobs(3, 128, &[(3, 100)]),
        ];
        let mut index = LoadIndex::new();
        // Unpopulated index: refresh_targets falls back to a full refresh.
        index.refresh_targets(&nodes, [], SimTime::ZERO);
        assert_eq!(index.len(), 4);
        // Churn a subset of nodes: a crash, a reservation, and an admission.
        nodes[0].crash(SimTime::from_secs(1));
        nodes[1].set_reserved(true);
        nodes[2]
            .try_admit(
                RunningJob::new(JobSpec {
                    id: JobId(9),
                    name: "j9".into(),
                    class: JobClass::CpuIntensive,
                    submit: SimTime::ZERO,
                    cpu_work: SimSpan::from_secs(50),
                    memory: MemoryProfile::constant(Bytes::from_mb(30)),
                    io_rate: 0.0,
                    malleable: None,
                }),
                SimTime::from_secs(1),
            )
            .unwrap();
        index.refresh_targets(
            &nodes,
            [NodeId(0), NodeId(1), NodeId(2)],
            SimTime::from_secs(1),
        );
        let mut full = LoadIndex::new();
        full.refresh(nodes.iter(), SimTime::from_secs(1));
        assert_eq!(index, full);
        // Recovery churn: restart the crashed node and release the flag.
        nodes[0].restart(SimTime::from_secs(2));
        nodes[1].set_reserved(false);
        index.refresh_targets(&nodes, [NodeId(0), NodeId(1)], SimTime::from_secs(2));
        let mut full = LoadIndex::new();
        full.refresh(nodes.iter(), SimTime::from_secs(2));
        assert_eq!(index, full);
        assert_eq!(index.refreshed_at(), SimTime::from_secs(2));
    }
}
