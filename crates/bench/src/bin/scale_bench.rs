//! `scale_bench` — scale-out benchmark suite behind `BENCH_scale.json`.
//!
//! Runs a nodes × jobs grid of [`ScaleSpec`] scenarios (cluster 1 node
//! type, V-Reconfiguration, scheduler seed 7, trace seed 42) from the
//! paper's 32-node origin up to 10,000 nodes / 1,000,000 jobs, and records
//! engine throughput at each cell. This is where the O(log n) placement
//! index earns its keep: with the old full-rebuild load index the top cell
//! does quadratic work and does not finish in any reasonable time.
//!
//! Modes:
//!
//! * `scale_bench --out BENCH_scale.json` — measure the full grid and
//!   write the JSON artifact (the committed scale baseline).
//! * `scale_bench --check BENCH_scale.json [--tolerance 0.25]` — measure
//!   again and gate: deterministic fields (engine events, completed jobs,
//!   blocking detections) must match *exactly*; `events_per_sec` may not
//!   regress by more than the tolerance. Exits non-zero on violation — the
//!   CI `bench-gate` entry point.
//! * `scale_bench --smoke --budget-secs 120` — run only the 1k-node /
//!   100k-job cell and fail if it misses the wall-clock budget. The CI
//!   `scale-smoke` entry point; no baseline required.

use std::time::Instant;

use vr_simcore::jsonio::Json;
use vr_simcore::rng::SimRng;
use vr_workload::scale::ScaleSpec;
use vrecon::config::{PlacementMode, SimConfig};
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

use vr_bench::{SIM_SEED, TRACE_SEED};

/// Schema version of `BENCH_scale.json`.
const SCHEMA: u64 = 1;
/// Default allowed relative `events_per_sec` regression in `--check` mode.
/// Looser than `engine_bench`'s 0.10: grid cells run once (the top cell is
/// too large for best-of-N), so single-run scheduler noise must fit inside.
const DEFAULT_TOLERANCE: f64 = 0.25;

/// The nodes × jobs grid. The first cell overlaps `engine_bench` scale;
/// the last is ROADMAP item 2's thousands-of-nodes / million-job target.
const GRID: [(usize, usize); 3] = [(128, 10_000), (1024, 100_000), (10_000, 1_000_000)];

/// The cell the CI `scale-smoke` job runs under a wall-clock budget.
const SMOKE_CELL: (usize, usize) = (1024, 100_000);

/// One grid cell's measurements.
struct CellResult {
    nodes: usize,
    jobs: usize,
    trace_name: String,
    engine_events: u64,
    completed: u64,
    blocking_detections: u64,
    wall_secs: f64,
    events_per_sec: f64,
}

fn measure(nodes: usize, jobs: usize) -> CellResult {
    let spec = ScaleSpec::new(nodes, jobs);
    let trace = spec.trace(&mut SimRng::seed_from(TRACE_SEED));
    let config = SimConfig::new(spec.cluster(), PolicyKind::VReconfiguration)
        .with_seed(SIM_SEED)
        .with_placement(PlacementMode::CommitAware);
    let sim = Simulation::new(config);
    let started = Instant::now();
    let report = sim.run(&trace);
    let wall_secs = started.elapsed().as_secs_f64();
    let engine_events = report.run_stats.events_processed;
    CellResult {
        nodes,
        jobs,
        trace_name: trace.name.clone(),
        engine_events,
        completed: (report.summary.jobs - report.unfinished_jobs) as u64,
        blocking_detections: report.counters.blocking_detections,
        wall_secs,
        events_per_sec: if wall_secs > 0.0 {
            engine_events as f64 / wall_secs
        } else {
            0.0
        },
    }
}

fn to_json(results: &[CellResult]) -> Json {
    Json::obj([
        ("schema", Json::U64(SCHEMA)),
        (
            "scenario",
            Json::obj([
                ("generator", Json::str("scale")),
                ("node_type", Json::str("cluster1")),
                ("policy", Json::str("vrecon")),
                ("seed", Json::U64(SIM_SEED)),
                ("trace_seed", Json::U64(TRACE_SEED)),
            ]),
        ),
        (
            "cells",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("nodes", Json::U64(r.nodes as u64)),
                            ("jobs", Json::U64(r.jobs as u64)),
                            ("trace", Json::str(r.trace_name.clone())),
                            ("engine_events", Json::U64(r.engine_events)),
                            ("completed", Json::U64(r.completed)),
                            ("blocking_detections", Json::U64(r.blocking_detections)),
                            ("wall_secs", Json::f64(r.wall_secs)),
                            ("events_per_sec", Json::f64(r.events_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Compares fresh results against a parsed baseline document. Returns the
/// list of violations (empty = gate passes).
fn check(results: &[CellResult], baseline: &Json, tolerance: f64) -> Vec<String> {
    let mut problems = Vec::new();
    let Some(cells) = baseline.get("cells").and_then(Json::as_arr) else {
        return vec!["baseline has no `cells` array".to_owned()];
    };
    if cells.len() != results.len() {
        problems.push(format!(
            "baseline has {} cells, measured {}",
            cells.len(),
            results.len()
        ));
    }
    for r in results {
        let label = format!("{}x{}", r.nodes, r.jobs);
        let Some(base) = cells.iter().find(|c| {
            c.get("nodes").and_then(Json::as_u64) == Some(r.nodes as u64)
                && c.get("jobs").and_then(Json::as_u64) == Some(r.jobs as u64)
        }) else {
            problems.push(format!("cell {label}: missing from baseline"));
            continue;
        };
        let exact_u64 = |field: &str, got: u64, problems: &mut Vec<String>| match base
            .get(field)
            .and_then(Json::as_u64)
        {
            Some(want) if want == got => {}
            Some(want) => problems.push(format!(
                "cell {label}: {field} changed: baseline {want}, measured {got}"
            )),
            None => problems.push(format!("cell {label}: baseline lacks {field}")),
        };
        exact_u64("engine_events", r.engine_events, &mut problems);
        exact_u64("completed", r.completed, &mut problems);
        exact_u64("blocking_detections", r.blocking_detections, &mut problems);
        match base.get("events_per_sec").and_then(Json::as_f64) {
            Some(base_rate) => {
                let floor = base_rate * (1.0 - tolerance);
                if r.events_per_sec < floor {
                    problems.push(format!(
                        "cell {label}: throughput regressed beyond {:.0}%: baseline {:.0} ev/s, \
                         measured {:.0} ev/s (floor {:.0})",
                        tolerance * 100.0,
                        base_rate,
                        r.events_per_sec,
                        floor
                    ));
                }
            }
            None => problems.push(format!("cell {label}: baseline lacks events_per_sec")),
        }
    }
    problems
}

struct Cli {
    out: Option<String>,
    check: Option<String>,
    tolerance: f64,
    smoke: bool,
    budget_secs: Option<f64>,
    cell: Option<(usize, usize)>,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        out: None,
        check: None,
        tolerance: DEFAULT_TOLERANCE,
        smoke: false,
        budget_secs: None,
        cell: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => cli.out = args.next(),
            "--check" => cli.check = args.next(),
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if (0.0..1.0).contains(&t) => cli.tolerance = t,
                _ => die("--tolerance requires a value in [0, 1)"),
            },
            "--smoke" => cli.smoke = true,
            "--budget-secs" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(b) if b > 0.0 => cli.budget_secs = Some(b),
                _ => die("--budget-secs requires a positive number"),
            },
            "--cell" => {
                let parsed = args.next().and_then(|v| {
                    let (n, m) = v.split_once(',')?;
                    Some((n.parse().ok()?, m.parse().ok()?))
                });
                match parsed {
                    Some((n, m)) if n > 0 && m > 0 => cli.cell = Some((n, m)),
                    _ => die("--cell requires NODES,JOBS with both positive"),
                }
            }
            other => die(&format!(
                "unknown argument {other}; supported: --out FILE, --check FILE, \
                 --tolerance T, --smoke, --budget-secs S, --cell NODES,JOBS"
            )),
        }
    }
    if cli.budget_secs.is_some() && !cli.smoke {
        die("--budget-secs only applies to --smoke mode");
    }
    if cli.smoke && cli.cell.is_some() {
        die("--smoke and --cell are mutually exclusive");
    }
    if cli.out.is_none() && cli.check.is_none() && !cli.smoke && cli.cell.is_none() {
        cli.out = Some("BENCH_scale.json".to_owned());
    }
    cli
}

fn die(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn main() {
    let cli = parse_cli();
    let one_cell;
    let grid: &[(usize, usize)] = if cli.smoke {
        &[SMOKE_CELL]
    } else if let Some(cell) = cli.cell {
        one_cell = [cell];
        &one_cell
    } else {
        &GRID
    };
    let mut results = Vec::new();
    for &(nodes, jobs) in grid {
        let r = measure(nodes, jobs);
        eprintln!(
            "{} ({} nodes, {} jobs): {} events in {:.3}s = {:.0} events/sec, \
             {} completed, {} blocking detections",
            r.trace_name,
            r.nodes,
            r.jobs,
            r.engine_events,
            r.wall_secs,
            r.events_per_sec,
            r.completed,
            r.blocking_detections
        );
        results.push(r);
    }

    if cli.smoke {
        if let Some(budget) = cli.budget_secs {
            let wall = results[0].wall_secs;
            if wall > budget {
                eprintln!("scale smoke FAILED: {wall:.1}s exceeds the {budget:.1}s budget");
                std::process::exit(1);
            }
            println!("scale smoke passed: {wall:.1}s within the {budget:.1}s budget");
        }
    }

    if let Some(path) = &cli.out {
        let mut text = to_json(&results).render();
        text.push('\n');
        if let Err(e) = std::fs::write(path, &text) {
            die(&format!("cannot write {path}: {e}"));
        }
        println!("wrote {path}");
    }

    if let Some(path) = &cli.check {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => die(&format!("cannot read baseline {path}: {e}")),
        };
        let baseline = match Json::parse(&text) {
            Ok(j) => j,
            Err(e) => die(&format!("baseline {path} is not valid JSON: {e}")),
        };
        let problems = check(&results, &baseline, cli.tolerance);
        if problems.is_empty() {
            println!(
                "scale gate passed: {} cells within {:.0}% of {path}",
                results.len(),
                cli.tolerance * 100.0
            );
        } else {
            for p in &problems {
                eprintln!("scale gate: {p}");
            }
            eprintln!("scale gate FAILED: {} violation(s)", problems.len());
            std::process::exit(1);
        }
    }
}
