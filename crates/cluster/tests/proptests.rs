//! Property-based invariants of the workstation model.

use proptest::prelude::*;
use vr_cluster::cpu::CpuParams;
use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
use vr_cluster::memory::{FaultModel, MemoryParams};
use vr_cluster::node::{NodeId, NodeParams, Workstation};
use vr_cluster::units::Bytes;
use vr_simcore::time::{SimSpan, SimTime};

#[derive(Debug, Clone)]
struct JobDesc {
    ws_mb: u64,
    work_secs: f64,
    ramp: bool,
}

fn job_strategy() -> impl Strategy<Value = JobDesc> {
    (4u64..120, 5.0f64..300.0, any::<bool>()).prop_map(|(ws_mb, work_secs, ramp)| JobDesc {
        ws_mb,
        work_secs,
        ramp,
    })
}

fn build_job(id: u64, desc: &JobDesc) -> RunningJob {
    let peak = Bytes::from_mb(desc.ws_mb);
    let memory = if desc.ramp {
        MemoryProfile::from_phases(vec![
            (
                SimSpan::from_secs_f64(desc.work_secs * 0.25),
                peak.mul_f64(0.3),
            ),
            (SimSpan::MAX, peak),
        ])
        .expect("increasing boundaries")
    } else {
        MemoryProfile::constant(peak)
    };
    RunningJob::new(JobSpec {
        id: JobId(id),
        name: format!("p{id}"),
        class: JobClass::CpuIntensive,
        submit: SimTime::ZERO,
        cpu_work: SimSpan::from_secs_f64(desc.work_secs),
        memory,
        io_rate: 0.0,
    })
}

fn node(kappa: f64) -> Workstation {
    Workstation::new(
        NodeId(0),
        NodeParams {
            cpu: CpuParams::with_slots(16),
            memory: MemoryParams::with_capacity(Bytes::from_mb(128), Bytes::from_mb(4096)),
            fault_model: FaultModel::LinearOverflow { kappa },
            protection: Default::default(),
        },
    )
}

proptest! {
    /// Each resident job's breakdown always sums to its wall-clock
    /// residency, regardless of load, phases, or fault pressure.
    #[test]
    fn breakdown_equals_residency(
        descs in prop::collection::vec(job_strategy(), 1..10),
        horizon in 1u64..2_000,
        kappa in 0.5f64..8.0,
    ) {
        let mut node = node(kappa);
        for (i, d) in descs.iter().enumerate() {
            node.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        node.advance_to(SimTime::from_secs(horizon));
        for job in node.jobs() {
            let wall = job.breakdown.wall();
            prop_assert!(
                (wall - horizon as f64).abs() < 1e-6,
                "resident job wall {wall} vs horizon {horizon}"
            );
        }
        for job in node.take_completed() {
            let done = job.completed_at.unwrap().as_secs_f64();
            prop_assert!((job.breakdown.wall() - done).abs() < 1e-6);
            // A completed job consumed exactly its CPU work.
            prop_assert!((job.breakdown.cpu - job.spec.cpu_work.as_secs_f64()).abs() < 1e-6);
        }
    }

    /// Advancing in one step or in many arbitrary steps gives identical
    /// progress (the lazy integrator is self-consistent).
    #[test]
    fn advancement_is_step_invariant(
        descs in prop::collection::vec(job_strategy(), 1..6),
        cuts in prop::collection::vec(1u64..500, 1..8),
    ) {
        let total: u64 = cuts.iter().sum();
        let mut one_shot = node(4.0);
        let mut stepped = node(4.0);
        for (i, d) in descs.iter().enumerate() {
            one_shot.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
            stepped.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        one_shot.advance_to(SimTime::from_secs(total));
        let mut t = 0;
        for c in &cuts {
            t += c;
            stepped.advance_to(SimTime::from_secs(t));
        }
        let a = one_shot.take_completed();
        let b = stepped.take_completed();
        prop_assert_eq!(a.len(), b.len());
        for job in one_shot.jobs() {
            let twin = stepped
                .jobs()
                .iter()
                .find(|j| j.id() == job.id())
                .expect("same resident set");
            prop_assert!(
                (job.progress_secs - twin.progress_secs).abs() < 1e-6,
                "progress diverged: {} vs {}",
                job.progress_secs,
                twin.progress_secs
            );
        }
    }

    /// Progress is monotone and never exceeds the job's total work.
    #[test]
    fn progress_is_monotone_and_bounded(
        descs in prop::collection::vec(job_strategy(), 1..6),
        steps in prop::collection::vec(1u64..200, 1..10),
    ) {
        let mut node = node(4.0);
        for (i, d) in descs.iter().enumerate() {
            node.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        let mut last: std::collections::BTreeMap<JobId, f64> = Default::default();
        let mut t = 0;
        for s in &steps {
            t += s;
            node.advance_to(SimTime::from_secs(t));
            for job in node.jobs() {
                let prev = last.insert(job.id(), job.progress_secs).unwrap_or(0.0);
                prop_assert!(job.progress_secs + 1e-9 >= prev);
                prop_assert!(job.progress_secs <= job.spec.cpu_work.as_secs_f64() + 1e-6);
            }
        }
    }

    /// The fault model's stall factors are non-negative, finite, and scale
    /// monotonically with each job's working-set share.
    #[test]
    fn stall_factors_are_sane(
        ws in prop::collection::vec(1u64..512, 1..12),
        user_mb in 32u64..512,
        kappa in 0.1f64..16.0,
    ) {
        let sets: Vec<Bytes> = ws.iter().map(|m| Bytes::from_mb(*m)).collect();
        let model = FaultModel::LinearOverflow { kappa };
        let factors = model.stall_factors(&sets, Bytes::from_mb(user_mb));
        prop_assert_eq!(factors.len(), sets.len());
        for f in &factors {
            prop_assert!(f.is_finite() && *f >= 0.0);
        }
        // Bigger working set never stalls less.
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                if sets[i] > sets[j] {
                    prop_assert!(factors[i] >= factors[j] - 1e-12);
                }
            }
        }
    }

    /// Migration cost is monotone in image size and bounded below by the
    /// fixed remote-submission cost.
    #[test]
    fn migration_cost_is_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let net = vr_cluster::network::NetworkParams::ethernet_10mbps();
        let ca = net.migration_cost(Bytes::new(a));
        let cb = net.migration_cost(Bytes::new(b));
        prop_assert!(ca >= net.remote_submit_cost);
        if a <= b {
            prop_assert!(ca <= cb);
        }
    }
}
