//! Table rendering shared by the figure binaries.

use vr_metrics::comparison::MetricComparison;
use vr_metrics::table::{fmt_f, TextTable};

use crate::paper::{quoted_cell, Quoted};
use crate::PolicyPair;

/// Renders one figure panel: a metric measured under both policies across
/// the five traces, with the measured reduction next to the paper's quoted
/// reduction.
///
/// `metric` extracts the panel's comparison from a pair; `digits` controls
/// value formatting.
pub fn figure_panel(
    title: &str,
    pairs: &[PolicyPair],
    paper: &[Quoted; 5],
    digits: usize,
    metric: impl Fn(&PolicyPair) -> MetricComparison,
) -> String {
    let mut table = TextTable::new(vec![
        "trace",
        "G-Loadsharing",
        "V-Reconfiguration",
        "measured reduction",
        "paper reduction",
    ]);
    for (pair, quoted) in pairs.iter().zip(paper.iter()) {
        let c = metric(pair);
        table.row(vec![
            pair.trace_name.clone(),
            fmt_f(c.baseline, digits),
            fmt_f(c.candidate, digits),
            format!("{:.1}%", c.reduction()),
            quoted_cell(*quoted),
        ]);
    }
    format!("{title}\n{}", table.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Group;
    use vrecon::policy::PolicyKind;

    #[test]
    fn panel_renders_five_rows() {
        // Build a cheap fake: reuse one tiny real run for all five rows.
        let trace = vr_workload::synth::light_load(3, &mut vr_simcore::rng::SimRng::seed_from(1));
        let report = crate::run_policy(Group::App, &trace, PolicyKind::GLoadSharing);
        let pairs: Vec<PolicyPair> = (0..5)
            .map(|i| PolicyPair {
                trace_name: format!("T{i}"),
                gls: report.clone(),
                vr: report.clone(),
            })
            .collect();
        let text = figure_panel("left: demo", &pairs, &crate::paper::FIG1_EXEC, 0, |p| {
            p.execution_time()
        });
        assert!(text.contains("left: demo"));
        assert_eq!(text.lines().count(), 8); // title + header + rule + 5 rows
        assert!(text.contains("T4"));
        assert!(text.contains("29.3%"));
    }
}
