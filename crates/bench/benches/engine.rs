//! Micro-benchmarks of the discrete-event substrate: event-queue
//! throughput and engine dispatch rate. These bound how large a cluster /
//! how long a horizon the simulator can handle.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use vr_simcore::engine::{Engine, Scheduler, World};
use vr_simcore::event::EventQueue;
use vr_simcore::time::{SimSpan, SimTime};

fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                for i in 0..10_000u64 {
                    // Scatter times so the heap actually works.
                    q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("schedule_cancel_10k", |b| {
        b.iter_batched(
            EventQueue::new,
            |mut q| {
                let handles: Vec<_> = (0..10_000u64)
                    .map(|i| q.schedule(SimTime::from_micros(i), i))
                    .collect();
                for h in handles {
                    black_box(q.cancel(h));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

struct Chain {
    left: u64,
}

impl World for Chain {
    type Event = ();
    fn handle(&mut self, sched: &mut Scheduler<'_, ()>, _ev: ()) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule_in(SimSpan::from_micros(1), ());
        }
    }
}

fn engine_dispatch(c: &mut Criterion) {
    c.bench_function("engine/dispatch_100k_chain", |b| {
        b.iter(|| {
            let mut world = Chain { left: 100_000 };
            let mut engine = Engine::new();
            engine.scheduler().schedule_at(SimTime::ZERO, ());
            let stats = engine.run_until(&mut world, SimTime::MAX);
            black_box(stats.events_processed)
        })
    });
}

criterion_group!(benches, event_queue, engine_dispatch);
criterion_main!(benches);
