//! Offline stand-in for `proptest`: deterministic random testing without
//! shrinking. See `compat/README.md` for why this exists.
//!
//! The subset implemented is exactly what this workspace uses:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(...)]` header),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * strategies for integer/float ranges, tuples, `Vec<impl Strategy>`,
//!   [`collection::vec`], [`sample::select`], and [`arbitrary::any`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Cases are generated from a seed derived from the test's module path and
//! case index, so every run explores the same inputs and failures are
//! reproducible. Counterexamples are not shrunk; the panic message carries
//! the case index instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! The per-test configuration and deterministic RNG.

    /// Mirror of `proptest::test_runner::Config` with the fields this
    /// workspace sets (upstream has many more, which is why call sites
    /// spread `..ProptestConfig::default()`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for source compatibility; this stub does not shrink.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// splitmix64 finalizer used to advance and mix the test RNG state.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Deterministic RNG driving strategy generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for one case of one property, keyed by the
        /// property's path so distinct tests explore distinct sequences.
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01b3);
            }
            TestRng {
                state: splitmix64(h ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            splitmix64(self.state)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn uniform(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; panics if `n == 0`.
        pub fn below(&mut self, n: u128) -> u128 {
            assert!(n > 0, "empty range in strategy");
            u128::from(self.next_u64()) % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply draws a value from the deterministic [`TestRng`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a second strategy from it, and draws
        /// from that.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range {}..{}", self.start, self.end);
                    ((self.start as i128) + rng.below(span as u128) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(
                self.start < self.end,
                "empty range {}..{}",
                self.start,
                self.end
            );
            self.start + rng.uniform() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(
                self.start < self.end,
                "empty range {}..{}",
                self.start,
                self.end
            );
            self.start + (rng.uniform() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec`s with lengths drawn from `size` and elements
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing a uniformly random element of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires a non-empty list");
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.below(self.items.len() as u128) as usize].clone()
        }
    }
}

pub mod arbitrary {
    //! The [`any`] entry point for types with a canonical strategy.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` here: failing
/// cases abort the run instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` running `body` over `config.cases` generated
/// inputs. An optional `#![proptest_config(expr)]` header sets the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for __case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // The case index stands in for shrinking: re-run with the
                // same build to reproduce a failure.
                $body
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}
