//! Robustness under injected faults: the blocking scenario replayed at
//! increasing fault intensity, G-Loadsharing vs V-Reconfiguration.
//!
//! Every cell runs with the invariant auditor enabled, so this doubles as
//! a stress harness: the `violations` column must stay 0 everywhere.
//! Slowdowns are averaged over several scheduling seeds; fault and
//! recovery counters are summed over them, showing how much repair work
//! (re-queues, migration retries) each policy causes at each intensity.
//!
//! The whole intensity × policy × seed matrix runs as one sweep on the
//! experiment runner (`--jobs N`, `--no-cache`); the table is aggregated
//! from results in plan order, so it is identical for any worker count.

use std::sync::Arc;

use vr_bench::BenchArgs;
use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_faults::{FaultCounters, FaultPlan};
use vr_metrics::table::{fmt_f, TextTable};
use vr_runner::{Scenario, SweepPlan};
use vr_simcore::time::{SimSpan, SimTime};
use vr_workload::synth;
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;

const SEEDS: [u64; 3] = [7, 1131, 90210];
const NODES: usize = 8;

/// The fault-intensity ladder.
fn intensities() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "light",
            FaultPlan::none()
                .with_migration_failures(0.1)
                .with_load_info_loss(0.05),
        ),
        (
            "moderate",
            FaultPlan::none()
                .with_crash(2, SimTime::from_secs(40), Some(SimSpan::from_secs(30)))
                .with_migration_failures(0.3)
                .with_load_info_loss(0.2)
                .with_reservation_stall(SimSpan::from_secs(3)),
        ),
        (
            "heavy",
            FaultPlan::none()
                .with_crash(1, SimTime::from_secs(25), Some(SimSpan::from_secs(60)))
                .with_crash(5, SimTime::from_secs(70), Some(SimSpan::from_secs(60)))
                .with_migration_failures(0.6)
                .with_load_info_loss(0.4)
                .with_reservation_stall(SimSpan::from_secs(10)),
        ),
    ]
}

fn add(total: &mut FaultCounters, c: &FaultCounters) {
    total.crashes += c.crashes;
    total.restarts += c.restarts;
    total.migration_failures += c.migration_failures;
    total.migration_retries += c.migration_retries;
    total.migrations_abandoned += c.migrations_abandoned;
    total.requeued_jobs += c.requeued_jobs;
    total.lost_load_reports += c.lost_load_reports;
    total.stalled_releases += c.stalled_releases;
}

fn main() {
    let bench_args = BenchArgs::from_env();
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(NODES);
    let trace = Arc::new(synth::blocking_scenario(NODES, Bytes::from_mb(128)));
    println!(
        "fault robustness on {} ({} jobs, {} nodes; {} seeds per cell, auditor on)\n",
        trace.name,
        trace.len(),
        NODES,
        SEEDS.len()
    );

    // Cell-major, seed-minor plan: chunks of SEEDS.len() results make one
    // table row.
    let policies = [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration];
    let ladder = intensities();
    let mut plan = SweepPlan::new();
    for (name, fault_plan) in &ladder {
        for policy in policies {
            for seed in SEEDS {
                plan.push(
                    Scenario::new(
                        SimConfig::new(cluster.clone(), policy)
                            .with_seed(seed)
                            .with_faults(fault_plan.clone())
                            .with_audit(true),
                        Arc::clone(&trace),
                    )
                    .labeled(format!("{name}/{policy}/seed {seed}")),
                );
            }
        }
    }
    let outcome = bench_args.runner(true).run(&plan);
    vr_bench::warn_truncated(outcome.results.iter().flatten());
    let mut reports = outcome.expect_reports().into_iter();

    let mut table = TextTable::new(vec![
        "intensity",
        "policy",
        "avg slowdown",
        "unfinished",
        "crashes",
        "mig failures",
        "retries",
        "re-queued",
        "violations",
    ]);
    for (name, _) in &ladder {
        for policy in policies {
            let mut slowdowns = Vec::new();
            let mut unfinished = 0usize;
            let mut violations = 0usize;
            let mut faults = FaultCounters::default();
            for seed in SEEDS {
                let report = reports.next().expect("plan covers every cell");
                slowdowns.push(report.avg_slowdown());
                unfinished += report.unfinished_jobs;
                violations += report.audit_violations.len();
                add(&mut faults, &report.faults);
                for v in &report.audit_violations {
                    eprintln!("VIOLATION [{name}/{policy}/seed {seed}]: {v}");
                }
            }
            let mean = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
            table.row(vec![
                (*name).to_owned(),
                policy.to_string(),
                fmt_f(mean, 2),
                unfinished.to_string(),
                faults.crashes.to_string(),
                faults.migration_failures.to_string(),
                faults.migration_retries.to_string(),
                faults.requeued_jobs.to_string(),
                violations.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    println!(
        "slowdowns are means over seeds; fault counters are sums. \
         A non-zero violations column is a bug."
    );
}
