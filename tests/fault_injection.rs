//! Fault injection and invariant auditing, end to end.
//!
//! The contract under test: fault plans compose with determinism (same
//! seed + same plan ⇒ bit-identical `RunReport`), the invariant auditor
//! stays clean across every policy with and without faults, and the
//! scheduler's recovery paths (crash re-queue, migration retry) lose no
//! jobs.

use vr_faults::FaultPlan;
use vrecon_repro::prelude::*;

fn small_cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(8);
    c
}

fn blocking_trace() -> vr_workload::trace::Trace {
    synth::blocking_scenario(8, Bytes::from_mb(128))
}

fn run_with(policy: PolicyKind, plan: Option<FaultPlan>, audit: bool, seed: u64) -> RunReport {
    let mut config = SimConfig::new(small_cluster(), policy)
        .with_seed(seed)
        .with_audit(audit);
    if let Some(plan) = plan {
        config = config.with_faults(plan);
    }
    Simulation::new(config).run(&blocking_trace())
}

/// An adversarial-but-survivable plan: one mid-run crash with restart,
/// flaky migrations, lossy load reports, and stalled releases.
fn adversarial_plan() -> FaultPlan {
    FaultPlan::none()
        .with_crash(2, SimTime::from_secs(40), Some(SimSpan::from_secs(30)))
        .with_migration_failures(0.3)
        .with_load_info_loss(0.2)
        .with_reservation_stall(SimSpan::from_secs(3))
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    // `FaultPlan::none()` must not perturb the RNG stream or the schedule:
    // the injector draws nothing when every probability is zero.
    let bare = run_with(PolicyKind::VReconfiguration, None, false, 77);
    let with_plan = run_with(
        PolicyKind::VReconfiguration,
        Some(FaultPlan::none()),
        false,
        77,
    );
    assert_eq!(bare, with_plan);
}

#[test]
fn faulted_runs_are_bit_identical_across_repeats() {
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let a = run_with(policy, Some(adversarial_plan()), false, 1131);
        let b = run_with(policy, Some(adversarial_plan()), false, 1131);
        assert_eq!(a, b, "{policy} diverged under a fixed fault plan");
    }
}

#[test]
fn auditing_observes_without_perturbing() {
    let plain = run_with(
        PolicyKind::VReconfiguration,
        Some(adversarial_plan()),
        false,
        7,
    );
    let audited = run_with(
        PolicyKind::VReconfiguration,
        Some(adversarial_plan()),
        true,
        7,
    );
    assert_eq!(
        audited.audit_violations,
        Vec::<String>::new(),
        "auditor found violations"
    );
    // Everything except the violations field must match the unaudited run.
    let mut audited_scrubbed = audited;
    audited_scrubbed.audit_violations.clear();
    assert_eq!(plain, audited_scrubbed);
}

#[test]
fn auditor_is_clean_for_every_policy_without_faults() {
    for (i, policy) in PolicyKind::ALL.into_iter().enumerate() {
        let report = run_with(policy, None, true, 9000 + i as u64);
        assert!(
            report.audit_violations.is_empty(),
            "{policy}: {:?}",
            report.audit_violations
        );
        assert!(report.all_completed(), "{policy} left jobs unfinished");
    }
}

#[test]
fn auditor_is_clean_for_every_policy_under_faults() {
    for (i, policy) in PolicyKind::ALL.into_iter().enumerate() {
        let report = run_with(policy, Some(adversarial_plan()), true, 4000 + i as u64);
        assert!(
            report.audit_violations.is_empty(),
            "{policy}: {:?}",
            report.audit_violations
        );
    }
}

#[test]
fn auditor_is_clean_on_light_load() {
    let trace = synth::light_load(40, &mut SimRng::seed_from(3));
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let config = SimConfig::new(small_cluster(), policy)
            .with_seed(3)
            .with_audit(true);
        let report = Simulation::new(config).run(&trace);
        assert!(
            report.audit_violations.is_empty(),
            "{policy}: {:?}",
            report.audit_violations
        );
        assert!(report.all_completed());
    }
}

#[test]
fn crashed_node_requeues_its_jobs_and_loses_none() {
    let plan =
        FaultPlan::none().with_crash(1, SimTime::from_secs(30), Some(SimSpan::from_secs(60)));
    let report = run_with(PolicyKind::VReconfiguration, Some(plan), true, 42);
    assert_eq!(report.faults.crashes, 1);
    assert_eq!(report.faults.restarts, 1);
    assert!(
        report.faults.requeued_jobs > 0,
        "the crash at 30s should have drained resident jobs"
    );
    assert!(report.all_completed(), "re-queued jobs must not be lost");
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );
    let kinds: Vec<_> = report.events.entries().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&SchedulerEventKind::NodeCrashed));
    assert!(kinds.contains(&SchedulerEventKind::NodeRestarted));
    assert!(kinds.contains(&SchedulerEventKind::Requeued));
}

#[test]
fn flaky_migrations_are_retried_and_jobs_still_finish() {
    let plan = FaultPlan::none().with_migration_failures(0.5);
    let report = run_with(PolicyKind::VReconfiguration, Some(plan), true, 7);
    assert!(
        report.faults.migration_failures > 0,
        "p=0.5 must fail some of the blocking scenario's migrations"
    );
    assert!(report.faults.migration_retries > 0);
    assert!(
        report.all_completed(),
        "retried/abandoned jobs must not be lost"
    );
    assert!(
        report.audit_violations.is_empty(),
        "{:?}",
        report.audit_violations
    );
}

#[test]
fn fault_counters_survive_into_the_report() {
    let report = run_with(
        PolicyKind::VReconfiguration,
        Some(adversarial_plan()),
        false,
        5,
    );
    let c = &report.faults;
    assert_eq!(c.crashes, 1);
    assert_eq!(c.restarts, 1);
    // A fault-free run reports all-zero counters.
    let clean = run_with(PolicyKind::VReconfiguration, None, false, 5);
    assert_eq!(clean.faults, Default::default());
}
