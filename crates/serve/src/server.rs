//! The accept loop, connection handling, and the simulation worker pool.
//!
//! One thread per connection (requests are single-shot and mostly bounded
//! by simulation time), a fixed pool of simulation workers fed from a
//! queue, and two explicit admission gates:
//!
//! * a **connection cap** — connections past `max_conns` are answered
//!   `429 Too Many Requests` before the request is even read;
//! * an **in-flight cap** — distinct cold scenarios past `max_inflight`
//!   are answered `503 Service Unavailable` with a `Retry-After` hint.
//!
//! Requests for a scenario that is already being simulated never hit the
//! second gate: they *coalesce* onto the in-flight run and all receive
//! the same bytes. The overload behaviour is therefore load-shedding of
//! genuinely new work, never queueing it invisibly.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use vr_check::CheckScenario;
use vr_runner::{panic_message, ResultCache, Scenario};
use vr_simcore::jsonio::Json;
use vrecon::encode_report;

use crate::clock::Stopwatch;
use crate::hook::{NullHook, Outcome, RequestHook, RequestRecord};
use crate::http::{read_request, write_response, RecvError, Request, Response};
use crate::state::{Admission, Counters, HotTier, Inflight};

/// Server configuration, CLI-shaped.
#[derive(Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7071` (`:0` picks a free port).
    pub addr: String,
    /// Simulation worker threads (`0` = available parallelism).
    pub jobs: usize,
    /// On-disk result cache directory; `None` disables the disk tier.
    pub cache_dir: Option<PathBuf>,
    /// Maximum distinct scenarios simulating at once; cold requests past
    /// this are refused with 503.
    pub max_inflight: usize,
    /// In-memory hot-tier capacity, in response bodies.
    pub hot_cap: usize,
    /// Socket read timeout; a request not fully received within it is
    /// answered 408.
    pub read_timeout: Duration,
    /// Maximum concurrent connections; connections past this are
    /// answered 429.
    pub max_conns: usize,
    /// Per-request observability sink.
    pub hook: Arc<dyn RequestHook>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7071".to_owned(),
            jobs: 0,
            cache_dir: Some(PathBuf::from(ResultCache::DEFAULT_DIR)),
            max_inflight: 8,
            hot_cap: 128,
            read_timeout: Duration::from_secs(5),
            max_conns: 64,
            hook: Arc::new(NullHook),
        }
    }
}

/// A queued cold-miss simulation.
struct SimJob {
    hash: String,
    scenario: Scenario,
}

/// Shared server state (see [`crate::state`] for the pieces).
pub struct ServeState {
    /// Request counters.
    pub counters: Counters,
    hot: HotTier,
    inflight: Inflight,
    cache: ResultCache,
    queue: Mutex<VecDeque<SimJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    active_conns: AtomicU64,
    jobs: usize,
    max_conns: usize,
    read_timeout: Duration,
    hook: Arc<dyn RequestHook>,
}

impl ServeState {
    /// Renders the `/stats` document. This is the server's public
    /// self-description: `vrecon loadgen` reads it to self-configure and
    /// to compute per-phase counter deltas.
    pub fn stats_json(&self) -> Json {
        let cache = self.cache.stats();
        Json::obj([
            (
                "requests",
                Json::U64(Counters::get(&self.counters.requests)),
            ),
            (
                "hot_hits",
                Json::U64(Counters::get(&self.counters.hot_hits)),
            ),
            (
                "disk_hits",
                Json::U64(Counters::get(&self.counters.disk_hits)),
            ),
            (
                "sims_executed",
                Json::U64(Counters::get(&self.counters.sims_executed)),
            ),
            (
                "coalesced",
                Json::U64(Counters::get(&self.counters.coalesced)),
            ),
            (
                "overloads",
                Json::U64(Counters::get(&self.counters.overloads)),
            ),
            (
                "rejected_conns",
                Json::U64(Counters::get(&self.counters.rejected_conns)),
            ),
            (
                "bad_requests",
                Json::U64(Counters::get(&self.counters.bad_requests)),
            ),
            (
                "timeouts",
                Json::U64(Counters::get(&self.counters.timeouts)),
            ),
            ("in_flight", Json::U64(self.inflight.len() as u64)),
            ("hot_resident", Json::U64(self.hot.len() as u64)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::U64(cache.hits)),
                    ("misses", Json::U64(cache.misses)),
                    ("corrupt_entries", Json::U64(cache.corrupt_entries)),
                ]),
            ),
            (
                "config",
                Json::obj([
                    ("max_inflight", Json::U64(self.inflight.capacity() as u64)),
                    ("jobs", Json::U64(self.jobs as u64)),
                ]),
            ),
        ])
    }
}

/// A running server: its bound address plus the handles needed to stop
/// it cleanly.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process inspection (tests, the CLI's exit
    /// summary).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting, drains the worker queue, and joins every thread.
    /// In-flight connection threads finish on their own (each holds its
    /// own `Arc` of the state and has a read timeout).
    pub fn shutdown(mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        // Take (and immediately drop) the queue lock before notifying:
        // a worker that checked `shutdown` as false and is between that
        // check and `queue_cv.wait(...)` would otherwise miss this
        // wakeup and park forever. The scoped guard forces it past the
        // race window first.
        {
            let _queue = self
                .state
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
        }
        self.state.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Binds the listener and spawns the accept loop plus the simulation
/// workers.
///
/// # Errors
///
/// Any I/O error binding the address.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let jobs = vr_runner::effective_workers(config.jobs, usize::MAX);
    let cache = match &config.cache_dir {
        Some(dir) => ResultCache::at(dir.clone()),
        None => ResultCache::disabled(),
    };
    let state = Arc::new(ServeState {
        counters: Counters::default(),
        hot: HotTier::new(config.hot_cap),
        inflight: Inflight::new(config.max_inflight),
        cache,
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        active_conns: AtomicU64::new(0),
        jobs,
        max_conns: config.max_conns.max(1),
        read_timeout: config.read_timeout,
        hook: Arc::clone(&config.hook),
    });

    let workers = (0..jobs)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();

    let accept = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || accept_loop(&listener, &state))
    };

    Ok(ServerHandle {
        addr,
        state,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServeState>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(state);
        // Connection threads are detached: each owns an Arc of the state
        // and is bounded by the read timeout plus one simulation.
        std::thread::spawn(move || handle_connection(&state, stream));
    }
}

fn handle_connection(state: &Arc<ServeState>, mut stream: TcpStream) {
    let watch = Stopwatch::start();
    // Connection cap, checked before reading anything.
    let conns = state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
    if conns > state.max_conns as u64 {
        Counters::bump(&state.counters.rejected_conns);
        let response = Response::text(429, "Too Many Requests", "server connection cap reached\n")
            .with_header("Retry-After", "1");
        let _ = write_response(&mut stream, &response);
        finish_request(state, &watch, None, Outcome::None, &response);
        state.active_conns.fetch_sub(1, Ordering::SeqCst);
        return;
    }

    let _ = stream.set_read_timeout(Some(state.read_timeout));
    match read_request(&mut stream) {
        Ok(request) => {
            Counters::bump(&state.counters.requests);
            let (response, outcome) = route(state, &request);
            if response.status >= 400 && response.status < 500 {
                Counters::bump(&state.counters.bad_requests);
            }
            let _ = write_response(&mut stream, &response);
            finish_request(state, &watch, Some(&request), outcome, &response);
        }
        Err(error) => {
            match &error {
                RecvError::Timeout => Counters::bump(&state.counters.timeouts),
                RecvError::Closed => {}
                _ => Counters::bump(&state.counters.bad_requests),
            }
            if let Some((status, reason)) = error.status() {
                let response = Response::text(status, reason, format!("{}\n", error.message()));
                let _ = write_response(&mut stream, &response);
                finish_request(state, &watch, None, Outcome::None, &response);
            }
        }
    }
    state.active_conns.fetch_sub(1, Ordering::SeqCst);
}

fn finish_request(
    state: &ServeState,
    watch: &Stopwatch,
    request: Option<&Request>,
    outcome: Outcome,
    response: &Response,
) {
    let hash = response
        .headers
        .iter()
        .find(|(name, _)| name == "X-Vrecon-Hash")
        .map(|(_, value)| value.clone());
    state.hook.on_request(&RequestRecord {
        method: request.map_or_else(String::new, |r| r.method.clone()),
        path: request.map_or_else(String::new, |r| r.path.clone()),
        status: response.status,
        outcome,
        hash,
        latency_ms: watch.elapsed_ms(),
        body_bytes: response.body.len(),
    });
}

fn route(state: &Arc<ServeState>, request: &Request) -> (Response, Outcome) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/run") => handle_run(state, &request.body),
        ("GET", "/stats") => (
            Response::json(200, "OK", format!("{}\n", state.stats_json().render())),
            Outcome::None,
        ),
        ("GET", "/healthz") => (Response::text(200, "OK", "ok\n"), Outcome::None),
        (_, "/run") | (_, "/stats") | (_, "/healthz") => (
            Response::text(405, "Method Not Allowed", "method not allowed\n"),
            Outcome::None,
        ),
        _ => (
            Response::text(404, "Not Found", "unknown path\n"),
            Outcome::None,
        ),
    }
}

/// The `/run` pipeline: parse → hash → hot tier → disk tier → coalesce /
/// admit → simulate. The scenario hash travels in the `X-Vrecon-Hash`
/// response header (which is also where the request hook reads it).
fn handle_run(state: &Arc<ServeState>, body: &str) -> (Response, Outcome) {
    let spec = match CheckScenario::parse(body) {
        Ok(spec) => spec,
        Err(why) => {
            return (
                Response::text(400, "Bad Request", format!("bad scenario spec: {why}\n")),
                Outcome::None,
            )
        }
    };
    let (config, trace) = match spec.to_sim() {
        Ok(pair) => pair,
        Err(why) => {
            return (
                Response::text(400, "Bad Request", format!("unrunnable scenario: {why}\n")),
                Outcome::None,
            )
        }
    };
    let scenario = Scenario::new(config, Arc::new(trace));
    let hash = scenario.content_hash();

    if let Some(cached) = state.hot.get(&hash) {
        Counters::bump(&state.counters.hot_hits);
        return (ok_report(&hash, Outcome::Hot, &cached), Outcome::Hot);
    }
    if let Some(text) = state.cache.lookup_raw(&hash) {
        Counters::bump(&state.counters.disk_hits);
        let body = Arc::new(format!("{text}\n"));
        state.hot.put(&hash, Arc::clone(&body));
        return (ok_report(&hash, Outcome::Disk, &body), Outcome::Disk);
    }

    let (slot, outcome) = match state.inflight.try_admit(&hash) {
        Admission::Follower(slot) => {
            Counters::bump(&state.counters.coalesced);
            (slot, Outcome::Coalesced)
        }
        Admission::Leader(slot) => {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.push_back(SimJob {
                hash: hash.clone(),
                scenario,
            });
            drop(queue);
            state.queue_cv.notify_one();
            (slot, Outcome::Miss)
        }
        Admission::Overloaded => {
            Counters::bump(&state.counters.overloads);
            let response = Response::text(
                503,
                "Service Unavailable",
                format!(
                    "simulation admission full ({} in flight); retry shortly\n",
                    state.inflight.capacity()
                ),
            )
            .with_header("Retry-After", "1")
            .with_header("X-Vrecon-Hash", hash);
            return (response, Outcome::None);
        }
    };

    match slot.wait() {
        Ok(body) => (ok_report(&hash, outcome, &body), outcome),
        Err(why) => (
            Response::text(
                500,
                "Internal Server Error",
                format!("simulation failed: {why}\n"),
            )
            .with_header("X-Vrecon-Hash", hash),
            outcome,
        ),
    }
}

fn ok_report(hash: &str, outcome: Outcome, body: &Arc<String>) -> Response {
    Response::json(200, "OK", body.as_str())
        .with_header("X-Vrecon-Outcome", outcome.as_str())
        .with_header("X-Vrecon-Hash", hash)
}

/// One simulation worker: pop, run under `catch_unwind`, publish to the
/// disk and hot tiers, then release the in-flight entry and wake waiters.
fn worker_loop(state: &Arc<ServeState>) {
    loop {
        let job = {
            let mut queue = state.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = state
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };

        let outcome = catch_unwind(AssertUnwindSafe(|| job.scenario.run()))
            .map_err(|payload| panic_message(payload.as_ref()));
        let result = match outcome {
            Ok(report) => {
                Counters::bump(&state.counters.sims_executed);
                let text = encode_report(&report);
                // A failed store is a cold next restart, not a failed
                // request — the bytes still go out on the wire.
                let _ = state.cache.store(&job.hash, &report);
                let body = Arc::new(format!("{text}\n"));
                state.hot.put(&job.hash, Arc::clone(&body));
                Ok(body)
            }
            Err(message) => Err(message),
        };
        // Publish order matters: the hot tier already has the body, so a
        // request landing between `finish` and `fill` re-hits the cache
        // rather than waiting on a dead slot.
        if let Some(slot) = state.inflight.finish(&job.hash) {
            slot.fill(result);
        }
    }
}
