//! Tier-1 self-lint: the workspace must pass its own vr-lint analyzer.
//!
//! This is the enforcement point for the determinism contract — a plain
//! `cargo test -q` fails if anyone reintroduces a `HashMap` in a
//! simulation crate, a wall-clock or environment read outside the
//! orchestration layer, or an unannotated panic site. The rule set and
//! scoping live in `crates/lint`; see ARCHITECTURE.md "Static analysis".

use std::path::Path;

use vr_lint::lint_workspace;

#[test]
fn workspace_passes_vr_lint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace walk succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}); did the walker miss the crates?",
        report.files_scanned
    );
    assert_eq!(
        report.stale_allows, 0,
        "stale allow directives must be deleted, not accumulated"
    );
    assert!(
        report.is_clean(),
        "vr-lint found {} diagnostic(s):\n{}",
        report.diagnostics.len(),
        report.render_text()
    );
}
