//! A guided tour of the **job blocking problem** (§1) and how adaptive
//! virtual reconfiguration resolves it.
//!
//! The synthetic scenario fills an 8-node cluster to ~76 % memory occupancy
//! with "filler" jobs, then injects two "giant" jobs that look harmless at
//! admission (demanding 10 % of node memory) and balloon to 72 % after 20 s
//! of progress. Once ballooned, no workstation has room to take a giant in
//! — migrations are blocked, the giants thrash, and every job sharing a
//! node with them suffers.
//!
//! ```sh
//! cargo run --release --example blocking_problem
//! ```

use vrecon_repro::prelude::*;

fn main() {
    let nodes = 8;
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(nodes);
    let trace = synth::blocking_scenario(nodes, Bytes::from_mb(128));
    println!(
        "scenario: {} jobs ({} ballooning giants) on {} x 128MB workstations\n",
        trace.len(),
        trace.jobs.iter().filter(|j| j.name == "giant").count(),
        nodes
    );

    let mut reports = Vec::new();
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(7)).run(&trace);
        println!("--- {policy} ---");
        println!(
            "blocking detected {} times; {} ordinary migrations possible",
            report.counters.blocking_detections, report.counters.overload_migrations
        );
        if policy == PolicyKind::VReconfiguration {
            println!(
                "reconfiguration: {} reservations, {} giants served on reserved \
                 workstations, {} released unused",
                report.reservations.started,
                report.reservations.jobs_served,
                report.reservations.released_unused
            );
        }
        let giants: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.spec.name == "giant")
            .map(|j| j.slowdown())
            .collect();
        let fillers: Vec<f64> = report
            .jobs
            .iter()
            .filter(|j| j.spec.name == "filler")
            .map(|j| j.slowdown())
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "giant slowdown {:.2}, filler slowdown {:.2}, overall {:.2}",
            mean(&giants),
            mean(&fillers),
            report.avg_slowdown()
        );
        println!(
            "totals: T_cpu {:.0}s  T_page {:.0}s  T_que {:.0}s  T_mig {:.0}s  (makespan {})\n",
            report.summary.totals.cpu,
            report.summary.totals.page,
            report.summary.totals.queue,
            report.summary.totals.migration,
            report.finished_at
        );
        reports.push(report);
    }

    let model = ExecutionTimeModel::from_reports(&reports[0], &reports[1]);
    println!(
        "§5 model: T_exe - T̂_exe = {:.0}s; (ΔT_page + ΔT_que) = {:.0}s",
        model.execution_time_reduction(),
        model.approximate_reduction()
    );
    for check in model.checks(1.0) {
        println!(
            "  [{}] {} — {}",
            if check.holds { "ok" } else { "!!" },
            check.name,
            check.detail
        );
    }
    println!(
        "\nNote how both large and small jobs improve: the giants get dedicated \
     service (no interference), and the fillers stop paying page-fault and \
     queuing penalties — the win-win §2.2 argues for."
    );
}
