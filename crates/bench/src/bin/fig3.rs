//! Regenerates **Figure 3**: total execution times (left) and queuing times
//! (right) of the 5 workload-group-2 traces on a 32-workstation cluster.

use vr_bench::render::figure_panel;
use vr_bench::{paper, run_group, Group};

fn main() {
    println!("Figure 3 — workload group 2 (applications) on cluster 2 (32 nodes)\n");
    let pairs = run_group(Group::App);
    println!(
        "{}",
        figure_panel(
            "left: total execution times (s)",
            &pairs,
            &paper::FIG3_EXEC,
            0,
            |p| p.execution_time(),
        )
    );
    println!(
        "{}",
        figure_panel(
            "right: total queuing times (s)",
            &pairs,
            &paper::FIG3_QUEUE,
            0,
            |p| p.queue_time(),
        )
    );
}
