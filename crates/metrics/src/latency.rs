//! Request-latency accounting for the serving tier.
//!
//! `vrecon loadgen` measures per-request wall-clock latencies against a
//! running `vrecon serve` instance and reduces them here into the figures
//! reported in `BENCH_serve.json`: p50/p99 milliseconds, mean, max, and
//! queries per second. Percentiles use the same interpolated-rank
//! convention as every other distribution in the workspace
//! ([`vr_simcore::stats::percentile`]), so a serve latency table reads
//! like a slowdown table.

use vr_simcore::stats::percentile;

/// Reduced latency distribution of one load-generation phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of requests measured.
    pub count: usize,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Mean request latency, milliseconds.
    pub mean_ms: f64,
    /// Worst request latency, milliseconds.
    pub max_ms: f64,
    /// Completed requests per second of the phase's wall-clock window.
    pub qps: f64,
}

impl LatencySummary {
    /// Reduces per-request latencies (milliseconds) plus the phase's total
    /// wall-clock seconds. An empty phase is all zeros rather than NaN so
    /// the JSON stays comparable field-by-field.
    // vr-analyze::allow(panic-path, reason = "empty input early-returns before percentile(), and the quantiles are the constants 0.50/0.99")
    pub fn of(latencies_ms: &[f64], wall_secs: f64) -> LatencySummary {
        if latencies_ms.is_empty() {
            return LatencySummary {
                count: 0,
                p50_ms: 0.0,
                p99_ms: 0.0,
                mean_ms: 0.0,
                max_ms: 0.0,
                qps: 0.0,
            };
        }
        let mut sorted = latencies_ms.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean_ms = sorted.iter().sum::<f64>() / count as f64;
        let qps = if wall_secs > 0.0 {
            count as f64 / wall_secs
        } else {
            0.0
        };
        LatencySummary {
            count,
            p50_ms: percentile(&sorted, 0.50),
            p99_ms: percentile(&sorted, 0.99),
            mean_ms,
            max_ms: sorted[count - 1],
            qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_percentiles_mean_max_and_qps() {
        let lat: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = LatencySummary::of(&lat, 10.0);
        assert_eq!(s.count, 100);
        assert!((s.p50_ms - 50.5).abs() < 1e-9);
        assert!((s.p99_ms - 99.01).abs() < 1e-9);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert!((s.max_ms - 100.0).abs() < 1e-9);
        assert!((s.qps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_sorted_before_ranking() {
        let s = LatencySummary::of(&[9.0, 1.0, 5.0], 1.0);
        assert!((s.p50_ms - 5.0).abs() < 1e-9);
        assert!((s.max_ms - 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_phase_is_zeros_not_nan() {
        let s = LatencySummary::of(&[], 3.0);
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_ms, 0.0);
        assert_eq!(s.qps, 0.0);
    }

    #[test]
    fn zero_wall_window_yields_zero_qps() {
        let s = LatencySummary::of(&[1.0], 0.0);
        assert_eq!(s.qps, 0.0);
        assert_eq!(s.count, 1);
    }
}
