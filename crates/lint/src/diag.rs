//! Diagnostics: positions, rendering, machine-readable JSON output.

use std::fmt;

/// One finding, anchored to a file position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// The rule that fired (or `stale-allow` / `malformed-directive`).
    pub rule: String,
    /// Human-facing explanation.
    pub message: String,
}

impl Diagnostic {
    /// Stable ordering for reports: by file, position, rule.
    pub fn sort_key(&self) -> (String, u32, u32, String) {
        (self.file.clone(), self.line, self.col, self.rule.clone())
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: error[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The aggregated result of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings (including stale allows), sorted by position.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files analysed.
    pub files_scanned: usize,
    /// Number of well-formed `vr-lint::allow` directives seen.
    pub allows: usize,
    /// How many of those suppressed nothing (each also appears as a
    /// `stale-allow` diagnostic).
    pub stale_allows: usize,
}

impl LintReport {
    /// `true` when nothing fired — the workspace passes.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// rustc-style one-line-per-finding text, with a trailing summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "vr-lint: {} file(s), {} allow directive(s) ({} stale), {} diagnostic(s)",
            self.files_scanned,
            self.allows,
            self.stale_allows,
            self.diagnostics.len()
        ));
        out
    }

    /// Machine-readable JSON (stable field and array order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&d.file),
                d.line,
                d.col,
                json_escape(&d.rule),
                json_escape(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"allows\": {},\n  \"stale_allows\": {}\n}}",
            self.files_scanned, self.allows, self.stale_allows
        ));
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/sim.rs".into(),
            line: 44,
            col: 5,
            rule: "nondeterministic-collection".into(),
            message: "use of `HashMap`".into(),
        }
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        assert_eq!(
            diag().to_string(),
            "crates/core/src/sim.rs:44:5: error[nondeterministic-collection]: use of `HashMap`"
        );
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_report_shape() {
        let report = LintReport {
            diagnostics: vec![diag()],
            files_scanned: 3,
            allows: 2,
            stale_allows: 1,
        };
        let json = report.render_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"line\": 44"));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"stale_allows\": 1"));
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let report = LintReport::default();
        assert!(report.is_clean());
        assert!(report.render_json().contains("\"diagnostics\": []"));
    }
}
