//! Differential testing: the engine vs the naive reference oracle.
//!
//! `vr_check::run_oracle` re-implements the paper's model with linear scans
//! and no clever data structures (no event heap, no load index, no
//! reservation state machine). Here both implementations run the paper's
//! workload-group scenarios and the reports must agree field-for-field —
//! completion timestamps, per-job breakdowns, scheduler counters,
//! reservation stats, gauges, fault counters — within exact-integer /
//! tiny-float tolerance. A deliberately skewed oracle proves the differ
//! actually fails on a mismatch.

use vr_check::{run_oracle, OracleSkew};
use vr_workload::trace::{spec_trace_scaled, TraceLevel};
use vrecon_repro::prelude::*;

const NODES: usize = 8;
const TRACE_SEED: u64 = 42;
const SCHED_SEED: u64 = 7;
const LIFETIME_SCALE: f64 = 0.05;

fn reduced_cluster() -> ClusterParams {
    let mut cluster = ClusterParams::cluster1();
    cluster.nodes.truncate(NODES);
    cluster
}

fn check_level(level: TraceLevel, policy: PolicyKind) {
    let trace = spec_trace_scaled(level, &mut SimRng::seed_from(TRACE_SEED), LIFETIME_SCALE);
    let config = SimConfig::new(reduced_cluster(), policy).with_seed(SCHED_SEED);
    let engine = Simulation::new(config.clone()).run(&trace);
    let oracle = run_oracle(&config, &trace, OracleSkew::None)
        .unwrap_or_else(|e| panic!("{level:?}/{policy}: oracle rejected scenario: {e}"));
    let diff = compare_reports(&engine, &oracle, 1e-9);
    assert!(
        diff.is_match(),
        "{level:?}/{policy}: engine and oracle diverged:\n{}",
        diff.render()
    );
}

#[test]
fn engine_matches_oracle_fig1_light_load() {
    check_level(TraceLevel::Light, PolicyKind::GLoadSharing);
    check_level(TraceLevel::Light, PolicyKind::VReconfiguration);
}

#[test]
fn engine_matches_oracle_fig1_normal_load() {
    check_level(TraceLevel::Normal, PolicyKind::GLoadSharing);
    check_level(TraceLevel::Normal, PolicyKind::VReconfiguration);
}

#[test]
fn engine_matches_oracle_fig2_highly_intensive_load() {
    check_level(TraceLevel::HighlyIntensive, PolicyKind::GLoadSharing);
    check_level(TraceLevel::HighlyIntensive, PolicyKind::VReconfiguration);
}

/// The negative control: a differ that cannot fail proves nothing. With
/// the oracle's completion timestamps skewed by one microsecond, the
/// comparison must report a divergence on every completed job.
#[test]
fn skewed_oracle_is_detected() {
    let trace = spec_trace_scaled(
        TraceLevel::Light,
        &mut SimRng::seed_from(TRACE_SEED),
        LIFETIME_SCALE,
    );
    let config = SimConfig::new(reduced_cluster(), PolicyKind::GLoadSharing).with_seed(SCHED_SEED);
    let engine = Simulation::new(config.clone()).run(&trace);
    let skewed = run_oracle(&config, &trace, OracleSkew::CompletionOffByOne).unwrap();
    let diff = compare_reports(&engine, &skewed, 1e-9);
    assert!(
        !diff.is_match(),
        "the skewed oracle must diverge from the engine"
    );
    let completed = engine
        .jobs
        .iter()
        .filter(|j| j.completed_at.is_some())
        .count();
    assert!(completed > 0, "scenario completed no jobs");
    assert!(
        diff.render().contains("completed_at"),
        "divergence must name the skewed field:\n{}",
        diff.render()
    );
}
