//! Compares all five scheduling policies — no load sharing, random,
//! CPU-only balancing, G-Loadsharing, and V-Reconfiguration — across the
//! five arrival intensities of workload group 2.
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

use vrecon_repro::metrics::table::{fmt_f, TextTable};
use vrecon_repro::prelude::*;

fn main() {
    let cluster = ClusterParams::cluster2();
    let mut table = TextTable::new(vec![
        "trace",
        "No-Loadsharing",
        "Random",
        "CPU-Only",
        "Weighted-CPU-Mem",
        "G-Loadsharing",
        "Suspend-Largest",
        "V-Reconfiguration",
    ]);
    println!("average slowdowns on cluster 2 (lower is better); this sweeps");
    println!("5 traces x 7 policies = 35 simulations, give it a minute...\n");
    for level in TraceLevel::ALL {
        let trace = app_trace(level, &mut SimRng::seed_from(42));
        let mut row = vec![trace.name.clone()];
        for policy in PolicyKind::ALL {
            let report =
                Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(7)).run(&trace);
            assert!(
                report.all_completed(),
                "{policy} left {} jobs unfinished",
                report.unfinished_jobs
            );
            row.push(fmt_f(report.avg_slowdown(), 2));
        }
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "The ordering the paper's introduction predicts: ignoring memory\n\
         (Random / CPU-Only) loses badly to memory-aware load sharing, and\n\
         V-Reconfiguration improves on G-Loadsharing wherever large jobs\n\
         block the cluster.\n\n\
         Note Suspend-Largest's seductive averages: evicting the big jobs\n\
         is shortest-remaining-time-first by force, and the mean rewards\n\
         it. The paper rejects it anyway - run the ablation binary to see\n\
         the large jobs' slowdowns and the fairness index it trades away."
    );
}
