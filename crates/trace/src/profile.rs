//! Profiling counters accumulated alongside the trace.

use std::collections::BTreeMap;

use vr_simcore::histogram::Histogram;
use vr_simcore::jsonio::Json;

use crate::TRACE_SCHEMA_VERSION;

/// Counters describing the event stream of one run: how many engine events
/// fired, how many trace records of each kind, and the distribution of
/// inter-event gaps in simulated time.
///
/// Everything here is simulation-deterministic. Wall-clock throughput
/// (events/sec) is deliberately *not* measured in this crate — the
/// orchestration layer times the run and passes the wall seconds into
/// [`TraceProfile::to_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Engine events dispatched (one per `EventHook::after_event` call).
    pub engine_events: u64,
    /// Trace records per event-kind token, in token order.
    pub kind_counts: BTreeMap<&'static str, u64>,
    /// Inter-event gaps in simulated microseconds, log-bucketed from 1 µs
    /// to 1000 s with a dedicated leading `[0, 1)` bucket. Simulated time is
    /// integer microseconds, so every sub-microsecond gap is exactly zero —
    /// same-instant events, the common case whenever the periodic tick
    /// streams and a burst of arrivals share a timestamp — and those are
    /// *measured* in the zero bucket rather than counted as underflow.
    pub gap_micros: Histogram,
}

impl TraceProfile {
    /// An empty profile with the standard gap-histogram shape.
    // vr-analyze::allow(panic-path, reason = "the gap-histogram shape is a compile-time constant that logarithmic_with_zero() accepts")
    pub fn new() -> Self {
        TraceProfile {
            engine_events: 0,
            kind_counts: BTreeMap::new(),
            gap_micros: Histogram::logarithmic_with_zero(1.0, 1_000_000_000.0, 18),
        }
    }

    /// Renders the profile as JSON (the `BENCH_profile.json` payload).
    ///
    /// `wall_secs`, when provided by the caller that timed the run, adds
    /// derived wall-clock fields (`wall_secs`, `events_per_sec`) — the only
    /// non-deterministic fields, and only ever injected from outside.
    pub fn to_json(&self, wall_secs: Option<f64>) -> Json {
        let mut fields = vec![
            ("schema".to_string(), Json::U64(TRACE_SCHEMA_VERSION)),
            ("engine_events".to_string(), Json::U64(self.engine_events)),
        ];
        if let Some(wall) = wall_secs {
            fields.push(("wall_secs".to_string(), Json::f64(wall)));
            let rate = if wall > 0.0 {
                self.engine_events as f64 / wall
            } else {
                0.0
            };
            fields.push(("events_per_sec".to_string(), Json::f64(rate)));
        }
        fields.push((
            "kinds".to_string(),
            Json::obj(
                self.kind_counts
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::U64(*v))),
            ),
        ));
        fields.push((
            "inter_event_micros".to_string(),
            histogram_json(&self.gap_micros),
        ));
        Json::Obj(fields)
    }
}

impl Default for TraceProfile {
    fn default() -> Self {
        TraceProfile::new()
    }
}

/// `{underflow, overflow, buckets: [[lo, hi, count], ...]}` — only the
/// non-empty buckets, so profiles stay compact.
fn histogram_json(h: &Histogram) -> Json {
    let buckets: Vec<Json> = h
        .buckets()
        .filter(|&(_, _, count)| count > 0)
        .map(|(lo, hi, count)| Json::Arr(vec![Json::f64(lo), Json::f64(hi), Json::U64(count)]))
        .collect();
    Json::obj([
        ("underflow", Json::U64(h.underflow())),
        ("overflow", Json::U64(h.overflow())),
        ("buckets", Json::Arr(buckets)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_deterministic_and_parses() {
        let mut p = TraceProfile::new();
        p.engine_events = 3;
        p.kind_counts.insert("placed", 2);
        p.kind_counts.insert("submitted", 1);
        p.gap_micros.record(1_000_000.0);
        let a = p.to_json(None).render();
        let b = p.to_json(None).render();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("profile JSON parses");
        assert_eq!(parsed.get("engine_events").and_then(Json::as_u64), Some(3));
        assert!(parsed.get("wall_secs").is_none());
    }

    #[test]
    fn zero_gaps_are_measured_not_underflowed() {
        // Snapshot of the histogram JSON with same-instant events present:
        // the zero gap lands in the dedicated [0, 1) bucket, underflow stays
        // zero, and the encoding is byte-stable.
        let mut p = TraceProfile::new();
        p.engine_events = 4;
        p.gap_micros.record(0.0); // same-instant pair
        p.gap_micros.record(0.0);
        p.gap_micros.record(1.0); // 1 µs
        let json = p.to_json(None).render();
        let hist = Json::parse(&json)
            .expect("profile JSON parses")
            .get("inter_event_micros")
            .cloned()
            .expect("histogram present");
        assert_eq!(hist.get("underflow").and_then(Json::as_u64), Some(0));
        assert_eq!(hist.get("overflow").and_then(Json::as_u64), Some(0));
        assert_eq!(
            hist.get("buckets").unwrap().render(),
            "[[0.0,1.0,2],[1.0,3.162277660168379,1]]"
        );
    }

    #[test]
    fn wall_clock_fields_are_injected_not_measured() {
        let mut p = TraceProfile::new();
        p.engine_events = 100;
        let j = p.to_json(Some(2.0));
        assert_eq!(j.get("events_per_sec").and_then(Json::as_f64), Some(50.0));
        assert_eq!(j.get("wall_secs").and_then(Json::as_f64), Some(2.0));
    }
}
