pub fn to_mb(bytes: u64) -> u32 {
    (bytes / (1 << 20)) as u32
}

pub fn widening_is_fine(pages: u32) -> u64 {
    pages as u64
}
