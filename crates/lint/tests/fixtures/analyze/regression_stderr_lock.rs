// Regression shape: the sweep runner once passed `stderr().lock()` into
// its (declared-blocking) progress renderer, pinning the global stderr
// lock for the whole sweep and deadlocking any worker `eprintln!`.
// vr-analyze::blocking(reason = "fixture: drains a channel until senders hang up")
pub fn render(events: Receiver<u64>, out: impl Write) -> u64 {
    let mut seen = 0;
    for _event in events {
        seen += 1;
    }
    seen
}

pub fn sweep_broken(events: Receiver<u64>) -> u64 {
    render(events, std::io::stderr().lock())
}

pub fn sweep_fixed(events: Receiver<u64>) -> u64 {
    render(events, std::io::stderr())
}
