//! The workstation: resident jobs advanced lazily through simulated time.
//!
//! A [`Workstation`] integrates its resident jobs' progress *piecewise* from
//! the last touch point to "now": within a segment the job population,
//! working sets, and therefore processor-sharing rates are constant, so
//! progress is linear; segments end at job completions or memory-phase
//! boundaries. This makes the cluster simulation O(events) instead of
//! O(clock ticks).
//!
//! The driver protocol is: call [`Workstation::advance_to`] (or any mutator,
//! which advances internally) whenever the node is touched, then ask
//! [`Workstation::next_event_in`] for the delay until the node next needs a
//! wake-up, and drain [`Workstation::take_completed`].

use serde::{Deserialize, Serialize};
use std::fmt;
use vr_simcore::time::{SimSpan, SimTime};

use crate::cpu::{CpuParams, ServiceSlice};
use crate::job::{JobId, JobState, RunningJob};
use crate::memory::{FaultModel, MemoryParams, MemoryUsage};
use crate::protection::ThrashingProtection;
use crate::units::Bytes;

/// Identifies a workstation within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Static configuration of one workstation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeParams {
    /// CPU model.
    pub cpu: CpuParams,
    /// Memory capacities and fault constants.
    pub memory: MemoryParams,
    /// Page-fault model.
    pub fault_model: FaultModel,
    /// Intra-node thrashing protection (TPF, the paper's ref \[6]).
    pub protection: ThrashingProtection,
}

/// Why a job could not be admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// All CPU job slots are taken (the CPU threshold).
    NoSlot,
    /// Admitting the job would exceed user memory plus swap.
    MemoryExhausted,
    /// The node is reserved for special service.
    Reserved,
    /// The node has crashed and not (yet) restarted.
    Down,
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::NoSlot => f.write_str("no CPU job slot available"),
            AdmitError::MemoryExhausted => f.write_str("user memory and swap exhausted"),
            AdmitError::Reserved => f.write_str("workstation is reserved"),
            AdmitError::Down => f.write_str("workstation is down"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// A job bounced by [`Workstation::try_admit`], handed back to the caller.
#[derive(Debug)]
pub struct RejectedJob {
    /// The job, unchanged.
    pub job: RunningJob,
    /// Why it was rejected.
    pub reason: AdmitError,
}

/// Cumulative per-node counters for utilization reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeCounters {
    /// CPU seconds delivered to jobs.
    pub delivered_cpu: f64,
    /// Page-fault stall seconds endured by jobs on this node.
    pub page_stall: f64,
    /// Jobs admitted (locally or remotely).
    pub admitted: u64,
    /// Jobs that ran to completion here.
    pub completed: u64,
    /// Jobs migrated away.
    pub migrated_out: u64,
    /// I/O operations issued by resident jobs (io_rate × CPU progress) —
    /// the paper's kernel facility monitors per-job read/write operations
    /// and the buffer-cache status (§3.1).
    pub io_ops: f64,
}

/// Progress integration below this granularity (seconds) is treated as zero.
const EPS: f64 = 1e-9;

/// A phase boundary closer than this (in progress seconds) counts as already
/// crossed. [`RunningJob::progress`] rounds to whole microseconds, so a
/// sub-microsecond gap means [`MemoryProfile::working_set_at`] already reads
/// the next phase; treating it as pending would produce zero-length
/// integration segments (and zero-delay wake events) forever.
///
/// [`MemoryProfile::working_set_at`]: crate::job::MemoryProfile::working_set_at
const BOUNDARY_EPS: f64 = 1e-6;

/// Reusable buffers for the per-segment rate computation, so the
/// integration hot path performs no allocation once warmed up.
#[derive(Debug, Clone, Default)]
struct RateScratch {
    working_sets: Vec<Bytes>,
    stalls: Vec<f64>,
    rates: Vec<f64>,
    remaining: Vec<f64>,
}

/// A simulated workstation with lazily advanced resident jobs.
#[derive(Debug, Clone)]
pub struct Workstation {
    id: NodeId,
    params: NodeParams,
    jobs: Vec<RunningJob>,
    last_update: SimTime,
    epoch: u64,
    reserved: bool,
    up: bool,
    completed: Vec<RunningJob>,
    counters: NodeCounters,
    /// Multiplier applied to page-fault stalls (1.0 = local disk; < 1.0
    /// when network RAM serves faults from remote memory).
    stall_scale: f64,
    /// Effective job-slot ceiling. Defaults to the hardware slot count;
    /// fractional (time-sharing) policies raise it above the hardware
    /// count to oversubscribe the CPU.
    slot_cap: u32,
    /// Cached sum of resident job widths (classic jobs have width 1), so
    /// slot accounting stays O(1) under malleable widths.
    used_slots: u32,
    /// Cached sum of resident working sets, maintained incrementally on
    /// admit/remove and re-derived after each advancement (working sets
    /// drift across memory phases). Makes [`Workstation::memory_usage`]
    /// O(1) instead of O(jobs).
    demand: Bytes,
    /// Rate-computation buffers, behind a `RefCell` so the `&self` paths
    /// ([`Workstation::next_event_in`]) reuse them too.
    scratch: std::cell::RefCell<RateScratch>,
}

impl Workstation {
    /// Creates an idle workstation.
    pub fn new(id: NodeId, params: NodeParams) -> Self {
        let slot_cap = params.cpu.slots;
        Workstation {
            id,
            params,
            jobs: Vec::new(),
            last_update: SimTime::ZERO,
            epoch: 0,
            reserved: false,
            up: true,
            completed: Vec::new(),
            counters: NodeCounters::default(),
            stall_scale: 1.0,
            slot_cap,
            used_slots: 0,
            demand: Bytes::ZERO,
            scratch: std::cell::RefCell::new(RateScratch::default()),
        }
    }

    /// The workstation's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The workstation's configuration.
    pub fn params(&self) -> &NodeParams {
        &self.params
    }

    /// Resident jobs (read-only).
    pub fn jobs(&self) -> &[RunningJob] {
        &self.jobs
    }

    /// Number of resident jobs.
    pub fn active_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if a CPU job slot is free (against the effective cap, which
    /// fractional policies may raise above the hardware count).
    pub fn has_slot(&self) -> bool {
        self.used_slots < self.slot_cap
    }

    /// Effective job-slot ceiling (see [`Workstation::set_slot_cap`]).
    pub fn slot_cap(&self) -> u32 {
        self.slot_cap
    }

    /// Slots currently consumed by resident jobs (the sum of their widths;
    /// classic jobs are width 1).
    pub fn used_slots(&self) -> u32 {
        self.used_slots
    }

    /// Overrides the effective slot ceiling, e.g. when a fractional
    /// (time-sharing) policy oversubscribes the CPU. Never lowered below
    /// one; lowering below the current occupancy only blocks further
    /// admissions (resident jobs are untouched).
    pub fn set_slot_cap(&mut self, cap: u32) {
        let cap = cap.max(1);
        if self.slot_cap != cap {
            self.slot_cap = cap;
            self.epoch += 1;
        }
    }

    /// Current memory occupancy (as of the last advancement). O(1): reads
    /// the incrementally maintained demand cache.
    pub fn memory_usage(&self) -> MemoryUsage {
        debug_assert_eq!(
            self.demand,
            self.jobs.iter().map(|j| j.current_working_set()).sum(),
            "cached demand out of sync with resident working sets"
        );
        MemoryUsage {
            demand: self.demand,
            user: self.params.memory.user,
        }
    }

    /// Memory occupancy re-derived from the resident jobs, bypassing the
    /// demand cache — the old full-rescan detector, kept as the reference
    /// for [`memory_usage`](Workstation::memory_usage) in differential
    /// tests (`DetectorMode::Rescan`).
    pub fn memory_usage_rescan(&self) -> MemoryUsage {
        MemoryUsage {
            demand: self.jobs.iter().map(|j| j.current_working_set()).sum(),
            user: self.params.memory.user,
        }
    }

    /// Idle user memory (as of the last advancement).
    pub fn idle_memory(&self) -> Bytes {
        self.memory_usage().idle()
    }

    /// `true` if resident demand exceeds user memory, i.e. the node is
    /// experiencing page faults.
    pub fn is_faulting(&self) -> bool {
        self.memory_usage().is_oversubscribed()
    }

    /// Reservation flag (see the paper's `reservation_flag`).
    pub fn is_reserved(&self) -> bool {
        self.reserved
    }

    /// `false` while the node is crashed (see [`Workstation::crash`]).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Crashes the node at `now`: resident jobs are drained and returned to
    /// the caller (they are *not* counted as migrated out — the scheduler
    /// decides their fate), the reservation flag is dropped, and further
    /// admissions fail with [`AdmitError::Down`] until
    /// [`Workstation::restart`].
    ///
    /// Jobs are advanced to `now` first, so any that completed before the
    /// crash land in the completion outbox rather than the drained set.
    pub fn crash(&mut self, now: SimTime) -> Vec<RunningJob> {
        self.advance_to(now);
        self.up = false;
        self.reserved = false;
        self.epoch += 1;
        self.demand = Bytes::ZERO;
        self.used_slots = 0;
        std::mem::take(&mut self.jobs)
    }

    /// Brings a crashed node back up, empty and unreserved. A no-op on a
    /// node that is already up.
    pub fn restart(&mut self, now: SimTime) {
        if self.up {
            return;
        }
        self.last_update = self.last_update.max(now);
        self.up = true;
        self.epoch += 1;
    }

    /// Sets the reservation flag, bumping the epoch.
    pub fn set_reserved(&mut self, reserved: bool) {
        if self.reserved != reserved {
            self.reserved = reserved;
            self.epoch += 1;
        }
    }

    /// The current page-fault stall multiplier (see
    /// [`Workstation::set_stall_scale`]).
    pub fn stall_scale(&self) -> f64 {
        self.stall_scale
    }

    /// Sets the page-fault stall multiplier, e.g. when network RAM becomes
    /// available (`< 1.0`) or exhausted (`1.0`). The caller must have
    /// advanced the node to the current instant first — changing the scale
    /// rewrites the node's future, so the epoch is bumped.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < scale <= 1`.
    pub fn set_stall_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "stall scale must be in (0, 1], got {scale}"
        );
        if (self.stall_scale - scale).abs() > 1e-12 {
            self.stall_scale = scale;
            self.epoch += 1;
        }
    }

    /// Monotonic counter bumped whenever the node's future changes
    /// (admission, removal, completion, reservation). Schedulers tag wake
    /// events with the epoch and discard stale ones.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative utilization counters.
    pub fn counters(&self) -> NodeCounters {
        self.counters
    }

    /// Timestamp of the last advancement.
    pub fn last_update(&self) -> SimTime {
        self.last_update
    }

    /// Drains jobs that completed since the last call.
    pub fn take_completed(&mut self) -> Vec<RunningJob> {
        std::mem::take(&mut self.completed)
    }

    /// Completions waiting in the outbox, without draining them (for
    /// observers that must not perturb the node).
    pub fn pending_completions(&self) -> &[RunningJob] {
        &self.completed
    }

    /// Checks whether `job` could be admitted right now, without admitting.
    ///
    /// Only *hard* constraints are checked (slots, memory + swap ceiling,
    /// reservation); policy-level rules such as "has idle memory" belong to
    /// the scheduler.
    pub fn can_admit(&self, job: &RunningJob) -> Result<(), AdmitError> {
        if !self.up {
            return Err(AdmitError::Down);
        }
        if self.reserved {
            return Err(AdmitError::Reserved);
        }
        if self.used_slots + job.width > self.slot_cap {
            return Err(AdmitError::NoSlot);
        }
        let after = self.memory_usage().demand + job.current_working_set();
        if after > self.params.memory.capacity_limit() {
            return Err(AdmitError::MemoryExhausted);
        }
        Ok(())
    }

    /// Admits a job, advancing the node to `now` first.
    ///
    /// Reserved nodes reject ordinary admissions; use
    /// [`Workstation::admit_to_reserved`] for the special service placement.
    ///
    /// # Errors
    ///
    /// Returns the job back inside [`RejectedJob`] if a hard constraint
    /// fails.
    pub fn try_admit(&mut self, mut job: RunningJob, now: SimTime) -> Result<(), Box<RejectedJob>> {
        self.advance_to(now);
        if let Err(reason) = self.can_admit(&job) {
            return Err(Box::new(RejectedJob { job, reason }));
        }
        job.state = JobState::Running;
        self.demand += job.current_working_set();
        self.used_slots += job.width;
        self.jobs.push(job);
        self.counters.admitted += 1;
        self.epoch += 1;
        Ok(())
    }

    /// Places a job on a *reserved* node (the virtual-reconfiguration
    /// special service). Skips the reservation check but still enforces the
    /// slot and memory ceilings.
    ///
    /// # Errors
    ///
    /// Returns the job back if slots or memory + swap are exhausted.
    pub fn admit_to_reserved(
        &mut self,
        mut job: RunningJob,
        now: SimTime,
    ) -> Result<(), Box<RejectedJob>> {
        self.advance_to(now);
        if !self.up {
            return Err(Box::new(RejectedJob {
                job,
                reason: AdmitError::Down,
            }));
        }
        if self.used_slots + job.width > self.slot_cap {
            return Err(Box::new(RejectedJob {
                job,
                reason: AdmitError::NoSlot,
            }));
        }
        let after = self.memory_usage().demand + job.current_working_set();
        if after > self.params.memory.capacity_limit() {
            return Err(Box::new(RejectedJob {
                job,
                reason: AdmitError::MemoryExhausted,
            }));
        }
        job.state = JobState::Running;
        self.demand += job.current_working_set();
        self.used_slots += job.width;
        self.jobs.push(job);
        self.counters.admitted += 1;
        self.epoch += 1;
        Ok(())
    }

    /// Removes a resident job (for migration), advancing the node to `now`
    /// first. Returns `None` if the job is not resident (it may have just
    /// completed).
    pub fn remove_job(&mut self, id: JobId, now: SimTime) -> Option<RunningJob> {
        self.advance_to(now);
        let idx = self.jobs.iter().position(|j| j.id() == id)?;
        let job = self.jobs.swap_remove(idx);
        self.demand = self.demand.saturating_sub(job.current_working_set());
        self.used_slots = self.used_slots.saturating_sub(job.width);
        self.counters.migrated_out += 1;
        self.epoch += 1;
        Some(job)
    }

    /// Advances all resident jobs to `now`, accumulating their wall-clock
    /// breakdowns and collecting completions into the outbox.
    ///
    /// Calling with `now` in the past is a no-op (tolerated because multiple
    /// events can share a timestamp).
    // vr-analyze::allow(panic-path, reason = "the only span minted is `remaining.max(0.0)`, bounded by the span it was derived from")
    pub fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let mut remaining = (now - self.last_update).as_secs_f64();
        let mut advanced = false;
        while remaining > EPS && !self.jobs.is_empty() {
            advanced = true;
            let mut scratch = self.scratch.borrow_mut();
            // Time until the earliest completion or phase boundary.
            let mut dt = remaining;
            if self.fused_rates_apply() {
                // Fused fast path (paper-standard configuration): stall and
                // rate reduce to job-independent scalars applied per working
                // set, so one pass computes both buffers *and* folds the dt
                // candidates — the arithmetic per value is identical term
                // for term to [`Workstation::fill_rates`], only the loop
                // structure differs.
                let total: Bytes = self.jobs.iter().map(|j| j.current_working_set()).sum();
                let curve = self.params.fault_model.stall_curve(
                    total,
                    self.jobs.len(),
                    self.params.memory.user,
                );
                let share = self.params.cpu.progress_share(self.jobs.len());
                scratch.stalls.clear();
                scratch.rates.clear();
                for job in &self.jobs {
                    let s = curve.stall(job.current_working_set());
                    let r = share / (1.0 + s);
                    scratch.stalls.push(s);
                    scratch.rates.push(r);
                    if r > 0.0 {
                        dt = dt.min(job.remaining_secs() / r);
                        if let Some(boundary) = job.next_phase_boundary() {
                            let gap = boundary.as_secs_f64() - job.progress_secs;
                            if gap > BOUNDARY_EPS {
                                dt = dt.min(gap / r);
                            }
                        }
                    }
                }
            } else {
                Self::fill_rates(&self.params, &self.jobs, self.stall_scale, &mut scratch);
                let rates = &scratch.rates;
                for (i, job) in self.jobs.iter().enumerate() {
                    if rates[i] <= 0.0 {
                        continue;
                    }
                    let to_completion = job.remaining_secs() / rates[i];
                    dt = dt.min(to_completion);
                    if let Some(boundary) = job.next_phase_boundary() {
                        let gap = boundary.as_secs_f64() - job.progress_secs;
                        if gap > BOUNDARY_EPS {
                            dt = dt.min(gap / rates[i]);
                        }
                    }
                }
            }
            let RateScratch { rates, stalls, .. } = &*scratch;
            let dt = dt.max(0.0);
            // Integrate the segment.
            for (i, job) in self.jobs.iter_mut().enumerate() {
                let slice = ServiceSlice::split(dt, rates[i], stalls[i]);
                job.progress_secs += slice.cpu;
                job.breakdown.cpu += slice.cpu;
                job.breakdown.page += slice.page;
                job.breakdown.queue += slice.queue;
                self.counters.delivered_cpu += slice.cpu;
                self.counters.page_stall += slice.page;
                self.counters.io_ops += slice.cpu * job.spec.io_rate;
            }
            drop(scratch);
            remaining -= dt;
            // Collect completions at the segment end.
            let completion_time = now - SimSpan::from_secs_f64(remaining.max(0.0));
            let mut collected = 0usize;
            let mut i = 0;
            while i < self.jobs.len() {
                if self.jobs[i].remaining_secs() <= EPS {
                    let mut done = self.jobs.swap_remove(i);
                    done.state = JobState::Completed;
                    done.completed_at = Some(completion_time);
                    done.progress_secs = done.spec.cpu_work.as_secs_f64();
                    self.used_slots = self.used_slots.saturating_sub(done.width);
                    self.counters.completed += 1;
                    self.completed.push(done);
                    self.epoch += 1;
                    collected += 1;
                } else {
                    i += 1;
                }
            }
            if dt <= EPS && collected == 0 && !self.jobs.is_empty() {
                // No progress possible (all rates zero): avoid spinning.
                break;
            }
        }
        if advanced {
            // Progress may have crossed memory-phase boundaries (and
            // completions left); re-derive the demand cache once per
            // advancement instead of on every read.
            self.demand = self.jobs.iter().map(|j| j.current_working_set()).sum();
        }
        self.last_update = now;
    }

    /// The delay from the last advancement until this node next needs a
    /// wake-up (a completion or a memory-phase boundary), or `None` if it is
    /// idle.
    ///
    /// # Panics
    ///
    /// Panics if a job's projected completion is too far away to represent
    /// as a span (a progress rate pathologically close to zero under an
    /// extreme stall curve).
    pub fn next_event_in(&self) -> Option<SimSpan> {
        if self.jobs.is_empty() {
            return None;
        }
        let mut earliest = f64::INFINITY;
        if self.fused_rates_apply() {
            // Allocation-free fused pass; see the twin in
            // [`Workstation::advance_to`] for the equivalence argument.
            let total: Bytes = self.jobs.iter().map(|j| j.current_working_set()).sum();
            let curve = self.params.fault_model.stall_curve(
                total,
                self.jobs.len(),
                self.params.memory.user,
            );
            let share = self.params.cpu.progress_share(self.jobs.len());
            for job in &self.jobs {
                let r = share / (1.0 + curve.stall(job.current_working_set()));
                if r <= 0.0 {
                    continue;
                }
                earliest = earliest.min(job.remaining_secs() / r);
                if let Some(boundary) = job.next_phase_boundary() {
                    let gap = boundary.as_secs_f64() - job.progress_secs;
                    if gap > BOUNDARY_EPS {
                        earliest = earliest.min(gap / r);
                    }
                }
            }
        } else {
            let mut scratch = self.scratch.borrow_mut();
            Self::fill_rates(&self.params, &self.jobs, self.stall_scale, &mut scratch);
            let rates = &scratch.rates;
            for (i, job) in self.jobs.iter().enumerate() {
                if rates[i] <= 0.0 {
                    continue;
                }
                earliest = earliest.min(job.remaining_secs() / rates[i]);
                if let Some(boundary) = job.next_phase_boundary() {
                    let gap = boundary.as_secs_f64() - job.progress_secs;
                    if gap > BOUNDARY_EPS {
                        earliest = earliest.min(gap / rates[i]);
                    }
                }
            }
        }
        if earliest.is_finite() {
            Some(SimSpan::from_secs_f64(earliest.max(0.0)))
        } else {
            None
        }
    }

    /// `true` when the fused single-pass rate computation applies: thrashing
    /// protection off and no network-RAM stall scaling, so stall factors and
    /// rates are pure per-job functions of one [`StallCurve`] and one CPU
    /// share. Everything else falls back to [`Workstation::fill_rates`].
    fn fused_rates_apply(&self) -> bool {
        self.params.protection == ThrashingProtection::Off
            // vr-lint::allow(float-eq, reason = "sentinel check: 1.0 is the exact no-scaling default, assigned verbatim and never computed")
            && self.stall_scale == 1.0
            && self.used_slots as usize == self.jobs.len()
    }

    /// Fills `scratch.rates` / `scratch.stalls` for the given job set. An
    /// associated function over disjoint fields (rather than `&self`) so
    /// [`Workstation::advance_to`] can keep `jobs` mutably borrowed around
    /// the scratch buffers. Arithmetic is identical to the historical
    /// allocating implementation, term for term.
    fn fill_rates(
        params: &NodeParams,
        jobs: &[RunningJob],
        stall_scale: f64,
        scratch: &mut RateScratch,
    ) {
        scratch.working_sets.clear();
        scratch
            .working_sets
            .extend(jobs.iter().map(|j| j.current_working_set()));
        params.fault_model.stall_factors_into(
            &scratch.working_sets,
            params.memory.user,
            &mut scratch.stalls,
        );
        if params.protection != ThrashingProtection::Off {
            scratch.remaining.clear();
            scratch
                .remaining
                .extend(jobs.iter().map(|j| j.remaining_secs()));
            params.protection.apply(
                &mut scratch.stalls,
                &scratch.working_sets,
                &scratch.remaining,
            );
        }
        // vr-lint::allow(float-eq, reason = "sentinel check: 1.0 is the exact no-scaling default, assigned verbatim and never computed")
        if stall_scale != 1.0 {
            for s in &mut scratch.stalls {
                *s *= stall_scale;
            }
        }
        let total_width: u32 = jobs.iter().map(|j| j.width).sum();
        if total_width as usize == jobs.len() {
            // All widths 1 (classic policies): the historical arithmetic,
            // term for term.
            params
                .cpu
                .progress_rates_into(&scratch.stalls, &mut scratch.rates);
        } else {
            // Width-aware generalization: a width-w job holds w of the
            // W = Σ widths logical slots, so it receives w equal shares of
            // the processor-sharing rate at multiprogramming level W.
            // Reduces to the classic expression when every width is 1.
            let share = params.cpu.progress_share(total_width as usize);
            scratch.rates.clear();
            for (s, job) in scratch.stalls.iter().zip(jobs) {
                scratch.rates.push(share * job.width as f64 / (1.0 + s));
            }
        }
    }

    /// Changes a resident job's slot width in place (malleable
    /// scheduling), advancing the node to `now` first. Returns `false`
    /// without side effects when the job is not resident, the width is
    /// unchanged, or growing would exceed the slot cap.
    pub fn resize_job(&mut self, id: JobId, new_width: u32, now: SimTime) -> bool {
        self.advance_to(now);
        let Some(job) = self.jobs.iter_mut().find(|j| j.id() == id) else {
            return false;
        };
        let old = job.width;
        if new_width == old || new_width == 0 {
            return false;
        }
        if new_width > old && self.used_slots - old + new_width > self.slot_cap {
            return false;
        }
        job.width = new_width;
        self.used_slots = self.used_slots - old + new_width;
        self.epoch += 1;
        true
    }

    /// The resident job with the largest current memory demand, if any —
    /// the paper's `find_most_memory_intensive_job()`.
    pub fn most_memory_intensive_job(&self) -> Option<&RunningJob> {
        self.jobs
            .iter()
            .max_by_key(|j| (j.current_working_set(), std::cmp::Reverse(j.id())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobClass, JobSpec, MemoryProfile};

    fn params() -> NodeParams {
        NodeParams {
            cpu: CpuParams {
                speed: 1.0,
                quantum: SimSpan::from_millis(100),
                context_switch: SimSpan::ZERO, // exact arithmetic in tests
                slots: 4,
            },
            memory: MemoryParams::with_capacity(Bytes::from_mb(128), Bytes::from_mb(128)),
            fault_model: FaultModel::LinearOverflow { kappa: 4.0 },
            protection: ThrashingProtection::Off,
        }
    }

    fn job(id: u64, ws_mb: u64, cpu_secs: f64) -> RunningJob {
        RunningJob::new(JobSpec {
            id: JobId(id),
            name: format!("j{id}"),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs_f64(cpu_secs),
            memory: MemoryProfile::constant(Bytes::from_mb(ws_mb)),
            io_rate: 0.0,
            malleable: None,
        })
    }

    #[test]
    fn lone_job_completes_on_schedule() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 60.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(59));
        assert!(node.take_completed().is_empty());
        node.advance_to(SimTime::from_secs(61));
        let done = node.take_completed();
        assert_eq!(done.len(), 1);
        let d = &done[0];
        assert_eq!(d.state, JobState::Completed);
        assert_eq!(d.completed_at, Some(SimTime::from_secs(60)));
        assert!((d.breakdown.cpu - 60.0).abs() < 1e-6);
        assert!(d.breakdown.page < 1e-9);
        assert!((d.slowdown() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn next_event_predicts_completion() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 60.0), SimTime::ZERO).unwrap();
        let delay = node.next_event_in().unwrap();
        assert!((delay.as_secs_f64() - 60.0).abs() < 1e-6);
        assert!(Workstation::new(NodeId(1), params())
            .next_event_in()
            .is_none());
    }

    #[test]
    fn two_equal_jobs_halve_progress() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 30.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 10, 30.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(30));
        // Each got half the CPU: 15s of progress, no completion yet.
        assert!(node.take_completed().is_empty());
        for j in node.jobs() {
            assert!((j.progress_secs - 15.0).abs() < 1e-6);
            assert!((j.breakdown.queue - 15.0).abs() < 1e-6);
        }
        node.advance_to(SimTime::from_secs(60));
        assert_eq!(node.take_completed().len(), 2);
    }

    #[test]
    fn completion_frees_capacity_for_survivor() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 10.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 10, 30.0), SimTime::ZERO).unwrap();
        // Job 1 finishes at t=20 (half speed); job 2 then runs alone:
        // by t=20 it has 10s progress, 20s left, finishing at t=40.
        node.advance_to(SimTime::from_secs(40));
        let done = node.take_completed();
        assert_eq!(done.len(), 2);
        let by_id = |id: u64| done.iter().find(|j| j.id() == JobId(id)).unwrap();
        assert_eq!(by_id(1).completed_at, Some(SimTime::from_secs(20)));
        assert_eq!(by_id(2).completed_at, Some(SimTime::from_secs(40)));
    }

    #[test]
    fn oversubscription_causes_page_stall() {
        let mut node = Workstation::new(NodeId(0), params());
        // 80 + 80 = 160MB on 128MB: overflow ratio 0.25, stall factor 1.0 each.
        node.try_admit(job(1, 80, 10.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 80, 10.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(10));
        for j in node.jobs() {
            // rate = 0.5 / (1 + 1) = 0.25 → 2.5s progress in 10s wall.
            assert!((j.progress_secs - 2.5).abs() < 1e-6, "{}", j.progress_secs);
            assert!((j.breakdown.page - 2.5).abs() < 1e-6);
            assert!((j.breakdown.cpu - 2.5).abs() < 1e-6);
            assert!((j.breakdown.queue - 5.0).abs() < 1e-6);
        }
        assert!(node.is_faulting());
    }

    #[test]
    fn memory_phase_boundary_changes_fault_behaviour() {
        let mut node = Workstation::new(NodeId(0), params());
        // Job ramps from 10MB to 200MB after 5s of progress.
        let mut j = job(1, 0, 100.0);
        j.spec.memory = MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(5), Bytes::from_mb(10)),
            (SimSpan::MAX, Bytes::from_mb(200)),
        ])
        .unwrap();
        node.try_admit(j, SimTime::ZERO).unwrap();
        assert!(!node.is_faulting());
        // First 5s of progress take 5s of wall (no faults).
        node.advance_to(SimTime::from_secs(6));
        assert!(node.is_faulting());
        let job = &node.jobs()[0];
        assert!(job.progress_secs > 5.0);
        assert!(job.breakdown.page > 0.0);
        // Phase 2: 200MB on 128MB alone: overflow ratio 72/128, stall
        // factor = 4 * 72/128 = 2.25 → rate 1/3.25.
        let expected = 5.0 + 1.0 / 3.25;
        assert!(
            (job.progress_secs - expected).abs() < 1e-6,
            "progress {} vs {expected}",
            job.progress_secs
        );
    }

    #[test]
    fn slot_limit_is_enforced() {
        let mut node = Workstation::new(NodeId(0), params());
        for i in 0..4 {
            node.try_admit(job(i, 1, 10.0), SimTime::ZERO).unwrap();
        }
        assert!(!node.has_slot());
        let rejected = node.try_admit(job(99, 1, 10.0), SimTime::ZERO).unwrap_err();
        assert_eq!(rejected.reason, AdmitError::NoSlot);
        assert_eq!(rejected.job.id(), JobId(99));
    }

    #[test]
    fn memory_ceiling_is_enforced() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 200, 10.0), SimTime::ZERO).unwrap();
        // 200 + 100 = 300MB > 256MB (user+swap).
        let rejected = node
            .try_admit(job(2, 100, 10.0), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(rejected.reason, AdmitError::MemoryExhausted);
    }

    #[test]
    fn reserved_node_rejects_ordinary_but_accepts_special() {
        let mut node = Workstation::new(NodeId(0), params());
        node.set_reserved(true);
        let rejected = node.try_admit(job(1, 10, 10.0), SimTime::ZERO).unwrap_err();
        assert_eq!(rejected.reason, AdmitError::Reserved);
        node.admit_to_reserved(job(1, 10, 10.0), SimTime::ZERO)
            .unwrap();
        assert_eq!(node.active_jobs(), 1);
    }

    #[test]
    fn remove_job_returns_partial_state() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 60.0), SimTime::ZERO).unwrap();
        let taken = node.remove_job(JobId(1), SimTime::from_secs(15)).unwrap();
        assert!((taken.progress_secs - 15.0).abs() < 1e-6);
        assert_eq!(node.active_jobs(), 0);
        assert!(node.remove_job(JobId(1), SimTime::from_secs(15)).is_none());
        assert_eq!(node.counters().migrated_out, 1);
    }

    #[test]
    fn epoch_bumps_on_state_changes() {
        let mut node = Workstation::new(NodeId(0), params());
        let e0 = node.epoch();
        node.try_admit(job(1, 10, 1.0), SimTime::ZERO).unwrap();
        let e1 = node.epoch();
        assert!(e1 > e0);
        node.advance_to(SimTime::from_secs(2)); // completion inside
        assert!(node.epoch() > e1);
        let e2 = node.epoch();
        node.set_reserved(true);
        assert!(node.epoch() > e2);
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 60.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(10));
        let p = node.jobs()[0].progress_secs;
        node.advance_to(SimTime::from_secs(10));
        assert_eq!(node.jobs()[0].progress_secs, p);
    }

    #[test]
    fn most_memory_intensive_job_is_found() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 60.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 90, 60.0), SimTime::ZERO).unwrap();
        node.try_admit(job(3, 40, 60.0), SimTime::ZERO).unwrap();
        assert_eq!(node.most_memory_intensive_job().unwrap().id(), JobId(2));
    }

    #[test]
    fn breakdown_sums_to_wall_time_under_load() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 80, 50.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 70, 40.0), SimTime::ZERO).unwrap();
        node.try_admit(job(3, 30, 30.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(25));
        for j in node.jobs() {
            assert!(
                (j.breakdown.wall() - 25.0).abs() < 1e-6,
                "wall {} for {}",
                j.breakdown.wall(),
                j.id()
            );
        }
    }

    #[test]
    fn stall_scale_speeds_up_faulting_jobs() {
        let mut with_netram = Workstation::new(NodeId(0), params());
        let mut without = Workstation::new(NodeId(1), params());
        for node in [&mut with_netram, &mut without] {
            node.try_admit(job(1, 80, 100.0), SimTime::ZERO).unwrap();
            node.try_admit(job(2, 80, 100.0), SimTime::ZERO).unwrap();
        }
        with_netram.set_stall_scale(0.33);
        with_netram.advance_to(SimTime::from_secs(100));
        without.advance_to(SimTime::from_secs(100));
        let p_fast = with_netram.jobs()[0].progress_secs;
        let p_slow = without.jobs()[0].progress_secs;
        assert!(p_fast > p_slow, "netram {p_fast} <= local {p_slow}");
        // Page stall share shrinks accordingly.
        assert!(with_netram.jobs()[0].breakdown.page < without.jobs()[0].breakdown.page);
    }

    #[test]
    fn stall_scale_changes_bump_epoch_only_on_change() {
        let mut node = Workstation::new(NodeId(0), params());
        let e0 = node.epoch();
        node.set_stall_scale(1.0); // no-op
        assert_eq!(node.epoch(), e0);
        node.set_stall_scale(0.5);
        assert!(node.epoch() > e0);
    }

    #[test]
    #[should_panic(expected = "stall scale")]
    fn invalid_stall_scale_panics() {
        Workstation::new(NodeId(0), params()).set_stall_scale(0.0);
    }

    #[test]
    fn counters_accumulate() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 5.0), SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(10));
        node.take_completed();
        let c = node.counters();
        assert_eq!(c.admitted, 1);
        assert_eq!(c.completed, 1);
        assert!((c.delivered_cpu - 5.0).abs() < 1e-6);
    }

    #[test]
    fn crash_drains_jobs_and_blocks_admission_until_restart() {
        let mut node = Workstation::new(NodeId(0), params());
        node.set_reserved(true);
        node.admit_to_reserved(job(1, 10, 60.0), SimTime::ZERO)
            .unwrap();
        let e0 = node.epoch();
        let drained = node.crash(SimTime::from_secs(15));
        assert_eq!(drained.len(), 1);
        assert!((drained[0].progress_secs - 15.0).abs() < 1e-6);
        assert!(!node.is_up());
        assert!(!node.is_reserved(), "crash drops the reservation flag");
        assert_eq!(node.active_jobs(), 0);
        assert!(node.epoch() > e0);
        // Drained jobs are not migrations.
        assert_eq!(node.counters().migrated_out, 0);
        let rejected = node
            .try_admit(job(2, 10, 10.0), SimTime::from_secs(16))
            .unwrap_err();
        assert_eq!(rejected.reason, AdmitError::Down);
        let rejected = node
            .admit_to_reserved(job(2, 10, 10.0), SimTime::from_secs(16))
            .unwrap_err();
        assert_eq!(rejected.reason, AdmitError::Down);
        node.restart(SimTime::from_secs(20));
        assert!(node.is_up());
        node.try_admit(job(2, 10, 10.0), SimTime::from_secs(20))
            .unwrap();
        assert_eq!(node.active_jobs(), 1);
    }

    #[test]
    fn crash_keeps_already_completed_jobs_in_outbox() {
        let mut node = Workstation::new(NodeId(0), params());
        node.try_admit(job(1, 10, 5.0), SimTime::ZERO).unwrap();
        node.try_admit(job(2, 10, 100.0), SimTime::ZERO).unwrap();
        // Job 1 completes at t=10 (half speed); crash at t=20 drains only
        // job 2 — the finished job stays observable in the outbox.
        let drained = node.crash(SimTime::from_secs(20));
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id(), JobId(2));
        assert_eq!(node.pending_completions().len(), 1);
        assert_eq!(node.pending_completions()[0].id(), JobId(1));
        assert_eq!(node.take_completed().len(), 1);
    }

    #[test]
    fn restart_on_running_node_is_a_no_op() {
        let mut node = Workstation::new(NodeId(0), params());
        let e0 = node.epoch();
        node.restart(SimTime::from_secs(5));
        assert!(node.is_up());
        assert_eq!(node.epoch(), e0);
    }

    #[test]
    fn io_ops_track_progress_times_rate() {
        let mut node = Workstation::new(NodeId(0), params());
        let mut j = job(1, 10, 5.0);
        j.spec.io_rate = 3.0;
        node.try_admit(j, SimTime::ZERO).unwrap();
        node.advance_to(SimTime::from_secs(10));
        // 5 seconds of progress at 3 ops/s = 15 ops.
        assert!((node.counters().io_ops - 15.0).abs() < 1e-6);
    }
}
