//! Programmatic use of the scheduler event log: reconstruct how the
//! blocking problem unfolded and how reconfiguration resolved it.
//!
//! ```sh
//! cargo run --release --example timeline_analysis
//! ```

use vrecon_repro::analysis::timeline::{
    blocked_episode_durations, cluster_blocking_episodes, completion_throughput,
    pending_queue_timeline, reservation_timeline, reserved_queue_bound_from_log,
    reserved_service_episodes,
};
use vrecon_repro::prelude::*;

fn main() {
    let nodes = 16;
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(nodes);
    let trace = synth::blocking_scenario(nodes, Bytes::from_mb(128));

    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        let report =
            Simulation::new(SimConfig::new(cluster.clone(), policy).with_seed(7)).run(&trace);
        println!("=== {policy} ===");
        let log = &report.events;
        println!("{} scheduler events recorded", log.len());

        // How bad did the blocked-submission queue get, and for how long?
        let queue = pending_queue_timeline(log);
        let peak = queue.iter().map(|(_, n)| *n).max().unwrap_or(0);
        let episodes = cluster_blocking_episodes(log);
        let total_blocked: f64 = blocked_episode_durations(log).iter().sum();
        println!(
            "pending queue peaked at {peak} jobs; {} blocking episodes; \
             {total_blocked:.0} job-seconds spent blocked",
            episodes.len(),
        );
        if let Some((start, dur)) = episodes.iter().max_by_key(|(_, d)| *d) {
            println!("longest episode: started {start}, lasted {dur}");
        }

        // What did the reservations do?
        if policy == PolicyKind::VReconfiguration {
            let res = reservation_timeline(log);
            let peak_res = res.iter().map(|(_, n)| *n).max().unwrap_or(0);
            let served: usize = reserved_service_episodes(log).iter().map(Vec::len).sum();
            println!(
                "reservations peaked at {peak_res} workstations; {served} jobs \
                 given dedicated service"
            );
            println!(
                "§5 reserved-workstation queuing bound: {:.0}s (vs total queue \
                 time {:.0}s)",
                reserved_queue_bound_from_log(log),
                report.total_queue_secs(),
            );
        }

        // Throughput profile in 5-minute windows.
        let windows = completion_throughput(log, SimSpan::from_secs(300));
        let profile: Vec<String> = windows.iter().map(|(_, n)| n.to_string()).collect();
        println!("completions per 5-minute window: [{}]", profile.join(", "));
        println!("makespan {}\n", report.finished_at);
    }
}
