//! Network RAM: serving page faults from remote idle memory.
//!
//! §2.3 of the paper: a job whose demand does not fit even the reserved
//! workstation "may not be suitable in this cluster unless the network RAM
//! technique is applied" (Xiao, Zhang & Kubricht, HPDC-9 — the paper's ref
//! \[12]). The idea: when the cluster holds enough *accumulated* idle
//! memory, an oversubscribed workstation pages to a remote workstation's
//! RAM over the interconnect instead of to its local disk, replacing the
//! 10 ms disk fault service with a network page transfer.
//!
//! The simulator models this as a per-node **stall scale**: while remote
//! memory is available, every fault's stall is multiplied by
//! `remote_fault_service / fault_service`. The simulation driver flips the
//! scale on each load-information exchange based on the cluster's
//! accumulated idle memory.

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimSpan;

use crate::network::NetworkParams;
use crate::units::Bytes;

/// Fixed per-page software overhead of a remote-memory fault (request,
/// interrupt handling) on top of the wire transfer.
pub const REMOTE_FAULT_OVERHEAD: SimSpan = SimSpan::from_micros(200);

/// Configuration of the network-RAM extension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkRamParams {
    /// Service time of one page fault served from remote memory.
    pub remote_fault_service: SimSpan,
}

impl NetworkRamParams {
    /// Derives the remote fault service time from the interconnect: one
    /// page's wire time plus [`REMOTE_FAULT_OVERHEAD`].
    ///
    /// On the paper's 10 Mbps Ethernet a 4 KB page takes ≈ 3.3 ms — about
    /// 3× faster than the 10 ms disk fault; on 1 Gbps it is ≈ 0.23 ms.
    ///
    /// # Panics
    ///
    /// Panics if the network bandwidth is not strictly positive.
    pub fn over(network: &NetworkParams, page_size: Bytes) -> Self {
        assert!(
            network.bandwidth_bps > 0.0,
            "network bandwidth must be positive"
        );
        let wire = page_size.as_bits() as f64 / network.bandwidth_bps;
        NetworkRamParams {
            remote_fault_service: REMOTE_FAULT_OVERHEAD + SimSpan::from_secs_f64(wire),
        }
    }

    /// The stall multiplier relative to a local (disk) fault service time:
    /// `< 1` when remote memory is faster than disk.
    pub fn stall_scale(&self, local_fault_service: SimSpan) -> f64 {
        let local = local_fault_service.as_secs_f64();
        if local <= 0.0 {
            1.0
        } else {
            (self.remote_fault_service.as_secs_f64() / local).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_from_10mbps_is_about_a_third_of_disk() {
        let params = NetworkRamParams::over(&NetworkParams::ethernet_10mbps(), Bytes::from_kb(4));
        let ms = params.remote_fault_service.as_secs_f64() * 1000.0;
        assert!((3.0..4.0).contains(&ms), "remote service {ms} ms");
        let scale = params.stall_scale(SimSpan::from_millis(10));
        assert!((0.3..0.4).contains(&scale), "scale {scale}");
    }

    #[test]
    fn gigabit_is_dramatically_faster() {
        let params = NetworkRamParams::over(&NetworkParams::ethernet_1gbps(), Bytes::from_kb(4));
        assert!(params.remote_fault_service < SimSpan::from_millis(1));
        assert!(params.stall_scale(SimSpan::from_millis(10)) < 0.05);
    }

    #[test]
    fn scale_never_exceeds_one() {
        // A network slower than disk must not *worsen* faults: the node
        // would simply keep paging locally.
        let slow = NetworkRamParams {
            remote_fault_service: SimSpan::from_millis(50),
        };
        assert_eq!(slow.stall_scale(SimSpan::from_millis(10)), 1.0);
    }
}
