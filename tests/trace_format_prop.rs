//! Property tests of the trace interchange format: any valid trace must
//! round-trip exactly.

use proptest::prelude::*;
use vrecon_repro::prelude::*;
use vrecon_repro::workload::{read_trace, write_trace};

fn job_strategy(id: u64) -> impl Strategy<Value = JobSpec> {
    (
        0u64..4_000_000_000,
        1u64..4_000_000_000,
        prop::sample::select(vec![
            JobClass::CpuIntensive,
            JobClass::MemoryIntensive,
            JobClass::CpuMemoryIntensive,
            JobClass::IoActive,
        ]),
        0.0f64..50.0,
        prop::collection::vec((1u64..3_600_000_000, 1u64..1_000_000_000), 0..4),
        1u64..1_000_000_000,
    )
        .prop_map(move |(submit, work, class, io, mid_phases, final_ws)| {
            // Build strictly increasing boundaries from arbitrary values.
            let mut boundaries: Vec<u64> = mid_phases.iter().map(|(b, _)| *b).collect();
            boundaries.sort_unstable();
            boundaries.dedup();
            let mut phases: Vec<(SimSpan, Bytes)> = boundaries
                .iter()
                .zip(mid_phases.iter())
                .map(|(b, (_, ws))| (SimSpan::from_micros(*b), Bytes::new(*ws)))
                .collect();
            phases.push((SimSpan::MAX, Bytes::new(final_ws)));
            JobSpec {
                id: JobId(id),
                name: format!("prog-{}", id % 7),
                class,
                submit: SimTime::from_micros(submit),
                cpu_work: SimSpan::from_micros(work),
                memory: MemoryProfile::from_phases(phases).expect("strictly increasing"),
                io_rate: io,
                malleable: None,
            }
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(0u64..1, 0..30)
        .prop_flat_map(|slots| {
            let jobs: Vec<_> = (0..slots.len() as u64).map(job_strategy).collect();
            jobs
        })
        .prop_map(|mut jobs| {
            jobs.sort_by_key(|j| j.submit);
            for (i, j) in jobs.iter_mut().enumerate() {
                j.id = JobId(i as u64);
            }
            Trace {
                name: "prop-trace".to_owned(),
                jobs,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 128,
        ..ProptestConfig::default()
    })]

    #[test]
    fn traces_round_trip_exactly(trace in trace_strategy()) {
        prop_assert!(trace.validate().is_ok());
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("serialize");
        let parsed = read_trace(buf.as_slice()).expect("parse");
        prop_assert_eq!(parsed.name, trace.name.clone());
        prop_assert_eq!(parsed.jobs.len(), trace.jobs.len());
        for (a, b) in trace.jobs.iter().zip(parsed.jobs.iter()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(a.class, b.class);
            prop_assert_eq!(a.submit, b.submit);
            prop_assert_eq!(a.cpu_work, b.cpu_work);
            prop_assert_eq!(&a.memory, &b.memory);
            prop_assert!((a.io_rate - b.io_rate).abs() < 1e-9);
        }
    }

    /// Parsing never panics on arbitrary input — it returns an error.
    #[test]
    fn parser_is_total(garbage in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_trace(garbage.as_slice());
    }
}
