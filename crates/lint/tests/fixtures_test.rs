//! Golden-diagnostic tests: every rule fires on its seeded fixture at the
//! exact `file:line:col`, suppression is line-local, and the binary exits
//! nonzero on findings.

use std::process::Command;

use vr_lint::{lint_source, FileContext, Role};

fn core_lib() -> FileContext {
    FileContext {
        krate: "core".to_owned(),
        role: Role::Lib,
    }
}

/// `(line, col, rule)` triples of a fixture's diagnostics, in report order.
fn positions(rel_path: &str, src: &str, ctx: &FileContext) -> Vec<(u32, u32, String)> {
    lint_source(rel_path, src, ctx)
        .diagnostics
        .into_iter()
        .map(|d| {
            assert_eq!(d.file, rel_path, "diagnostics carry the linted path");
            (d.line, d.col, d.rule)
        })
        .collect()
}

#[test]
fn nondeterministic_collection_fires_with_exact_positions() {
    let src = include_str!("fixtures/nondet_collection.rs");
    let got = positions("fixtures/nondet_collection.rs", src, &core_lib());
    let rule = "nondeterministic-collection".to_owned();
    assert_eq!(got, vec![(1, 23, rule.clone()), (4, 17, rule)]);
}

#[test]
fn wall_clock_fires_with_exact_positions() {
    let src = include_str!("fixtures/wall_clock.rs");
    let got = positions("fixtures/wall_clock.rs", src, &core_lib());
    let rule = "wall-clock".to_owned();
    assert_eq!(got, vec![(1, 16, rule.clone()), (4, 17, rule)]);
}

#[test]
fn env_read_fires_with_exact_positions() {
    let src = include_str!("fixtures/env_read.rs");
    let got = positions("fixtures/env_read.rs", src, &core_lib());
    assert_eq!(got, vec![(2, 10, "env-read".to_owned())]);
}

#[test]
fn panic_in_lib_fires_and_exempts_the_test_module() {
    let src = include_str!("fixtures/panic_in_lib.rs");
    let got = positions("fixtures/panic_in_lib.rs", src, &core_lib());
    let rule = "panic-in-lib".to_owned();
    assert_eq!(
        got,
        vec![(2, 17, rule.clone()), (6, 17, rule.clone()), (10, 5, rule)]
    );
}

#[test]
fn panic_in_lib_is_silent_for_test_role() {
    let src = include_str!("fixtures/panic_in_lib.rs");
    let ctx = FileContext {
        krate: "core".to_owned(),
        role: Role::Test,
    };
    assert!(positions("fixtures/panic_in_lib.rs", src, &ctx).is_empty());
}

#[test]
fn float_eq_fires_on_floats_only() {
    let src = include_str!("fixtures/float_eq.rs");
    let got = positions("fixtures/float_eq.rs", src, &core_lib());
    let rule = "float-eq".to_owned();
    assert_eq!(got, vec![(2, 7, rule.clone()), (6, 7, rule)]);
}

#[test]
fn narrowing_cast_fires_only_in_memory_accounting_paths() {
    let src = include_str!("fixtures/narrowing_cast.rs");
    let ctx = FileContext {
        krate: "cluster".to_owned(),
        role: Role::Lib,
    };
    // Scoped in: the accounting module, narrowing cast only.
    let got = positions("crates/cluster/src/memory.rs", src, &ctx);
    assert_eq!(got, vec![(2, 25, "narrowing-as-cast".to_owned())]);
    // Scoped out: any other path in the same crate.
    assert!(positions("crates/cluster/src/compaction.rs", src, &ctx).is_empty());
}

#[test]
fn allow_directives_suppress_locally_and_report_stale_or_malformed() {
    let src = include_str!("fixtures/allows.rs");
    let outcome = lint_source("fixtures/allows.rs", src, &core_lib());
    assert_eq!(outcome.allows, 2, "two well-formed directives");
    assert_eq!(
        outcome.stale_allows, 1,
        "the wall-clock allow covers nothing"
    );
    let got: Vec<(u32, u32, String)> = outcome
        .diagnostics
        .iter()
        .map(|d| (d.line, d.col, d.rule.clone()))
        .collect();
    assert_eq!(
        got,
        vec![
            (4, 1, "stale-allow".to_owned()),
            (7, 1, "malformed-directive".to_owned()),
            (10, 1, "malformed-directive".to_owned()),
            // Suppression reaches only the next line: the HashMap alias
            // further down still fires.
            (13, 18, "nondeterministic-collection".to_owned()),
        ]
    );
}

#[test]
fn binary_exits_nonzero_with_json_diagnostics() {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/nondet_collection.rs"
    );
    let output = Command::new(env!("CARGO_BIN_EXE_vr-lint"))
        .args([
            fixture,
            "--assume-crate",
            "core",
            "--assume-role",
            "lib",
            "--format",
            "json",
        ])
        .output()
        .expect("vr-lint binary runs");
    assert_eq!(output.status.code(), Some(1), "diagnostics mean exit 1");
    let stdout = String::from_utf8(output.stdout).expect("json output is UTF-8");
    assert!(stdout.contains("\"rule\": \"nondeterministic-collection\""));
    assert!(stdout.contains("\"line\": 1"));
    assert!(stdout.contains("\"version\": 1"));
}

#[test]
fn binary_exits_zero_on_clean_input_and_two_on_bad_usage() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/env_read.rs");
    // env-read does not apply to the CLI layer, so the same file is clean
    // under an exempt crate.
    let clean = Command::new(env!("CARGO_BIN_EXE_vr-lint"))
        .args([fixture, "--assume-crate", "cli", "--assume-role", "lib"])
        .output()
        .expect("vr-lint binary runs");
    assert_eq!(clean.status.code(), Some(0));

    let usage = Command::new(env!("CARGO_BIN_EXE_vr-lint"))
        .args(["--format", "yaml"])
        .output()
        .expect("vr-lint binary runs");
    assert_eq!(usage.status.code(), Some(2), "bad usage means exit 2");
}
