//! Scenario descriptors and sweep plans.
//!
//! A [`Scenario`] is everything needed to reproduce one simulation run:
//! the cluster configuration (including policy, seed, fault plan, and
//! audit flag — all inside [`SimConfig`]) plus the workload trace. Its
//! [`content_hash`](Scenario::content_hash) addresses the on-disk result
//! cache: equal scenarios hash equally across processes, and *any*
//! difference — one more node, a different seed, a tweaked fault plan —
//! produces a different key.

use std::sync::Arc;

use vr_simcore::hash::{hex128, Fnv128};
use vr_workload::Trace;
use vrecon::{RunReport, SimConfig, Simulation};

/// Version salt folded into every scenario hash. Bump when the simulator's
/// semantics change in a way `Debug` output does not capture, so stale
/// cache entries stop matching.
///
/// Version 2: the policy plugin refactor — configs carry a policy
/// parameter bag and job specs a malleable width range, both of which now
/// shape scheduling decisions.
pub const SCENARIO_HASH_VERSION: u64 = 2;

/// One fully specified simulation run.
///
/// Traces are shared via [`Arc`] because sweeps typically run the same
/// trace under several policies; cloning a scenario is cheap.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Display label, e.g. `"SPEC-Trace-3/V-Reconfiguration"`. Not part of
    /// the content hash — the same run under a different label is still
    /// the same run.
    pub label: String,
    /// Full simulator configuration (cluster, policy, seed, faults, audit).
    pub config: SimConfig,
    /// The workload trace driving the run.
    pub trace: Arc<Trace>,
}

impl Scenario {
    /// Creates a scenario with a label of the form `"<trace>/<policy>"`.
    pub fn new(config: SimConfig, trace: Arc<Trace>) -> Scenario {
        let label = format!("{}/{}", trace.name, config.policy);
        Scenario {
            label,
            config,
            trace,
        }
    }

    /// Replaces the display label (content hash is unaffected).
    #[must_use]
    pub fn labeled(mut self, label: impl Into<String>) -> Scenario {
        self.label = label.into();
        self
    }

    /// Stable 128-bit content hash of the scenario, as 32 hex characters.
    ///
    /// Hashes the `Debug` rendering of the config and trace (both derive
    /// `Debug` recursively down to every tunable), each length-delimited,
    /// under [`SCENARIO_HASH_VERSION`]. `Debug` output is stable for a
    /// given build of this workspace, which is exactly the scope a result
    /// cache wants: two processes running the same code agree, and a code
    /// change that alters any configuration field naturally invalidates
    /// affected entries.
    pub fn content_hash(&self) -> String {
        let mut h = Fnv128::new();
        h.write_delimited(&SCENARIO_HASH_VERSION.to_le_bytes());
        h.write_delimited(format!("{:?}", self.config).as_bytes());
        h.write_delimited(format!("{:?}", self.trace).as_bytes());
        hex128(h.finish())
    }

    /// Runs the scenario to completion (no caching — see
    /// [`crate::Runner`] for the cached, parallel path).
    pub fn run(&self) -> RunReport {
        Simulation::new(self.config.clone()).run(&self.trace)
    }
}

/// An ordered list of scenarios to execute.
///
/// Order is significant: sweep results are always reported in plan order
/// regardless of parallel completion order.
#[derive(Debug, Clone, Default)]
pub struct SweepPlan {
    /// The scenarios, in result order.
    pub scenarios: Vec<Scenario>,
}

impl SweepPlan {
    /// An empty plan.
    pub fn new() -> SweepPlan {
        SweepPlan::default()
    }

    /// Appends a scenario and returns its index in the plan.
    pub fn push(&mut self, scenario: Scenario) -> usize {
        self.scenarios.push(scenario);
        self.scenarios.len() - 1
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }
}

impl FromIterator<Scenario> for SweepPlan {
    fn from_iter<I: IntoIterator<Item = Scenario>>(iter: I) -> SweepPlan {
        SweepPlan {
            scenarios: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::params::ClusterParams;
    use vr_cluster::units::Bytes;
    use vr_faults::FaultPlan;
    use vr_simcore::time::SimTime;
    use vrecon::PolicyKind;

    fn base() -> Scenario {
        let mut cluster = ClusterParams::cluster2();
        cluster.nodes.truncate(4);
        let trace = vr_workload::synth::blocking_scenario(4, Bytes::from_mb(128));
        Scenario::new(
            SimConfig::new(cluster, PolicyKind::GLoadSharing).with_seed(7),
            Arc::new(trace),
        )
    }

    #[test]
    fn hash_is_stable_and_label_independent() {
        let a = base();
        let b = base().labeled("renamed");
        assert_eq!(a.content_hash(), b.content_hash());
        assert_eq!(a.content_hash().len(), 32);
    }

    #[test]
    fn hash_distinguishes_seed_policy_and_fault_plan() {
        let a = base();
        let mut seed = base();
        seed.config.seed = 8;
        let mut policy = base();
        policy.config.policy = PolicyKind::VReconfiguration;
        let mut faults = base();
        faults.config.fault_plan =
            Some(FaultPlan::default().with_crash(1, SimTime::from_secs(50), None));
        // Parameter bags are cache-relevant: the same family with a
        // different knob value is a different run.
        let mut params = base();
        params.config.policy = PolicyKind::Fractional;
        params.config.policy_params = vrecon::plugin::ParamBag::new().with("oversub", 1.5);
        let mut params2 = params.clone();
        params2.config.policy_params = vrecon::plugin::ParamBag::new().with("oversub", 3.0);
        let hashes = [
            a.content_hash(),
            seed.content_hash(),
            policy.content_hash(),
            faults.content_hash(),
            params.content_hash(),
            params2.content_hash(),
        ];
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "hash collision between {i} and {j}");
            }
        }
    }

    #[test]
    fn default_label_names_trace_and_policy() {
        assert!(base().label.contains('/'));
    }
}
