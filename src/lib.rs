//! # vrecon-repro — umbrella crate
//!
//! One-stop re-exports for the reproduction of *Chen, Xiao & Zhang,
//! "Adaptive and Virtual Reconfigurations for Effective Dynamic Job
//! Scheduling in Cluster Systems", ICDCS 2002*. See `README.md` for the
//! architecture and `DESIGN.md` for the system inventory.
//!
//! The layers, bottom-up:
//!
//! * [`simcore`] — discrete-event engine, deterministic RNG, statistics.
//! * [`cluster`] — workstations, memory/fault model, network, load index.
//! * [`workload`] — Tables 1–2 program catalogs, lognormal arrivals, the
//!   ten paper traces, synthetic adversarial workloads.
//! * [`core`] — the paper's contribution: G-Loadsharing,
//!   V-Reconfiguration, the trace-driven simulation driver.
//! * [`metrics`] — slowdowns, breakdowns, idle-memory / balance-skew
//!   gauges.
//! * [`analysis`] — the §5 analytical model.
//!
//! ```
//! use vrecon_repro::prelude::*;
//!
//! let mut cluster = ClusterParams::cluster2();
//! cluster.nodes.truncate(8);
//! let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
//! let report = Simulation::new(SimConfig::new(cluster, PolicyKind::VReconfiguration))
//!     .run(&trace);
//! assert!(report.all_completed());
//! assert!(report.reservations.started > 0); // the blocking problem was hit
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use vr_analysis as analysis;
pub use vr_cluster as cluster;
pub use vr_metrics as metrics;
pub use vr_simcore as simcore;
pub use vr_workload as workload;
pub use vrecon as core;

/// The names almost every user of the library needs.
pub mod prelude {
    pub use vr_analysis::{Applicability, ExecutionTimeModel};
    pub use vr_cluster::params::ClusterParams;
    pub use vr_cluster::units::Bytes;
    pub use vr_cluster::{JobClass, JobId, JobSpec, MemoryProfile, NodeId, RunningJob};
    pub use vr_metrics::comparison::MetricComparison;
    pub use vr_simcore::rng::SimRng;
    pub use vr_simcore::time::{SimSpan, SimTime};
    pub use vr_workload::synth;
    pub use vr_workload::trace::{app_trace, spec_trace, Trace, TraceLevel};
    pub use vrecon::{
        compare_reports, DetectorMode, PolicyKind, ReportDiff, ReservationOptions, ReservingEnd,
        RunReport, SchedulerEventKind, SimConfig, Simulation,
    };
}
