//! Deterministic scenario fuzzing with greedy shrinking.
//!
//! [`run_fuzz`] generates seeded random scenarios ([`CheckScenario`]), runs
//! each through the engine, the naive [`crate::oracle`], and the invariant
//! auditor, and reports every divergence. A diverging scenario is greedily
//! shrunk — drop jobs, drop nodes, halve times, simplify the fault plan —
//! to a minimal reproducer that still diverges, and rendered as a
//! replayable text spec ([`CheckScenario::render`] /
//! [`CheckScenario::parse`]). The spec is a stable, versioned format
//! ([`WIRE_FORMAT_VERSION`]) — it is also the wire format of the
//! `vrecon serve` what-if scheduling service, so render/parse/render must
//! stay byte-identical across releases.
//!
//! Determinism contract: iteration `i` derives its scenario from
//! `SimRng::seed_from(seed).fork(i)` alone, work is dispatched over
//! [`vr_runner::run_indexed`] whose result slots are in input order, and
//! the summary contains no wall-clock content — so the outcome is
//! byte-identical for any worker count.

use vr_cluster::cpu::CpuParams;
use vr_cluster::job::{JobClass, JobId, JobSpec, MalleableSpec, MemoryProfile};
use vr_cluster::memory::{FaultModel, MemoryParams};
use vr_cluster::network::NetworkParams;
use vr_cluster::node::NodeParams;
use vr_cluster::params::ClusterParams;
use vr_cluster::protection::ThrashingProtection;
use vr_cluster::units::Bytes;
use vr_faults::FaultPlan;
use vr_runner::run_indexed;
use vr_simcore::rng::SimRng;
use vr_simcore::time::{SimSpan, SimTime};
use vr_workload::trace::Trace;
use vrecon::config::SimConfig;
use vrecon::plugin::{kind_of, registry, ParamBag};
use vrecon::policy::PolicyKind;
use vrecon::{compare_reports, Simulation};

use crate::oracle::{run_oracle, OracleSkew};

/// Relative tolerance for float report fields in the differential check.
/// Integer fields (completion timestamps, counters) are compared exactly.
pub const DIFF_TOLERANCE: f64 = 1e-9;

/// Upper bound on shrink rounds — a backstop, not a tuning knob; greedy
/// shrinking reaches a fixpoint long before this.
const MAX_SHRINK_ROUNDS: usize = 100;

/// One workstation of a fuzz scenario. Swap space equals user memory and
/// the remaining node parameters are the paper's constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioNode {
    /// User memory in MB.
    pub user_mb: u64,
    /// CPU job slots.
    pub slots: u32,
}

/// One job of a fuzz scenario (constant working set, no I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioJob {
    /// Submission time in microseconds.
    pub submit_us: u64,
    /// Total CPU work in microseconds.
    pub cpu_work_us: u64,
    /// Working-set size in MB.
    pub ws_mb: u64,
    /// Optional `(min_width, max_width)` malleable range. Widths flow into
    /// slot accounting and the width-aware rate split under every policy;
    /// only the malleable policy *changes* them at runtime.
    pub malleable: Option<(u32, u32)>,
}

/// A self-contained, replayable fuzz scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckScenario {
    /// Cluster shape.
    pub nodes: Vec<ScenarioNode>,
    /// Scheduling policy under test.
    pub policy: PolicyKind,
    /// Policy parameter bag (empty for the classic families).
    pub policy_params: ParamBag,
    /// Scheduler RNG seed.
    pub seed: u64,
    /// Simulation horizon in seconds.
    pub max_sim_time_s: u64,
    /// The workload (submit times non-decreasing).
    pub jobs: Vec<ScenarioJob>,
    /// Optional fault plan.
    pub fault_plan: Option<FaultPlan>,
}

/// Version of the replayable text-spec format ([`CheckScenario::render`] /
/// [`CheckScenario::parse`]).
///
/// The spec doubles as the **wire format** of `vrecon serve`, so it is
/// versioned like any other protocol: `render` stamps every spec with a
/// `spec-version` line, `parse` rejects versions it does not understand
/// (rather than silently misreading a future field), and specs without the
/// line are accepted as version 1 (the pre-versioning fuzzer reproducers).
/// Bump this only when a change would alter the meaning of an existing
/// spec; purely additive keywords do not need a bump.
pub const WIRE_FORMAT_VERSION: u64 = 1;

impl CheckScenario {
    /// Builds the engine/oracle inputs, validating everything up front.
    ///
    /// # Errors
    ///
    /// Returns an error if the derived config or trace fails validation.
    pub fn to_sim(&self) -> Result<(SimConfig, Trace), String> {
        let nodes: Vec<NodeParams> = self
            .nodes
            .iter()
            .map(|n| NodeParams {
                cpu: CpuParams::with_slots(n.slots),
                memory: MemoryParams {
                    user: Bytes::from_mb(n.user_mb),
                    swap: Bytes::from_mb(n.user_mb),
                    page_size: Bytes::from_kb(4),
                    fault_service: SimSpan::from_millis(10),
                    swap_bandwidth: Bytes::from_mb(10),
                },
                fault_model: FaultModel::default(),
                protection: ThrashingProtection::Off,
            })
            .collect();
        let cluster = ClusterParams {
            nodes,
            network: NetworkParams::ethernet_10mbps(),
            load_exchange_period: SimSpan::from_secs(1),
        };
        let mut config = SimConfig::new(cluster, self.policy)
            .with_policy_params(self.policy_params.clone())
            .with_seed(self.seed)
            .with_max_sim_time(SimSpan::from_secs(self.max_sim_time_s))
            .with_audit(true);
        if let Some(plan) = &self.fault_plan {
            config = config.with_faults(plan.clone());
        }
        config.validate()?;
        let jobs: Vec<JobSpec> = self
            .jobs
            .iter()
            .enumerate()
            .map(|(i, j)| JobSpec {
                id: JobId(i as u64),
                name: format!("fuzz-{i}"),
                class: JobClass::CpuIntensive,
                submit: SimTime::from_micros(j.submit_us),
                cpu_work: SimSpan::from_micros(j.cpu_work_us),
                memory: MemoryProfile::constant(Bytes::from_mb(j.ws_mb)),
                io_rate: 0.0,
                malleable: j.malleable.map(|(min, max)| MalleableSpec {
                    min_width: min,
                    max_width: max,
                }),
            })
            .collect();
        let trace = Trace {
            name: "fuzz".to_owned(),
            jobs,
        };
        trace.validate()?;
        Ok((config, trace))
    }

    /// Renders the scenario as a replayable text spec;
    /// [`CheckScenario::parse`] round-trips it exactly.
    pub fn render(&self) -> String {
        let mut out = String::from("# vr-check fuzz reproducer\n");
        out.push_str(&format!("spec-version {WIRE_FORMAT_VERSION}\n"));
        out.push_str(&format!("policy {}\n", self.policy));
        if !self.policy_params.is_empty() {
            // Additive keyword: absent line = empty bag, so version 1 specs
            // keep their meaning.
            out.push_str(&format!("policy-params {}\n", self.policy_params.render()));
        }
        out.push_str(&format!("seed {}\n", self.seed));
        out.push_str(&format!("max-sim-time-s {}\n", self.max_sim_time_s));
        for n in &self.nodes {
            out.push_str(&format!("node user_mb={} slots={}\n", n.user_mb, n.slots));
        }
        for j in &self.jobs {
            out.push_str(&format!(
                "job submit_us={} cpu_work_us={} ws_mb={}",
                j.submit_us, j.cpu_work_us, j.ws_mb
            ));
            if let Some((min, max)) = j.malleable {
                out.push_str(&format!(" malleable={min}:{max}"));
            }
            out.push('\n');
        }
        if let Some(plan) = &self.fault_plan {
            for crash in &plan.node_crashes {
                let restart = match crash.restart_after {
                    Some(span) => span.as_micros().to_string(),
                    None => "none".to_owned(),
                };
                out.push_str(&format!(
                    "fault-crash node={} at_us={} restart_after_us={}\n",
                    crash.node,
                    crash.at.as_micros(),
                    restart
                ));
            }
            out.push_str(&format!(
                "fault-migration-failure {}\n",
                plan.migration_failure_prob
            ));
            out.push_str(&format!(
                "fault-max-retries {}\n",
                plan.max_migration_retries
            ));
            out.push_str(&format!(
                "fault-retry-backoff-us {}\n",
                plan.retry_backoff.as_micros()
            ));
            out.push_str(&format!(
                "fault-load-info-loss {}\n",
                plan.load_info_loss_prob
            ));
            out.push_str(&format!(
                "fault-reservation-stall-us {}\n",
                plan.reservation_release_stall.as_micros()
            ));
            out.push_str(&format!("fault-seed-salt {}\n", plan.seed_salt));
        }
        out
    }

    /// Parses a spec produced by [`CheckScenario::render`].
    ///
    /// # Errors
    ///
    /// Returns an error describing the first malformed line.
    pub fn parse(text: &str) -> Result<CheckScenario, String> {
        fn kv<'a>(field: &'a str, line: &str) -> Result<(&'a str, &'a str), String> {
            field
                .split_once('=')
                .ok_or_else(|| format!("expected key=value in '{line}'"))
        }
        fn num<T: std::str::FromStr>(value: &str, line: &str) -> Result<T, String> {
            value
                .parse()
                .map_err(|_| format!("bad number '{value}' in '{line}'"))
        }

        let mut policy = None;
        let mut policy_params = ParamBag::new();
        let mut seed = 0u64;
        let mut max_sim_time_s = 3600u64;
        let mut nodes = Vec::new();
        let mut jobs = Vec::new();
        let mut plan: Option<FaultPlan> = None;
        for raw in text.lines() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(keyword) = parts.next() else {
                continue;
            };
            let rest: Vec<&str> = parts.collect();
            let single = || -> Result<&str, String> {
                match rest.as_slice() {
                    [one] => Ok(one),
                    _ => Err(format!("expected one value in '{line}'")),
                }
            };
            match keyword {
                "spec-version" => {
                    let version: u64 = num(single()?, line)?;
                    if version != WIRE_FORMAT_VERSION {
                        return Err(format!(
                            "unsupported spec-version {version} (this build understands \
                             {WIRE_FORMAT_VERSION})"
                        ));
                    }
                }
                "policy" => {
                    let name = single()?;
                    policy = Some(parse_policy(name)?);
                }
                "policy-params" => {
                    policy_params = ParamBag::parse(single()?)
                        .map_err(|e| format!("bad policy-params in '{line}': {e}"))?;
                }
                "seed" => seed = num(single()?, line)?,
                "max-sim-time-s" => max_sim_time_s = num(single()?, line)?,
                "node" => {
                    let mut user_mb = None;
                    let mut slots = None;
                    for field in &rest {
                        let (key, value) = kv(field, line)?;
                        match key {
                            "user_mb" => user_mb = Some(num(value, line)?),
                            "slots" => slots = Some(num(value, line)?),
                            other => return Err(format!("unknown node field '{other}'")),
                        }
                    }
                    nodes.push(ScenarioNode {
                        user_mb: user_mb.ok_or_else(|| format!("node needs user_mb: '{line}'"))?,
                        slots: slots.ok_or_else(|| format!("node needs slots: '{line}'"))?,
                    });
                }
                "job" => {
                    let mut submit_us = None;
                    let mut cpu_work_us = None;
                    let mut ws_mb = None;
                    let mut malleable = None;
                    for field in &rest {
                        let (key, value) = kv(field, line)?;
                        match key {
                            "submit_us" => submit_us = Some(num(value, line)?),
                            "cpu_work_us" => cpu_work_us = Some(num(value, line)?),
                            "ws_mb" => ws_mb = Some(num(value, line)?),
                            "malleable" => {
                                let (min, max) = value.split_once(':').ok_or_else(|| {
                                    format!("expected malleable=min:max in '{line}'")
                                })?;
                                malleable = Some((num(min, line)?, num(max, line)?));
                            }
                            other => return Err(format!("unknown job field '{other}'")),
                        }
                    }
                    jobs.push(ScenarioJob {
                        submit_us: submit_us
                            .ok_or_else(|| format!("job needs submit_us: '{line}'"))?,
                        cpu_work_us: cpu_work_us
                            .ok_or_else(|| format!("job needs cpu_work_us: '{line}'"))?,
                        ws_mb: ws_mb.ok_or_else(|| format!("job needs ws_mb: '{line}'"))?,
                        malleable,
                    });
                }
                "fault-crash" => {
                    let plan = plan.get_or_insert_with(FaultPlan::none);
                    let mut node = None;
                    let mut at_us = None;
                    let mut restart = None;
                    for field in &rest {
                        let (key, value) = kv(field, line)?;
                        match key {
                            "node" => node = Some(num(value, line)?),
                            "at_us" => at_us = Some(num::<u64>(value, line)?),
                            "restart_after_us" => {
                                restart = if *value == *"none" {
                                    Some(None)
                                } else {
                                    Some(Some(SimSpan::from_micros(num(value, line)?)))
                                };
                            }
                            other => return Err(format!("unknown crash field '{other}'")),
                        }
                    }
                    *plan = plan.clone().with_crash(
                        node.ok_or_else(|| format!("fault-crash needs node: '{line}'"))?,
                        SimTime::from_micros(
                            at_us.ok_or_else(|| format!("fault-crash needs at_us: '{line}'"))?,
                        ),
                        restart.flatten(),
                    );
                }
                "fault-migration-failure" => {
                    plan.get_or_insert_with(FaultPlan::none)
                        .migration_failure_prob = num(single()?, line)?;
                }
                "fault-max-retries" => {
                    plan.get_or_insert_with(FaultPlan::none)
                        .max_migration_retries = num(single()?, line)?;
                }
                "fault-retry-backoff-us" => {
                    plan.get_or_insert_with(FaultPlan::none).retry_backoff =
                        SimSpan::from_micros(num(single()?, line)?);
                }
                "fault-load-info-loss" => {
                    plan.get_or_insert_with(FaultPlan::none).load_info_loss_prob =
                        num(single()?, line)?;
                }
                "fault-reservation-stall-us" => {
                    plan.get_or_insert_with(FaultPlan::none)
                        .reservation_release_stall = SimSpan::from_micros(num(single()?, line)?);
                }
                "fault-seed-salt" => {
                    plan.get_or_insert_with(FaultPlan::none).seed_salt = num(single()?, line)?;
                }
                other => return Err(format!("unknown keyword '{other}'")),
            }
        }
        Ok(CheckScenario {
            nodes,
            policy: policy.ok_or_else(|| "missing 'policy' line".to_owned())?,
            policy_params,
            seed,
            max_sim_time_s,
            jobs,
            fault_plan: plan,
        })
    }
}

fn parse_policy(name: &str) -> Result<PolicyKind, String> {
    // Historical Display names first (what `render` emits), then the
    // registry's kebab-case names so a spec can be written against either.
    PolicyKind::ALL
        .into_iter()
        .find(|p| p.to_string() == name)
        .or_else(|| kind_of(name))
        .ok_or_else(|| format!("unknown policy '{name}'"))
}

/// Generates the scenario for fuzz iteration `iter` of run seed `seed`.
/// Each iteration forks its own RNG stream, so scenarios are independent of
/// worker scheduling and of each other.
pub fn generate(seed: u64, iter: u64) -> CheckScenario {
    // vr-analyze::rng-authority(reason = "the fuzzer roots one stream per (seed, iter) so failures replay from the CLI pair alone")
    let mut rng = SimRng::seed_from(seed).fork(iter);
    // Mostly tiny clusters (cheap, dense coverage of the scheduling logic),
    // with an occasional 64–1024-node scenario: the O(log n) index, the
    // sweep sets, and the commit accounting all have code paths that only a
    // populated cluster exercises, and a fuzzer capped at 6 nodes can never
    // reach them. Large scenarios get a shorter horizon so one iteration
    // stays well under a second even through the O(n²) oracle.
    let large = rng.uniform() < 0.04;
    let n_nodes = if large {
        64 + rng.index(961)
    } else {
        2 + rng.index(5)
    };
    let nodes: Vec<ScenarioNode> = (0..n_nodes)
        .map(|_| ScenarioNode {
            user_mb: *rng.choose(&[64, 128, 192, 384]),
            slots: *rng.choose(&[2, 4, 8]),
        })
        .collect();
    // Draw the policy from the plugin registry — the same table the CLI and
    // config layer resolve names against — so a family added there is
    // fuzzed without touching this file.
    let entries = registry();
    let entry = &entries[rng.index(entries.len())];
    let policy = entry.kind;
    // A parameter bag for the families that have knobs, sometimes left at
    // defaults (empty) to cover both construction paths. Bags are
    // policy-matched: every entry rejects keys it does not know.
    let policy_params = match policy {
        PolicyKind::Malleable if rng.uniform() < 0.6 => {
            ParamBag::new().with("max_step", 1 + rng.index(3))
        }
        PolicyKind::Fractional if rng.uniform() < 0.6 => {
            ParamBag::new().with("oversub", *rng.choose(&[1.0, 1.5, 2.0, 3.0]))
        }
        _ => ParamBag::new(),
    };
    // Malleable width ranges on a slice of the workload, under *every*
    // policy: widths feed slot accounting and the width-aware rate split
    // even when no policy resizes them.
    let annotate_malleable = rng.uniform() < 0.35 || policy == PolicyKind::Malleable;
    // Scale the workload with the cluster so large scenarios actually land
    // jobs on a meaningful fraction of nodes.
    let n_jobs = if large {
        n_nodes / 4 + rng.index(n_nodes)
    } else {
        1 + rng.index(20)
    };
    let mut t = 0u64;
    let jobs: Vec<ScenarioJob> = (0..n_jobs)
        .map(|_| {
            // The arrival process is shaped to stress the calendar event
            // queue: ~40% of jobs share the previous instant (event-dense
            // bursts piling onto one calendar slot), ~10% follow within a
            // sub-second jitter (adjacent-slot density), most of the rest
            // spread over tens of seconds inside the calendar's wheel
            // horizon, and an occasional far jump lands beyond it —
            // exercising slot-colliding sorted inserts and the empty-span
            // min-scan fallback (the bucket-overflow path).
            let roll = rng.uniform();
            if roll < 0.4 {
                // same instant as the previous job
            } else if roll < 0.5 {
                t += 1 + rng.index(999_999) as u64;
            } else if roll < 0.92 {
                t += rng.index(30_000_000) as u64;
            } else {
                t += 1_100_000_000 + rng.index(500_000_000) as u64;
            }
            let malleable = if annotate_malleable && rng.uniform() < 0.5 {
                let min = 1 + rng.index(2) as u32;
                let max = min + rng.index(3) as u32;
                Some((min, max))
            } else {
                None
            };
            ScenarioJob {
                submit_us: t,
                cpu_work_us: 1_000_000 + rng.index(119_000_000) as u64,
                ws_mb: 8 + rng.index(293) as u64,
                malleable,
            }
        })
        .collect();
    let fault_plan = if rng.uniform() < 0.5 {
        let mut plan = FaultPlan::none();
        for _ in 0..rng.index(3) {
            let node = rng.index(n_nodes);
            let at = SimTime::from_secs(1 + rng.index(600) as u64);
            let restart = if rng.uniform() < 0.7 {
                Some(SimSpan::from_secs(10 + rng.index(110) as u64))
            } else {
                None
            };
            plan = plan.with_crash(node, at, restart);
        }
        if rng.uniform() < 0.5 {
            plan = plan.with_migration_failures(*rng.choose(&[0.2, 0.5]));
        }
        if rng.uniform() < 0.3 {
            plan = plan.with_load_info_loss(0.3);
        }
        if rng.uniform() < 0.3 {
            plan = plan.with_reservation_stall(SimSpan::from_secs(5));
        }
        Some(plan)
    } else {
        None
    };
    CheckScenario {
        nodes,
        policy,
        policy_params,
        seed: rng.next_u64(),
        max_sim_time_s: if large { 900 } else { 3600 },
        jobs,
        fault_plan,
    }
}

/// Runs engine, oracle, and auditor on one scenario. `None` means full
/// agreement; `Some(detail)` describes the divergence.
pub fn divergence(scenario: &CheckScenario, skew: OracleSkew) -> Option<String> {
    let (config, trace) = match scenario.to_sim() {
        Ok(pair) => pair,
        Err(e) => return Some(format!("scenario rejected: {e}")),
    };
    let engine = Simulation::new(config.clone()).run(&trace);
    if !engine.audit_violations.is_empty() {
        return Some(format!("auditor: {}", engine.audit_violations.join("; ")));
    }
    let oracle = match run_oracle(&config, &trace, skew) {
        Ok(report) => report,
        Err(e) => return Some(format!("oracle rejected: {e}")),
    };
    let diff = compare_reports(&engine, &oracle, DIFF_TOLERANCE);
    if diff.is_match() {
        None
    } else {
        Some(diff.render())
    }
}

/// The scenario with nodes `start..end` removed, fault-plan crash targets
/// remapped to the surviving indices.
fn without_nodes(scenario: &CheckScenario, start: usize, end: usize) -> CheckScenario {
    let mut c = scenario.clone();
    c.nodes.drain(start..end);
    if let Some(plan) = &mut c.fault_plan {
        plan.node_crashes
            .retain(|crash| !(start..end).contains(&crash.node));
        for crash in &mut plan.node_crashes {
            if crash.node >= end {
                crash.node -= end - start;
            }
        }
    }
    c
}

/// All one-step shrink candidates of a scenario, most aggressive first:
/// ddmin-style contiguous chunk removals (half, quarter, …) ahead of the
/// per-item removals. The greedy loop in [`shrink`] accepts the *first*
/// still-diverging candidate and restarts, so when a big chunk survives the
/// scenario halves in one round — a 1k-node divergence reaches a minimal
/// reproducer in O(log n) rounds instead of the O(n) rounds the
/// one-at-a-time candidates alone would need (each round re-running engine
/// plus the O(n²) oracle over ~n candidates).
fn candidates(scenario: &CheckScenario) -> Vec<CheckScenario> {
    let mut out = Vec::new();
    // Drop contiguous job chunks, largest first (ids renumber implicitly
    // via position).
    let mut chunk = scenario.jobs.len() / 2;
    while chunk >= 2 {
        let mut start = 0;
        while start < scenario.jobs.len() {
            let end = (start + chunk).min(scenario.jobs.len());
            let mut c = scenario.clone();
            c.jobs.drain(start..end);
            out.push(c);
            start = end;
        }
        chunk /= 2;
    }
    // Drop each job individually.
    for i in 0..scenario.jobs.len() {
        let mut c = scenario.clone();
        c.jobs.remove(i);
        out.push(c);
    }
    // Drop contiguous node chunks, then single nodes, remapping fault-plan
    // crash targets either way.
    let mut chunk = scenario.nodes.len() / 2;
    while chunk >= 2 {
        let mut start = 0;
        while start < scenario.nodes.len() {
            let end = (start + chunk).min(scenario.nodes.len());
            if end - start < scenario.nodes.len() {
                out.push(without_nodes(scenario, start, end));
            }
            start = end;
        }
        chunk /= 2;
    }
    if scenario.nodes.len() > 1 {
        for k in 0..scenario.nodes.len() {
            out.push(without_nodes(scenario, k, k + 1));
        }
    }
    // Simplify the fault plan.
    if let Some(plan) = &scenario.fault_plan {
        let mut c = scenario.clone();
        c.fault_plan = None;
        out.push(c);
        for i in 0..plan.node_crashes.len() {
            let mut c = scenario.clone();
            if let Some(p) = &mut c.fault_plan {
                p.node_crashes.remove(i);
            }
            out.push(c);
        }
        if plan.migration_failure_prob > 0.0 {
            let mut c = scenario.clone();
            if let Some(p) = &mut c.fault_plan {
                p.migration_failure_prob = 0.0;
            }
            out.push(c);
        }
        if plan.load_info_loss_prob > 0.0 {
            let mut c = scenario.clone();
            if let Some(p) = &mut c.fault_plan {
                p.load_info_loss_prob = 0.0;
            }
            out.push(c);
        }
        if !plan.reservation_release_stall.is_zero() {
            let mut c = scenario.clone();
            if let Some(p) = &mut c.fault_plan {
                p.reservation_release_stall = SimSpan::ZERO;
            }
            out.push(c);
        }
    }
    // Strip malleable annotations and policy parameters — a divergence that
    // survives without them is a plain-width bug, not a resize bug.
    if scenario.jobs.iter().any(|j| j.malleable.is_some()) {
        let mut c = scenario.clone();
        for j in &mut c.jobs {
            j.malleable = None;
        }
        out.push(c);
    }
    if !scenario.policy_params.is_empty() {
        let mut c = scenario.clone();
        c.policy_params = ParamBag::new();
        out.push(c);
    }
    // Halve times (submission order is preserved by monotone halving).
    if scenario.jobs.iter().any(|j| j.submit_us > 0) {
        let mut c = scenario.clone();
        for j in &mut c.jobs {
            j.submit_us /= 2;
        }
        out.push(c);
    }
    if scenario.jobs.iter().any(|j| j.cpu_work_us > 1_000_000) {
        let mut c = scenario.clone();
        for j in &mut c.jobs {
            j.cpu_work_us = (j.cpu_work_us / 2).max(1_000_000);
        }
        out.push(c);
    }
    if scenario.max_sim_time_s > 60 {
        let mut c = scenario.clone();
        c.max_sim_time_s = (c.max_sim_time_s / 2).max(60);
        out.push(c);
    }
    out
}

/// Greedily shrinks a diverging scenario: accept the first candidate that
/// still diverges, restart, stop at a fixpoint. Returns the minimal
/// scenario and its divergence detail.
pub fn shrink(
    scenario: CheckScenario,
    detail: String,
    skew: OracleSkew,
) -> (CheckScenario, String) {
    let mut best = scenario;
    let mut best_detail = detail;
    for _ in 0..MAX_SHRINK_ROUNDS {
        let mut improved = false;
        for candidate in candidates(&best) {
            if candidate.to_sim().is_err() {
                continue;
            }
            if let Some(d) = divergence(&candidate, skew) {
                best = candidate;
                best_detail = d;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }
    (best, best_detail)
}

/// Options for [`run_fuzz`].
#[derive(Debug, Clone, Copy)]
pub struct FuzzOptions {
    /// Number of scenarios to generate and check.
    pub iters: u64,
    /// Base seed; iteration `i` uses the forked stream `seed.fork(i)`.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub jobs: usize,
    /// Oracle skew knob — [`OracleSkew::CompletionOffByOne`] proves the
    /// harness detects and shrinks a real mismatch.
    pub skew: OracleSkew,
}

/// One shrunk divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzFailure {
    /// The fuzz iteration whose scenario diverged.
    pub iteration: u64,
    /// Human-readable divergence description (field diffs or auditor
    /// violations) of the *shrunk* scenario.
    pub detail: String,
    /// The minimal reproducer.
    pub scenario: CheckScenario,
}

/// The deterministic result of a fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzOutcome {
    /// Base seed of the run.
    pub seed: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Shrunk divergences, in iteration order.
    pub failures: Vec<FuzzFailure>,
    /// Worker panics `(iteration index, message)`, if any.
    pub worker_panics: Vec<(usize, String)>,
}

impl FuzzOutcome {
    /// `true` if every scenario agreed and no worker panicked.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty() && self.worker_panics.is_empty()
    }

    /// A deterministic multi-line summary (no wall-clock content): equal
    /// for equal `(seed, iters)` regardless of worker count.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "vr-check fuzz: seed={} iters={} divergences={} panics={}\n",
            self.seed,
            self.iterations,
            self.failures.len(),
            self.worker_panics.len()
        );
        for failure in &self.failures {
            let first_line = failure.detail.lines().next().unwrap_or("");
            out.push_str(&format!(
                "  iteration={} nodes={} jobs={} policy={}: {}\n",
                failure.iteration,
                failure.scenario.nodes.len(),
                failure.scenario.jobs.len(),
                failure.scenario.policy,
                first_line
            ));
        }
        for (index, message) in &self.worker_panics {
            out.push_str(&format!("  panic at iteration={index}: {message}\n"));
        }
        out
    }
}

/// Runs the fuzzer: generate, check, and shrink on a work-stealing pool.
pub fn run_fuzz(opts: &FuzzOptions) -> FuzzOutcome {
    let indices: Vec<u64> = (0..opts.iters).collect();
    let skew = opts.skew;
    let seed = opts.seed;
    let pool = run_indexed(&indices, opts.jobs, |_, &iter| {
        let scenario = generate(seed, iter);
        divergence(&scenario, skew).map(|detail| {
            let (min, min_detail) = shrink(scenario, detail, skew);
            FuzzFailure {
                iteration: iter,
                detail: min_detail,
                scenario: min,
            }
        })
    });
    FuzzOutcome {
        seed,
        iterations: opts.iters,
        failures: pool.results.into_iter().flatten().flatten().collect(),
        worker_panics: pool.panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trips() {
        for iter in 0..25 {
            let scenario = generate(99, iter);
            let text = scenario.render();
            let parsed = CheckScenario::parse(&text)
                .unwrap_or_else(|e| panic!("iteration {iter}: {e}\n{text}"));
            assert_eq!(parsed, scenario, "iteration {iter} round-trip\n{text}");
        }
    }

    /// Wire-format stability: render → parse → render must reproduce the
    /// exact bytes, for every scenario the fuzzer can generate. This is
    /// what lets `vrecon serve` treat the spec as a canonical request body
    /// (and hash it meaningfully).
    #[test]
    fn render_parse_render_is_byte_identical() {
        for iter in 0..50 {
            let scenario = generate(1234, iter);
            let first = scenario.render();
            let reparsed = CheckScenario::parse(&first)
                .unwrap_or_else(|e| panic!("iteration {iter}: {e}\n{first}"));
            assert_eq!(
                reparsed.render(),
                first,
                "iteration {iter}: render/parse/render drifted"
            );
        }
    }

    #[test]
    fn specs_carry_and_enforce_the_wire_format_version() {
        let scenario = generate(2, 0);
        let text = scenario.render();
        assert!(
            text.contains(&format!("spec-version {WIRE_FORMAT_VERSION}\n")),
            "{text}"
        );
        // A legacy spec without the version line still parses (version 1).
        let legacy: String = text
            .lines()
            .filter(|l| !l.starts_with("spec-version"))
            .map(|l| format!("{l}\n"))
            .collect();
        assert_eq!(CheckScenario::parse(&legacy).unwrap(), scenario);
        // A future version is rejected loudly, not misread.
        let future = text.replace(
            &format!("spec-version {WIRE_FORMAT_VERSION}"),
            "spec-version 999",
        );
        let err = CheckScenario::parse(&future).unwrap_err();
        assert!(err.contains("unsupported spec-version 999"), "{err}");
    }

    #[test]
    fn malformed_specs_are_rejected_with_diagnostics() {
        let cases: &[(&str, &str)] = &[
            ("", "missing 'policy'"),
            ("!!! total garbage\nbytes", "unknown keyword"),
            ("policy G-Loadsharing\nnode user_mb=64", "node needs slots"),
            ("policy G-Loadsharing\nnode slots=2", "node needs user_mb"),
            ("policy nope", "unknown policy"),
            ("policy G-Loadsharing\nseed twelve", "bad number"),
            (
                "policy G-Loadsharing\njob submit_us=0",
                "job needs cpu_work_us",
            ),
            (
                "policy G-Loadsharing\nnode user_mb=64 slots=2 extra=1",
                "unknown node field",
            ),
            (
                "policy G-Loadsharing\nfault-crash at_us=5",
                "fault-crash needs node",
            ),
            ("spec-version one\npolicy G-Loadsharing", "bad number"),
            (
                "policy Malleable\njob submit_us=0 cpu_work_us=1000000 ws_mb=8 malleable=2",
                "expected malleable=min:max",
            ),
            (
                "policy Malleable\npolicy-params max_step",
                "bad policy-params",
            ),
        ];
        for (text, needle) in cases {
            let err = CheckScenario::parse(text)
                .expect_err(&format!("spec should have been rejected: {text:?}"));
            assert!(
                err.contains(needle),
                "spec {text:?}: error {err:?} lacks {needle:?}"
            );
        }
    }

    /// A spec may name its policy by the registry's kebab-case key instead
    /// of the Display name, and carries parameter bags and malleable ranges
    /// through a byte-exact round trip.
    #[test]
    fn registry_names_params_and_widths_round_trip() {
        let text = "policy malleable\n\
                    policy-params max_step=2\n\
                    seed 4\n\
                    max-sim-time-s 600\n\
                    node user_mb=128 slots=4\n\
                    job submit_us=0 cpu_work_us=5000000 ws_mb=16 malleable=1:3\n";
        let scenario = CheckScenario::parse(text).unwrap();
        assert_eq!(scenario.policy, PolicyKind::Malleable);
        assert_eq!(scenario.policy_params.get::<u32>("max_step").unwrap(), Some(2));
        assert_eq!(scenario.jobs[0].malleable, Some((1, 3)));
        let rendered = scenario.render();
        assert_eq!(CheckScenario::parse(&rendered).unwrap(), scenario);
        assert_eq!(CheckScenario::parse(&rendered).unwrap().render(), rendered);
        scenario.to_sim().expect("spec must build a valid sim");
    }

    /// The generator draws every registry family — including both new ones —
    /// and exercises non-empty parameter bags and malleable width ranges.
    #[test]
    fn generator_covers_the_whole_registry() {
        let mut seen = std::collections::BTreeSet::new();
        let mut bagged = 0;
        let mut annotated = 0;
        for iter in 0..400 {
            let s = generate(21, iter);
            seen.insert(s.policy.to_string());
            if !s.policy_params.is_empty() {
                bagged += 1;
            }
            if s.jobs.iter().any(|j| j.malleable.is_some()) {
                annotated += 1;
            }
        }
        assert_eq!(seen.len(), registry().len(), "families drawn: {seen:?}");
        assert!(bagged > 0, "no scenario carried a parameter bag");
        assert!(annotated > 0, "no scenario carried malleable jobs");
    }

    #[test]
    fn generated_scenarios_are_valid() {
        for iter in 0..25 {
            let scenario = generate(7, iter);
            scenario
                .to_sim()
                .unwrap_or_else(|e| panic!("iteration {iter}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for iter in 0..10 {
            assert_eq!(generate(3, iter), generate(3, iter));
        }
    }

    #[test]
    fn broken_oracle_is_caught_and_shrunk() {
        let opts = FuzzOptions {
            iters: 2,
            seed: 1,
            jobs: 2,
            skew: OracleSkew::CompletionOffByOne,
        };
        let outcome = run_fuzz(&opts);
        assert!(
            !outcome.failures.is_empty(),
            "the off-by-one oracle must diverge"
        );
        for failure in &outcome.failures {
            assert!(
                failure.scenario.jobs.len() <= 3,
                "shrunk to {} jobs:\n{}",
                failure.scenario.jobs.len(),
                failure.scenario.render()
            );
            assert!(
                failure.scenario.nodes.len() <= 2,
                "shrunk to {} nodes:\n{}",
                failure.scenario.nodes.len(),
                failure.scenario.render()
            );
        }
    }

    #[test]
    fn generator_occasionally_emits_large_clusters() {
        let mut largest = 0;
        for iter in 0..200 {
            let s = generate(11, iter);
            largest = largest.max(s.nodes.len());
            if s.nodes.len() >= 64 {
                assert_eq!(
                    s.max_sim_time_s, 900,
                    "large scenarios get the short horizon"
                );
                assert!(
                    s.jobs.len() >= s.nodes.len() / 4,
                    "{} nodes but only {} jobs",
                    s.nodes.len(),
                    s.jobs.len()
                );
            } else {
                assert!(s.nodes.len() >= 2);
            }
        }
        assert!(
            largest >= 64,
            "200 iterations never produced a large cluster (largest {largest})"
        );
    }

    #[test]
    fn large_cluster_divergence_shrinks_to_a_minimal_reproducer() {
        // An off-by-one oracle diverges on any completing scenario, so a
        // 128-node / 32-job reproducer must collapse to ~1 node and ~1 job.
        // The chunked candidates make this take O(log n) divergence runs;
        // with only the one-at-a-time removals the test would grind through
        // thousands of engine+oracle executions.
        let scenario = CheckScenario {
            nodes: vec![
                ScenarioNode {
                    user_mb: 128,
                    slots: 4
                };
                128
            ],
            policy: PolicyKind::GLoadSharing,
            policy_params: ParamBag::new(),
            seed: 9,
            max_sim_time_s: 900,
            jobs: (0..32)
                .map(|i| ScenarioJob {
                    submit_us: i * 1_000_000,
                    cpu_work_us: 2_000_000,
                    ws_mb: 32,
                    malleable: None,
                })
                .collect(),
            fault_plan: None,
        };
        let detail = divergence(&scenario, OracleSkew::CompletionOffByOne)
            .expect("the off-by-one oracle must diverge");
        let (minimal, _) = shrink(scenario, detail, OracleSkew::CompletionOffByOne);
        assert!(
            minimal.nodes.len() <= 2,
            "shrunk to {} nodes:\n{}",
            minimal.nodes.len(),
            minimal.render()
        );
        assert!(
            minimal.jobs.len() <= 2,
            "shrunk to {} jobs:\n{}",
            minimal.jobs.len(),
            minimal.render()
        );
    }

    #[test]
    fn outcome_is_identical_for_any_worker_count() {
        let base = FuzzOptions {
            iters: 4,
            seed: 5,
            jobs: 1,
            skew: OracleSkew::None,
        };
        let one = run_fuzz(&base);
        let four = run_fuzz(&FuzzOptions { jobs: 4, ..base });
        assert_eq!(one, four);
        assert_eq!(one.summary(), four.summary());
    }
}
