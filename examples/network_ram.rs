//! The network-RAM extension (§2.3 / the paper's ref [12]): when the
//! cluster holds enough accumulated idle memory, page faults are served
//! from remote RAM over the interconnect instead of local disk.
//!
//! ```sh
//! cargo run --release --example network_ram
//! ```

use vrecon_repro::cluster::netram::NetworkRamParams;
use vrecon_repro::cluster::NetworkParams;
use vrecon_repro::prelude::*;

fn main() {
    let nodes = 8;
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(nodes);
    let trace = synth::blocking_scenario(nodes, Bytes::from_mb(128));

    // What does a remote fault cost on the paper's interconnect?
    let params = NetworkRamParams::over(&NetworkParams::ethernet_10mbps(), Bytes::from_kb(4));
    println!(
        "remote fault service on 10 Mbps Ethernet: {:.1} ms (local disk: 10 ms) -> stall scale {:.2}\n",
        params.remote_fault_service.as_secs_f64() * 1000.0,
        params.stall_scale(vr_simcore::time::SimSpan::from_millis(10)),
    );

    for (label, netram) in [("local disk paging", false), ("network RAM paging", true)] {
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let mut config = SimConfig::new(cluster.clone(), policy).with_seed(7);
            if netram {
                config = config.with_network_ram();
            }
            let report = Simulation::new(config).run(&trace);
            println!(
                "{label:<20} {policy:<18}: slowdown {:.2}, T_page {:.0}s, T_que {:.0}s",
                report.avg_slowdown(),
                report.summary.totals.page,
                report.total_queue_secs(),
            );
        }
    }
    println!(
        "\nNetwork RAM attacks the same waste the paper's reconfiguration does\n\
         (idle memory stranded across workstations) at the paging layer instead\n\
         of the scheduling layer — and the two compose."
    );
}
