//! Golden-file regression test for a reduced Figure 1 / Figure 2 dataset.
//!
//! A scaled-down version of the paper's group-1 experiment (cluster 1
//! truncated to 8 workstations, shortened SPEC traces) is replayed under
//! G-Loadsharing and V-Reconfiguration and compared against checked-in CSV
//! snapshots. The runs are deterministic, so drift here means scheduler
//! behaviour changed — if the change is intentional, regenerate with
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test golden_figures
//! ```
//!
//! and review the CSV diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use vr_workload::trace::spec_trace_scaled;
use vrecon_repro::prelude::*;

const NODES: usize = 8;
const TRACE_SEED: u64 = 42;
const SCHED_SEED: u64 = 7;
/// Shorter lifetimes than the paper's scale so the whole matrix replays in
/// seconds; the blocking dynamics survive the scaling.
const LIFETIME_SCALE: f64 = 0.05;
/// Relative tolerance: runs are bit-deterministic, so this only allows for
/// float formatting round-trips, not behaviour drift.
const REL_TOL: f64 = 1e-9;

const LEVELS: [TraceLevel; 3] = [
    TraceLevel::Light,
    TraceLevel::Normal,
    TraceLevel::HighlyIntensive,
];

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn reduced_cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster1();
    c.nodes.truncate(NODES);
    c
}

/// One CSV per figure: fig1 = totals (execution, queuing), fig2 = averages
/// (slowdown, idle memory MB).
fn render_dataset() -> (String, String) {
    let mut fig1 = String::from("trace,policy,t_exe_s,t_que_s\n");
    let mut fig2 = String::from("trace,policy,avg_slowdown,avg_idle_mb\n");
    for level in LEVELS {
        let trace = spec_trace_scaled(level, &mut SimRng::seed_from(TRACE_SEED), LIFETIME_SCALE);
        for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
            let config = SimConfig::new(reduced_cluster(), policy).with_seed(SCHED_SEED);
            let report = Simulation::new(config).run(&trace);
            assert!(
                report.all_completed(),
                "{} under {policy} left jobs unfinished",
                trace.name
            );
            writeln!(
                fig1,
                "{},{policy},{:.6},{:.6}",
                trace.name,
                report.total_execution_secs(),
                report.total_queue_secs()
            )
            .unwrap();
            writeln!(
                fig2,
                "{},{policy},{:.6},{:.6}",
                trace.name,
                report.avg_slowdown(),
                report.avg_idle_memory_mb()
            )
            .unwrap();
        }
    }
    (fig1, fig2)
}

/// Compares CSVs cell by cell: text columns exactly, numeric columns within
/// `REL_TOL` relative error.
fn assert_csv_close(name: &str, golden: &str, fresh: &str) {
    let g_lines: Vec<&str> = golden.trim_end().lines().collect();
    let f_lines: Vec<&str> = fresh.trim_end().lines().collect();
    assert_eq!(
        g_lines.len(),
        f_lines.len(),
        "{name}: row count changed ({} -> {})",
        g_lines.len(),
        f_lines.len()
    );
    for (row, (g, f)) in g_lines.iter().zip(&f_lines).enumerate() {
        let g_cells: Vec<&str> = g.split(',').collect();
        let f_cells: Vec<&str> = f.split(',').collect();
        assert_eq!(
            g_cells.len(),
            f_cells.len(),
            "{name} row {row}: column count changed"
        );
        for (col, (gc, fc)) in g_cells.iter().zip(&f_cells).enumerate() {
            match (gc.parse::<f64>(), fc.parse::<f64>()) {
                (Ok(gv), Ok(fv)) => {
                    let scale = gv.abs().max(1.0);
                    assert!(
                        (gv - fv).abs() <= REL_TOL * scale,
                        "{name} row {row} col {col}: {gv} -> {fv} (drift {:.3e})",
                        (gv - fv).abs() / scale
                    );
                }
                _ => assert_eq!(gc, fc, "{name} row {row} col {col}"),
            }
        }
    }
}

#[test]
fn reduced_fig1_fig2_match_golden_snapshots() {
    let (fig1, fig2) = render_dataset();
    // vr-lint::allow(env-read, reason = "UPDATE_GOLDEN is an explicit snapshot-regeneration opt-in; without it the test reads no host state")
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    for (name, fresh) in [("fig1_reduced.csv", &fig1), ("fig2_reduced.csv", &fig2)] {
        let path = golden_path(name);
        if update {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, fresh).unwrap();
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        assert_csv_close(name, &golden, fresh);
    }
    if update {
        eprintln!("golden files rewritten; review the diff before committing");
    }
}

/// Every pre-plugin policy family, resolved **through the registry** (name
/// round-trip plus a rendered-and-reparsed parameter bag), reproduces a
/// byte-identical `RunReport` on the golden scenarios. This is the contract
/// the plugin refactor was built under: the registry is a new front door,
/// not a new scheduler. All seven families run the Light golden trace —
/// the heavier traces take minutes per non-sharing family in debug builds
/// and add no byte-identity coverage (the snapshot test above already
/// pins their behaviour).
#[test]
fn registry_resolution_is_byte_identical_on_golden_scenarios() {
    use vrecon::plugin::{kind_of, policy_name, ParamBag};
    use vrecon::report_json::encode_report;

    let classic = [
        PolicyKind::NoLoadSharing,
        PolicyKind::Random,
        PolicyKind::CpuOnly,
        PolicyKind::WeightedCpuMem,
        PolicyKind::GLoadSharing,
        PolicyKind::SuspendLargest,
        PolicyKind::VReconfiguration,
    ];
    for policy in classic {
        let level = TraceLevel::Light;
        let trace = spec_trace_scaled(level, &mut SimRng::seed_from(TRACE_SEED), LIFETIME_SCALE);

        let direct = SimConfig::new(reduced_cluster(), policy).with_seed(SCHED_SEED);
        let via_registry = kind_of(policy_name(policy))
            .unwrap_or_else(|| panic!("{policy} has no registry entry"));
        let bag = ParamBag::parse(&ParamBag::new().render()).unwrap();
        let resolved = SimConfig::new(reduced_cluster(), via_registry)
            .with_policy_params(bag)
            .with_seed(SCHED_SEED);

        let a = encode_report(&Simulation::new(direct).run(&trace));
        let b = encode_report(&Simulation::new(resolved).run(&trace));
        assert_eq!(
            a, b,
            "{policy} on {}: registry-resolved run drifted from the enum-built run",
            trace.name
        );
    }
}

/// The reduced dataset preserves the paper's headline ordering: summed over
/// the arrival levels, V-R's slowdown beats G-LS, and no single level loses
/// by more than 1% (the heavily scaled-down traces make individual levels
/// near-ties). Keeping this separate from the snapshot test means a
/// regenerated golden file cannot silently bake in a regression of the
/// paper's claim.
#[test]
fn reduced_dataset_preserves_the_vr_advantage() {
    let (_, fig2) = render_dataset();
    let rows: Vec<&str> = fig2.trim_end().lines().skip(1).collect();
    let mut gls_sum = 0.0;
    let mut vr_sum = 0.0;
    for pair in rows.chunks(2) {
        let gls: f64 = pair[0].split(',').nth(2).unwrap().parse().unwrap();
        let vr: f64 = pair[1].split(',').nth(2).unwrap().parse().unwrap();
        assert!(
            vr <= gls * 1.01,
            "V-R slowdown {vr} over 1% worse than G-LS {gls} ({})",
            pair[1]
        );
        gls_sum += gls;
        vr_sum += vr;
    }
    assert!(
        vr_sum <= gls_sum,
        "V-R lost in aggregate: {vr_sum:.2} vs {gls_sum:.2}"
    );
}
