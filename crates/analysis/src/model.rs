//! §5's execution-time model: decomposition and the four comparison points.
//!
//! For a workload of `n` jobs, `T_exe = T_cpu + T_page + T_que + T_mig`.
//! Comparing a baseline run (no virtual reconfiguration) against a
//! reconfigured run, the paper examines four components:
//!
//! 1. **CPU service time** — identical by construction (`T_cpu = T̂_cpu`).
//! 2. **Paging time** — reduction is the objective (`T_page > T̂_page`
//!    expected when blocking was resolved).
//! 3. **Queuing time** — `T̂_que = T̂ⁿ_que + Σ g(Q_r(k))`; the gain condition
//!    requires the non-reserved queuing time to shrink more than the
//!    reserved workstations add.
//! 4. **Migration time** — expected nearly equal (`T_mig ≈ T̂_mig`) because
//!    large jobs are few.

use serde::{Deserialize, Serialize};
use vr_cluster::job::TimeBreakdown;
use vrecon::report::RunReport;

/// Verdict on one of §5's model points for a measured pair of runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCheck {
    /// Which §5 point this checks.
    pub name: &'static str,
    /// Whether the measured data satisfies the model's expectation.
    pub holds: bool,
    /// Human-readable evidence.
    pub detail: String,
}

/// The §5 comparison of a baseline run against a virtual-reconfiguration
/// run of the same trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTimeModel {
    /// Baseline totals (`T_cpu`, `T_page`, `T_que`, `T_mig`).
    pub baseline: TimeBreakdown,
    /// Reconfigured totals (`T̂_…`).
    pub reconfigured: TimeBreakdown,
}

impl ExecutionTimeModel {
    /// Builds the model from two run reports.
    ///
    /// # Panics
    ///
    /// Panics if the reports are for different traces — the model compares
    /// the *same* workload under two policies.
    pub fn from_reports(baseline: &RunReport, reconfigured: &RunReport) -> Self {
        assert_eq!(
            baseline.trace_name, reconfigured.trace_name,
            "§5 compares the same workload under two policies"
        );
        ExecutionTimeModel {
            baseline: baseline.summary.totals,
            reconfigured: reconfigured.summary.totals,
        }
    }

    /// `T_exe − T̂_exe`: the total execution-time reduction (positive when
    /// reconfiguration helped).
    pub fn execution_time_reduction(&self) -> f64 {
        self.baseline.wall() - self.reconfigured.wall()
    }

    /// §5's approximation: with `T_cpu = T̂_cpu` and `T_mig ≈ T̂_mig`,
    /// `T_exe − T̂_exe ≈ (T_page − T̂_page) + (T_que − T̂_que)`.
    pub fn approximate_reduction(&self) -> f64 {
        (self.baseline.page - self.reconfigured.page)
            + (self.baseline.queue - self.reconfigured.queue)
    }

    /// Runs all four §5 model points plus the gain condition.
    ///
    /// `mig_tolerance` is the relative slack allowed on point 4 (the paper
    /// expects `T_mig ≈ T̂_mig`, not equality).
    pub fn checks(&self, mig_tolerance: f64) -> Vec<ModelCheck> {
        let b = &self.baseline;
        let r = &self.reconfigured;
        let mut out = Vec::new();
        // Point 1: identical CPU demand. Jobs do the same work under both
        // policies; small float drift from piecewise integration is allowed.
        let cpu_rel = (b.cpu - r.cpu).abs() / b.cpu.max(1e-9);
        out.push(ModelCheck {
            name: "cpu-service-identical",
            holds: cpu_rel < 1e-3,
            detail: format!(
                "T_cpu={:.1}s vs {:.1}s (rel diff {:.2e})",
                b.cpu, r.cpu, cpu_rel
            ),
        });
        // Point 2: paging-time reduction is the objective.
        out.push(ModelCheck {
            name: "paging-time-reduced",
            holds: r.page <= b.page,
            detail: format!("T_page={:.1}s vs {:.1}s", b.page, r.page),
        });
        // Point 3 (gain condition): queuing time falls overall.
        out.push(ModelCheck {
            name: "queuing-time-reduced",
            holds: r.queue <= b.queue,
            detail: format!("T_que={:.1}s vs {:.1}s", b.queue, r.queue),
        });
        // Point 4: migration time is insignificant in load-sharing
        // performance. §5 expects either T_mig ≈ T̂_mig (few large jobs) or,
        // failing that, that migration remains "only a small portion in the
        // execution time" under both policies.
        let mig_base = b.migration.max(1e-9);
        let mig_rel = (r.migration - b.migration) / mig_base;
        let small_portion =
            b.migration / b.wall().max(1e-9) < 0.05 && r.migration / r.wall().max(1e-9) < 0.05;
        out.push(ModelCheck {
            name: "migration-time-insignificant",
            holds: mig_rel.abs() <= mig_tolerance || small_portion,
            detail: format!(
                "T_mig={:.1}s vs {:.1}s (rel diff {:+.1}%; {:.1}%/{:.1}% of T_exe)",
                b.migration,
                r.migration,
                mig_rel * 100.0,
                b.migration / b.wall().max(1e-9) * 100.0,
                r.migration / r.wall().max(1e-9) * 100.0,
            ),
        });
        // The approximation itself: the measured reduction should be close
        // to the page+queue delta when points 1 and 4 hold.
        let exact = self.execution_time_reduction();
        let approx = self.approximate_reduction();
        let approx_rel = (exact - approx).abs() / exact.abs().max(1e-9);
        out.push(ModelCheck {
            name: "reduction-approximation",
            holds: approx_rel < 0.15,
            detail: format!(
                "T_exe−T̂_exe={exact:.1}s vs (ΔT_page+ΔT_que)={approx:.1}s (rel err {:.1}%)",
                approx_rel * 100.0
            ),
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(b: TimeBreakdown, r: TimeBreakdown) -> ExecutionTimeModel {
        ExecutionTimeModel {
            baseline: b,
            reconfigured: r,
        }
    }

    fn bd(cpu: f64, page: f64, queue: f64, mig: f64) -> TimeBreakdown {
        TimeBreakdown {
            cpu,
            page,
            queue,
            migration: mig,
        }
    }

    #[test]
    fn reductions_compute() {
        let m = model(bd(100.0, 50.0, 200.0, 10.0), bd(100.0, 20.0, 120.0, 12.0));
        assert_eq!(m.execution_time_reduction(), 108.0);
        assert_eq!(m.approximate_reduction(), 110.0);
    }

    #[test]
    fn all_checks_hold_for_a_clean_win() {
        let m = model(bd(100.0, 50.0, 200.0, 10.0), bd(100.0, 20.0, 120.0, 11.0));
        let checks = m.checks(0.5);
        assert!(checks.iter().all(|c| c.holds), "{checks:#?}");
        assert_eq!(checks.len(), 5);
    }

    #[test]
    fn paging_regression_is_flagged() {
        let m = model(bd(100.0, 20.0, 200.0, 10.0), bd(100.0, 45.0, 120.0, 10.0));
        let checks = m.checks(0.5);
        let paging = checks
            .iter()
            .find(|c| c.name == "paging-time-reduced")
            .unwrap();
        assert!(!paging.holds);
    }

    #[test]
    fn cpu_mismatch_is_flagged() {
        let m = model(bd(100.0, 0.0, 0.0, 0.0), bd(90.0, 0.0, 0.0, 0.0));
        let cpu = m
            .checks(0.5)
            .into_iter()
            .find(|c| c.name == "cpu-service-identical")
            .unwrap();
        assert!(!cpu.holds);
    }

    #[test]
    fn significant_migration_blowup_is_flagged() {
        // Migration grows 4x AND is a large share of execution time.
        let m = model(bd(100.0, 10.0, 50.0, 10.0), bd(100.0, 5.0, 40.0, 40.0));
        let mig = m
            .checks(0.5)
            .into_iter()
            .find(|c| c.name == "migration-time-insignificant")
            .unwrap();
        assert!(!mig.holds);
    }

    #[test]
    fn small_migration_share_passes_despite_relative_growth() {
        // Migration triples but stays under 5% of execution time under both
        // policies — §5's "small portion" escape hatch.
        let m = model(
            bd(1000.0, 100.0, 2000.0, 10.0),
            bd(1000.0, 50.0, 1200.0, 30.0),
        );
        let mig = m
            .checks(0.5)
            .into_iter()
            .find(|c| c.name == "migration-time-insignificant")
            .unwrap();
        assert!(mig.holds, "{}", mig.detail);
    }
}
