//! Fixed-bucket histograms for distribution reporting.
//!
//! Slowdowns in a blocked cluster are heavy-tailed (a few starved jobs, a
//! mass of mildly delayed ones), so averages hide the story; the evaluation
//! binaries use [`Histogram`] to show the shape. Buckets are fixed at
//! construction — [`Histogram::linear`] or [`Histogram::logarithmic`] — and
//! out-of-range observations land in dedicated under/overflow buckets
//! rather than being dropped.

use serde::{Deserialize, Serialize};

/// A histogram with fixed bucket edges plus under/overflow buckets.
///
/// ```
/// use vr_simcore::histogram::Histogram;
///
/// let mut h = Histogram::logarithmic(1.0, 100.0, 4);
/// for v in [1.5, 2.0, 30.0, 500.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.overflow(), 1); // 500 is beyond the last edge
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket edges, ascending; bucket `i` covers `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// `buckets` equal-width buckets covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and `buckets > 0`.
    pub fn linear(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let width = (hi - lo) / buckets as f64;
        let edges = (0..=buckets).map(|i| lo + width * i as f64).collect();
        Histogram::from_edges(edges)
    }

    /// `buckets` geometrically growing buckets covering `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `buckets > 0`.
    pub fn logarithmic(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && lo < hi, "log histogram needs 0 < lo < hi");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let ratio = (hi / lo).powf(1.0 / buckets as f64);
        let edges = (0..=buckets).map(|i| lo * ratio.powi(i as i32)).collect();
        Histogram::from_edges(edges)
    }

    /// [`Histogram::logarithmic`] with an extra leading `[0, lo)` bucket, so
    /// observations smaller than the geometric range — most importantly an
    /// exact `0.0`, which no log bucket can hold — are *measured* rather
    /// than lumped into the underflow counter. Non-negative inputs can
    /// never underflow this shape.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `buckets > 0`.
    pub fn logarithmic_with_zero(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo > 0.0 && lo < hi, "log histogram needs 0 < lo < hi");
        assert!(buckets > 0, "histogram needs at least one bucket");
        let ratio = (hi / lo).powf(1.0 / buckets as f64);
        let edges = std::iter::once(0.0)
            .chain((0..=buckets).map(|i| lo * ratio.powi(i as i32)))
            .collect();
        Histogram::from_edges(edges)
    }

    fn from_edges(edges: Vec<f64>) -> Self {
        let buckets = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "histogram observed NaN");
        let lo = self.edges[0];
        // vr-lint::allow(panic-in-lib, reason = "the constructor rejects empty edge lists")
        let hi = *self.edges.last().expect("edges are non-empty");
        if value < lo {
            self.underflow += 1;
        } else if value >= hi {
            self.overflow += 1;
        } else {
            // Binary search for the bucket whose range contains the value.
            let idx = match self
                .edges
                // vr-lint::allow(panic-in-lib, reason = "the constructor rejects NaN edges and record() asserts the value is not NaN")
                .binary_search_by(|e| e.partial_cmp(&value).expect("edges are not NaN"))
            {
                Ok(i) => i.min(self.counts.len() - 1),
                Err(i) => i - 1,
            };
            self.counts[idx] += 1;
        }
    }

    /// Total observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// `(lower edge, upper edge, count)` per bucket.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.edges
            .windows(2)
            .zip(self.counts.iter())
            .map(|(w, c)| (w[0], w[1], *c))
    }

    /// A compact multi-line ASCII rendering, one bucket per line, bars
    /// scaled to `width` characters. The `<min` / `>=max` flow lines get
    /// bars on the same scale, so a heavy tail beyond the last edge is as
    /// visible as any in-range bucket.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self
            .counts
            .iter()
            .copied()
            .chain([self.underflow, self.overflow])
            .max()
            .unwrap_or(0)
            .max(1);
        let bar = |count: u64| {
            let len = (count as f64 / max as f64 * width as f64).round() as usize;
            "#".repeat(len)
        };
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!(
                "{:>15} |{} {}\n",
                "<min",
                bar(self.underflow),
                self.underflow
            ));
        }
        for (lo, hi, count) in self.buckets() {
            out.push_str(&format!("{lo:>7.2}-{hi:<7.2} |{} {count}\n", bar(count)));
        }
        if self.overflow > 0 {
            out.push_str(&format!(
                "{:>15} |{} {}\n",
                ">=max",
                bar(self.overflow),
                self.overflow
            ));
        }
        out
    }
}

/// Builds a log-scale slowdown histogram (1× to 1000×, 12 buckets) from
/// per-job slowdowns — the shape the evaluation binaries print.
// vr-analyze::allow(panic-path, reason = "the bucket shape is the constant (1.0, 1000.0, 12), which logarithmic() accepts")
pub fn slowdown_histogram<I: IntoIterator<Item = f64>>(slowdowns: I) -> Histogram {
    let mut h = Histogram::logarithmic(1.0, 1000.0, 12);
    for s in slowdowns {
        h.record(s);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_cover_range() {
        let mut h = Histogram::linear(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.99] {
            h.record(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 0, 0, 1]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::linear(1.0, 2.0, 1);
        h.record(0.5);
        h.record(2.0); // at the top edge: overflow (half-open buckets)
        h.record(1.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn logarithmic_buckets_grow_geometrically() {
        let h = Histogram::logarithmic(1.0, 16.0, 4);
        let edges: Vec<f64> = h.buckets().map(|(lo, _, _)| lo).collect();
        for (i, e) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            assert!((edges[i] - e).abs() < 1e-9, "edge {i}: {}", edges[i]);
        }
    }

    #[test]
    fn values_land_on_exact_edges_correctly() {
        let mut h = Histogram::linear(0.0, 4.0, 4);
        for v in [0.0, 1.0, 2.0, 3.0] {
            h.record(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn ascii_render_shows_bars_and_flows() {
        let mut h = Histogram::linear(0.0, 2.0, 2);
        h.record(0.5);
        h.record(0.6);
        h.record(1.5);
        h.record(5.0);
        let s = h.render_ascii(10);
        assert!(s.contains("##"), "{s}");
        assert!(s.contains(">=max"), "{s}");
    }

    #[test]
    fn ascii_render_snapshot() {
        // Pins the exact layout: flow lines aligned with bucket labels,
        // bars on flow lines, and the bar scale derived from the largest
        // count anywhere — including a dominant overflow tail.
        let mut h = Histogram::linear(0.0, 2.0, 2);
        h.record(-1.0);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        for _ in 0..4 {
            h.record(9.0); // heavy tail: overflow is the tallest bar
        }
        let s = h.render_ascii(8);
        let expected = concat!(
            "           <min |## 1\n",
            "   0.00-1.00    |## 1\n",
            "   1.00-2.00    |#### 2\n",
            "          >=max |######## 4\n",
        );
        assert_eq!(s, expected, "got:\n{s}");
    }

    #[test]
    fn slowdown_histogram_covers_typical_range() {
        let h = slowdown_histogram([1.0, 2.5, 40.0, 900.0, 2000.0]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 0);
    }

    #[test]
    fn zero_bucket_catches_sub_range_values() {
        let mut h = Histogram::logarithmic_with_zero(1.0, 16.0, 4);
        h.record(0.0); // exact zero: measured, not underflow
        h.record(0.5); // sub-range: measured, not underflow
        h.record(1.0);
        h.record(-0.1); // genuinely negative: still underflow
        let counts: Vec<u64> = h.buckets().map(|(_, _, c)| c).collect();
        assert_eq!(counts, vec![2, 1, 0, 0, 0]);
        assert_eq!(h.underflow(), 1);
        let (lo, hi, _) = h.buckets().next().unwrap();
        assert_eq!((lo, hi), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        Histogram::linear(0.0, 1.0, 1).record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        Histogram::linear(1.0, 1.0, 1);
    }
}
