//! Trace exporters: Chrome trace-event JSON and compact JSONL.

use vr_simcore::jsonio::Json;

use crate::{TraceData, TraceRecord, TraceSpan, TRACE_SCHEMA_VERSION};

/// The Chrome trace-event document as a [`Json`] value.
///
/// Spans become `ph:"X"` complete events and records become `ph:"i"`
/// instants; `ts`/`dur` are simulated microseconds, so the timeline in
/// `chrome://tracing` / Perfetto *is* the simulation clock. The lane
/// (`tid`) is the job id when the event has one, else the node id, so each
/// job's lifecycle reads as one horizontal track.
pub fn chrome_trace_json(data: &TraceData) -> Json {
    let mut events = Vec::with_capacity(data.spans.len() + data.records.len());
    for span in &data.spans {
        events.push(span_event(span));
    }
    for record in &data.records {
        events.push(instant_event(record));
    }
    Json::obj([
        ("schema", Json::U64(TRACE_SCHEMA_VERSION)),
        ("displayTimeUnit", Json::str("ms")),
        ("traceEvents", Json::Arr(events)),
    ])
}

/// Renders [`chrome_trace_json`] to the exact bytes written to disk
/// (deterministic: same trace ⇒ same string).
pub fn chrome_trace(data: &TraceData) -> String {
    let mut out = chrome_trace_json(data).render();
    out.push('\n');
    out
}

/// Compact JSON-lines export: a header line
/// `{"schema":…,"kind":"vr-trace","final_time":…,"records":N,"spans":M}`,
/// then one line per record (`{"t":µs,"kind":…,"job":…,"node":…}`, absent
/// fields omitted) and one per span
/// (`{"span":…,"start":µs,"end":µs,"job":…,"node":…}`).
pub fn jsonl(data: &TraceData) -> String {
    let mut out = String::new();
    let header = Json::obj([
        ("schema", Json::U64(TRACE_SCHEMA_VERSION)),
        ("kind", Json::str("vr-trace")),
        ("final_time", Json::U64(data.final_time.as_micros())),
        ("records", Json::U64(data.records.len() as u64)),
        ("spans", Json::U64(data.spans.len() as u64)),
    ]);
    out.push_str(&header.render());
    out.push('\n');
    for record in &data.records {
        let mut fields = vec![
            ("t".to_string(), Json::U64(record.time.as_micros())),
            ("kind".to_string(), Json::str(record.kind)),
        ];
        push_ids(&mut fields, record.job, record.node);
        out.push_str(&Json::Obj(fields).render());
        out.push('\n');
    }
    for span in &data.spans {
        let mut fields = vec![
            ("span".to_string(), Json::str(span.name)),
            ("start".to_string(), Json::U64(span.start.as_micros())),
            ("end".to_string(), Json::U64(span.end.as_micros())),
        ];
        push_ids(&mut fields, span.job, span.node);
        out.push_str(&Json::Obj(fields).render());
        out.push('\n');
    }
    out
}

fn push_ids(fields: &mut Vec<(String, Json)>, job: Option<u64>, node: Option<u64>) {
    if let Some(j) = job {
        fields.push(("job".to_string(), Json::U64(j)));
    }
    if let Some(n) = node {
        fields.push(("node".to_string(), Json::U64(n)));
    }
}

fn lane(job: Option<u64>, node: Option<u64>) -> u64 {
    job.or(node).unwrap_or(0)
}

fn args_obj(job: Option<u64>, node: Option<u64>) -> Json {
    let mut fields = Vec::new();
    push_ids(&mut fields, job, node);
    Json::Obj(fields)
}

fn span_event(span: &TraceSpan) -> Json {
    Json::obj([
        ("name", Json::str(span.name)),
        ("cat", Json::str("span")),
        ("ph", Json::str("X")),
        ("ts", Json::U64(span.start.as_micros())),
        (
            "dur",
            Json::U64(span.end.saturating_since(span.start).as_micros()),
        ),
        ("pid", Json::U64(0)),
        ("tid", Json::U64(lane(span.job, span.node))),
        ("args", args_obj(span.job, span.node)),
    ])
}

fn instant_event(record: &TraceRecord) -> Json {
    Json::obj([
        ("name", Json::str(record.kind)),
        ("cat", Json::str("event")),
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("ts", Json::U64(record.time.as_micros())),
        ("pid", Json::U64(0)),
        ("tid", Json::U64(lane(record.job, record.node))),
        ("args", args_obj(record.job, record.node)),
    ])
}

#[cfg(test)]
mod tests {
    use vr_simcore::time::SimTime;

    use super::*;
    use crate::TraceProfile;

    fn sample() -> TraceData {
        let records = vec![
            TraceRecord {
                time: SimTime::from_secs(1),
                kind: "submitted",
                job: Some(3),
                node: None,
            },
            TraceRecord {
                time: SimTime::from_secs(2),
                kind: "placed",
                job: Some(3),
                node: Some(1),
            },
        ];
        let spans = crate::derive_spans(&records, SimTime::from_secs(10));
        TraceData {
            final_time: SimTime::from_secs(10),
            records,
            spans,
            profile: TraceProfile::new(),
        }
    }

    #[test]
    fn chrome_trace_parses_and_is_deterministic() {
        let data = sample();
        let a = chrome_trace(&data);
        let b = chrome_trace(&data);
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("chrome trace parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 1 derived job span + 2 instant records.
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].get("ph").and_then(Json::as_str),
            Some("X"),
            "spans come first"
        );
        assert_eq!(events[0].get("ts").and_then(Json::as_u64), Some(1_000_000));
    }

    #[test]
    fn jsonl_lines_all_parse() {
        let data = sample();
        let text = jsonl(&data);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + data.records.len() + data.spans.len());
        for line in &lines {
            Json::parse(line).expect("every JSONL line parses");
        }
        let header = Json::parse(lines[0]).expect("header parses");
        assert_eq!(
            header.get("schema").and_then(Json::as_u64),
            Some(TRACE_SCHEMA_VERSION)
        );
        assert_eq!(header.get("records").and_then(Json::as_u64), Some(2));
    }
}
