//! End-to-end simulation throughput: how fast a full paper trace replays.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vr_simcore::rng::SimRng;
use vr_workload::trace::{app_trace, TraceLevel};
use vrecon::config::SimConfig;
use vrecon::policy::PolicyKind;
use vrecon::sim::Simulation;

fn full_trace(c: &mut Criterion) {
    let trace = app_trace(TraceLevel::Light, &mut SimRng::seed_from(42));
    let mut group = c.benchmark_group("full_trace_replay");
    group.sample_size(10);
    group.bench_function("app_trace_1_vreconfiguration_32_nodes", |b| {
        b.iter(|| {
            let config = SimConfig::new(
                vr_cluster::params::ClusterParams::cluster2(),
                PolicyKind::VReconfiguration,
            )
            .with_seed(7);
            let report = Simulation::new(config).run(&trace);
            black_box(report.finished_at)
        })
    });
    group.finish();
}

criterion_group!(benches, full_trace);
criterion_main!(benches);
