//! # vrecon — adaptive and virtual cluster reconfiguration
//!
//! A reproduction of **S. Chen, L. Xiao, X. Zhang, "Adaptive and Virtual
//! Reconfigurations for Effective Dynamic Job Scheduling in Cluster
//! Systems", ICDCS 2002**: dynamic load sharing with CPU + memory
//! thresholds, detection of the *job blocking problem*, and the paper's
//! adaptive virtual-reconfiguration method that reserves lightly loaded
//! workstations to give large-memory jobs dedicated service.
//!
//! * [`policy`] — [`PolicyKind`]: G-Loadsharing,
//!   V-Reconfiguration, and ablation baselines.
//! * [`plugin`] — the [`Policy`] trait, the string-keyed policy
//!   registry, and the [`ParamBag`] parameter grammar.
//! * [`sim`] — the trace-driven [`Simulation`] driver.
//! * [`reservation`] — reserving periods, special service, adaptive
//!   release.
//! * [`config`] — [`SimConfig`] and reservation
//!   tunables.
//! * [`report`] — [`RunReport`] with the §4/§5
//!   measurements.
//! * [`report_json`] — lossless, deterministic JSON encoding of
//!   [`RunReport`] backing the experiment runner's result cache.
//!
//! ## Quickstart
//!
//! ```
//! use vrecon::{PolicyKind, SimConfig, Simulation};
//! use vr_cluster::params::ClusterParams;
//! use vr_simcore::rng::SimRng;
//! use vr_workload::synth;
//!
//! // A small cluster and a workload crafted to provoke the blocking problem.
//! let mut cluster = ClusterParams::cluster2();
//! cluster.nodes.truncate(8);
//! let trace = synth::blocking_scenario(8, vr_cluster::units::Bytes::from_mb(128));
//!
//! let baseline = Simulation::new(SimConfig::new(cluster.clone(), PolicyKind::GLoadSharing))
//!     .run(&trace);
//! let vrecon = Simulation::new(SimConfig::new(cluster, PolicyKind::VReconfiguration))
//!     .run(&trace);
//!
//! // Virtual reconfiguration resolves the blocking problem.
//! assert!(vrecon.avg_slowdown() <= baseline.avg_slowdown());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod compare;
pub mod config;
pub mod events;
pub mod plugin;
pub mod policy;
pub mod report;
pub mod report_json;
pub mod reservation;
pub mod sim;

pub use audit::InvariantAuditor;
pub use compare::{compare_reports, FieldDiff, ReportDiff};
pub use config::{DetectorMode, PendingDiscipline, ReservationOptions, ReservingEnd, SimConfig};
pub use events::{EventLog, SchedulerEvent, SchedulerEventKind};
pub use plugin::{
    build_named, build_policy, policy_name, ParamBag, Policy, PolicyEntry, ResizeDirective,
};
pub use policy::{Placement, PolicyKind};
pub use report::{RunReport, SchedulerCounters};
pub use report_json::{decode_report, encode_report};
pub use reservation::{Reservation, ReservationManager, ReservationPhase, ReservationStats};
pub use sim::Simulation;
