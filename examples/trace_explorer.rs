//! Generates the paper's workload traces, prints their statistics, and
//! round-trips one through the on-disk trace format.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use vrecon_repro::metrics::table::{fmt_f, TextTable};
use vrecon_repro::prelude::*;
use vrecon_repro::workload::{read_trace, write_trace};

fn describe(traces: &[Trace], cluster: &ClusterParams, title: &str) {
    println!("{title}");
    let mut table = TextTable::new(vec![
        "trace",
        "jobs",
        "window (s)",
        "mean ws (MB)",
        "max ws (MB)",
        "offered load",
        "expects V-R gain",
    ]);
    for trace in traces {
        let a = Applicability::assess(trace, cluster);
        let ws: Vec<f64> = trace
            .jobs
            .iter()
            .map(|j| j.max_working_set().as_mb_f64())
            .collect();
        let mean = ws.iter().sum::<f64>() / ws.len() as f64;
        let max = ws.iter().fold(0.0f64, |a, b| a.max(*b));
        table.row(vec![
            trace.name.clone(),
            trace.len().to_string(),
            fmt_f(trace.last_submission().as_secs_f64(), 0),
            fmt_f(mean, 1),
            fmt_f(max, 1),
            fmt_f(a.offered_load, 2),
            a.expects_gain().to_string(),
        ]);
    }
    println!("{}", table.render());
}

fn main() {
    let rng = SimRng::seed_from(42);
    let spec: Vec<Trace> = TraceLevel::ALL
        .into_iter()
        .map(|l| spec_trace(l, &mut rng.fork(l.number() as u64)))
        .collect();
    let app: Vec<Trace> = TraceLevel::ALL
        .into_iter()
        .map(|l| app_trace(l, &mut rng.fork(100 + l.number() as u64)))
        .collect();
    describe(
        &spec,
        &ClusterParams::cluster1(),
        "workload group 1 (SPEC 2000, cluster 1):",
    );
    describe(
        &app,
        &ClusterParams::cluster2(),
        "workload group 2 (applications, cluster 2):",
    );

    // Round-trip SPEC-Trace-3 through the interchange format.
    let original = &spec[2];
    let mut buf = Vec::new();
    write_trace(original, &mut buf).expect("serialize trace");
    let parsed = read_trace(buf.as_slice()).expect("parse trace");
    assert_eq!(parsed.len(), original.len());
    assert_eq!(parsed.name, original.name);
    println!(
        "round-tripped {} through the v1 trace format: {} jobs, {} bytes",
        original.name,
        parsed.len(),
        buf.len()
    );
}
