//! Reproducibility: identical configuration + seed must give bit-identical
//! results, and different seeds must actually differ.

use vrecon_repro::prelude::*;

fn small_cluster() -> ClusterParams {
    let mut c = ClusterParams::cluster2();
    c.nodes.truncate(8);
    c
}

#[test]
fn identical_seeds_reproduce_reports_exactly() {
    let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
    let run = || {
        Simulation::new(
            SimConfig::new(small_cluster(), PolicyKind::VReconfiguration).with_seed(123),
        )
        .run(&trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.summary, b.summary);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.reservations, b.reservations);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.gauges, b.gauges);
    for (ja, jb) in a.jobs.iter().zip(b.jobs.iter()) {
        assert_eq!(ja, jb);
    }
}

#[test]
fn different_sim_seeds_change_outcomes() {
    let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
    let run = |seed| {
        Simulation::new(SimConfig::new(small_cluster(), PolicyKind::GLoadSharing).with_seed(seed))
            .run(&trace)
    };
    // Home-node assignment is seeded, so schedules (and thus totals) shift.
    let a = run(1);
    let b = run(2);
    assert_ne!(
        (a.total_queue_secs(), a.finished_at),
        (b.total_queue_secs(), b.finished_at)
    );
}

#[test]
fn trace_generation_is_seed_deterministic_across_calls() {
    let t1 = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(9));
    let t2 = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(9));
    assert_eq!(t1, t2);
    let t3 = spec_trace(TraceLevel::Normal, &mut SimRng::seed_from(10));
    assert_ne!(t1, t3);
}

#[test]
fn reports_are_deterministic_under_parallel_execution() {
    // The bench harness runs policies on separate threads; that must not
    // perturb results.
    let trace = synth::blocking_scenario(8, Bytes::from_mb(128));
    let sequential =
        Simulation::new(SimConfig::new(small_cluster(), PolicyKind::VReconfiguration).with_seed(5))
            .run(&trace);
    let parallel = std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            Simulation::new(
                SimConfig::new(small_cluster(), PolicyKind::VReconfiguration).with_seed(5),
            )
            .run(&trace)
        });
        handle.join().expect("run panicked")
    });
    assert_eq!(sequential.summary, parallel.summary);
    assert_eq!(sequential.finished_at, parallel.finished_at);
}
