//! Work-stealing thread pool for embarrassingly parallel sweeps.
//!
//! The offline build environment ships no rayon or crossbeam, so this is a
//! small, dependency-free pool built on [`std::thread::scope`]:
//!
//! * work items are *indices* into the caller's slice, pre-distributed
//!   round-robin across per-worker deques;
//! * a worker pops from the **front** of its own deque and, when empty,
//!   steals from the **back** of a sibling's — the classic arrangement
//!   that keeps contention low and preserves rough locality;
//! * each item runs under [`std::panic::catch_unwind`], so one panicking
//!   scenario fails only that scenario: remaining items still execute,
//!   the pool still joins, and the panic message is reported per-index;
//! * results land in a slot per index, so output order is the **input
//!   order**, never the completion order — the cornerstone of
//!   determinism under parallelism.
//!
//! No work is spawned after start, so idle workers simply exit once every
//! deque is empty; there is no parking or wake-up protocol to get wrong.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// The result slots and failures of one pool execution.
#[derive(Debug)]
pub struct PoolOutcome<R> {
    /// One slot per input item, in input order. `None` iff that item's
    /// closure panicked.
    pub results: Vec<Option<R>>,
    /// `(index, panic message)` for every item that panicked, in index
    /// order.
    pub panics: Vec<(usize, String)>,
}

impl<R> PoolOutcome<R> {
    /// Unwraps all slots, panicking with the first recorded failure if any
    /// item failed. Convenience for callers that treat any panic as fatal.
    pub fn into_results(self) -> Vec<R> {
        if let Some((index, message)) = self.panics.first() {
            // vr-lint::allow(panic-in-lib, reason = "into_results is the documented panic-on-failure convenience; fallible callers read panics directly")
            panic!("pool item {index} panicked: {message}");
        }
        self.results
            .into_iter()
            // vr-lint::allow(panic-in-lib, reason = "guarded by the panics check above: every slot was filled by a worker")
            .map(|slot| slot.expect("no panic recorded, so every slot is filled"))
            .collect()
    }
}

/// Clamps a requested worker count to something sensible for `len` items.
///
/// `0` means "auto": [`std::thread::available_parallelism`] (or 1 if even
/// that is unavailable). The result never exceeds the item count and is
/// never zero.
pub fn effective_workers(requested: usize, len: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = if requested == 0 { auto } else { requested };
    workers.clamp(1, len.max(1))
}

/// Runs `work(index, &items[index])` for every item on `jobs` workers and
/// returns results in input order.
///
/// `jobs == 0` selects [`std::thread::available_parallelism`]. With
/// `jobs == 1` items execute on one worker thread in exact input order —
/// the sequential reference that parallel runs must match bit-for-bit.
pub fn run_indexed<T, R, F>(items: &[T], jobs: usize, work: F) -> PoolOutcome<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_workers(jobs, items.len());
    // Per-worker deques, pre-loaded round-robin.
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    // One slot per item; each index is written exactly once, by whichever
    // worker claimed it, so a mutex per slot never contends.
    let slots: Vec<Mutex<Option<Result<R, String>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let work = &work;
            scope.spawn(move || {
                while let Some(index) = claim(deques, me) {
                    let result = catch_unwind(AssertUnwindSafe(|| work(index, &items[index])))
                        .map_err(|payload| panic_message(payload.as_ref()));
                    // vr-lint::allow(panic-in-lib, reason = "worker panics are caught by catch_unwind before the lock is taken, so poisoning is unreachable")
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });

    let mut results = Vec::with_capacity(items.len());
    let mut panics = Vec::new();
    for (index, slot) in slots.into_iter().enumerate() {
        match slot
            .into_inner()
            // vr-lint::allow(panic-in-lib, reason = "worker panics are caught by catch_unwind before the lock is taken, so poisoning is unreachable")
            .expect("result slot poisoned")
            // vr-lint::allow(panic-in-lib, reason = "claim() hands out each index exactly once, so every slot is filled")
            .expect("every index was claimed exactly once")
        {
            Ok(r) => results.push(Some(r)),
            Err(message) => {
                results.push(None);
                panics.push((index, message));
            }
        }
    }
    PoolOutcome { results, panics }
}

/// Pops the next index: front of our own deque, else steal from the back
/// of the first non-empty sibling. `None` once every deque is empty.
fn claim(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    // vr-lint::allow(panic-in-lib, reason = "worker panics are caught by catch_unwind before the lock is taken, so poisoning is unreachable")
    if let Some(index) = deques[me].lock().expect("deque poisoned").pop_front() {
        return Some(index);
    }
    for offset in 1..deques.len() {
        let victim = (me + offset) % deques.len();
        // vr-lint::allow(panic-in-lib, reason = "worker panics are caught by catch_unwind before the lock is taken, so poisoning is unreachable")
        if let Some(index) = deques[victim].lock().expect("deque poisoned").pop_back() {
            return Some(index);
        }
    }
    None
}

/// Extracts a readable message from a panic payload. Public so other
/// executors (the `vr-serve` simulation workers) isolate panics the same
/// way this pool does.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<usize> = (0..37).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let out = run_indexed(&items, jobs, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert!(out.panics.is_empty());
            let results = out.into_results();
            assert_eq!(results, (0..37).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        let out = run_indexed(&[1, 2, 3], 0, |_, &x| x);
        assert_eq!(out.into_results(), vec![1, 2, 3]);
        assert!(effective_workers(0, 100) >= 1);
        assert_eq!(effective_workers(16, 3), 3);
        assert_eq!(effective_workers(2, 0), 1);
    }

    #[test]
    fn panicking_item_fails_alone_without_deadlock() {
        let ran = AtomicUsize::new(0);
        let items: Vec<usize> = (0..20).collect();
        let out = run_indexed(&items, 4, |_, &x| {
            ran.fetch_add(1, Ordering::Relaxed);
            assert!(x != 7, "boom at {x}");
            x
        });
        // All 20 items ran despite the panic at index 7…
        assert_eq!(ran.load(Ordering::Relaxed), 20);
        // …and only index 7 failed, with its message preserved.
        assert_eq!(out.panics.len(), 1);
        assert_eq!(out.panics[0].0, 7);
        assert!(out.panics[0].1.contains("boom at 7"), "{:?}", out.panics);
        assert!(out.results[7].is_none());
        assert_eq!(out.results.iter().flatten().count(), 19);
    }

    #[test]
    fn workers_steal_imbalanced_queues() {
        // One slow item pinned to worker 0's deque; the other worker must
        // steal the rest or this would take ~10 × 20 ms on worker 1 alone.
        let items: Vec<u64> = (0..10).collect();
        let out = run_indexed(&items, 2, |_, &x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            x
        });
        assert_eq!(out.into_results(), items);
    }

    #[test]
    #[should_panic(expected = "pool item 0 panicked")]
    fn into_results_surfaces_failures() {
        let out = run_indexed(&[0], 1, |_, _| -> usize { panic!("nope") });
        let _ = out.into_results();
    }
}
