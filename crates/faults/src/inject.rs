//! The runtime side of fault injection: a seeded injector and counters.

use crate::plan::{FaultPlan, NodeCrash};
use serde::{Deserialize, Serialize};
use vr_simcore::rng::SimRng;

/// Stream id for the injector's RNG fork, so fault draws never perturb the
/// simulation's own random stream (a fault-free plan is bit-identical to
/// running without an injector).
const FAULT_STREAM: u64 = 0xFA01_7B0C_5EED_0001;

/// Counts of injected faults and the scheduler's recovery actions.
///
/// Injection counts (`crashes`, `migration_failures`, ...) are bumped by
/// the injector itself; recovery counts (`migration_retries`,
/// `requeued_jobs`, ...) are bumped by the scheduler as it reacts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Node crashes that actually fired (in-range node, before horizon).
    pub crashes: u64,
    /// Node restarts that fired.
    pub restarts: u64,
    /// Migration attempts that failed in transit.
    pub migration_failures: u64,
    /// Migration retries the scheduler issued after failures.
    pub migration_retries: u64,
    /// Migrations abandoned after exhausting retries.
    pub migrations_abandoned: u64,
    /// Jobs re-queued to the pending queue by crash or migration recovery.
    pub requeued_jobs: u64,
    /// Node load reports dropped from periodic exchanges.
    pub lost_load_reports: u64,
    /// Reservation releases delayed by a configured stall.
    pub stalled_releases: u64,
}

impl FaultCounters {
    /// Total number of injected fault events (recovery actions excluded).
    pub fn total_injected(&self) -> u64 {
        self.crashes
            + self.restarts
            + self.migration_failures
            + self.lost_load_reports
            + self.stalled_releases
    }
}

/// Evaluates a [`FaultPlan`] against a dedicated deterministic RNG stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SimRng,
    /// Injection and recovery counts for this run.
    pub counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector for one run.
    ///
    /// `seed` is the simulation seed; the injector forks a private stream
    /// from it (mixed with the plan's `seed_salt`) so probability draws are
    /// reproducible and independent of the simulation's own stream.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        // vr-analyze::rng-authority(reason = "fault draws root their own salted stream so enabling faults never perturbs the simulation's draws")
        let rng = SimRng::seed_from(seed).fork(FAULT_STREAM ^ plan.seed_salt);
        FaultInjector {
            plan,
            rng,
            counters: FaultCounters::default(),
        }
    }

    /// The plan this injector evaluates.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Crash schedule sorted by time (ties broken by node index), ready to
    /// be turned into simulation events.
    pub fn crash_schedule(&self) -> Vec<NodeCrash> {
        let mut crashes = self.plan.node_crashes.clone();
        crashes.sort_by_key(|c| (c.at, c.node));
        crashes
    }

    /// Decides whether one migration attempt fails in transit.
    ///
    /// Draws from the RNG only when the plan can actually fail migrations,
    /// so a fault-free plan consumes no randomness.
    pub fn migration_fails(&mut self) -> bool {
        let p = self.plan.migration_failure_prob;
        if p <= 0.0 {
            return false;
        }
        let failed = self.rng.uniform() < p;
        if failed {
            self.counters.migration_failures += 1;
        }
        failed
    }

    /// Decides whether one node's report is lost from a load exchange.
    pub fn load_report_lost(&mut self) -> bool {
        let p = self.plan.load_info_loss_prob;
        if p <= 0.0 {
            return false;
        }
        let lost = self.rng.uniform() < p;
        if lost {
            self.counters.lost_load_reports += 1;
        }
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_simcore::time::SimTime;

    #[test]
    fn same_seed_same_plan_same_draws() {
        let plan = FaultPlan::none().with_migration_failures(0.5);
        let mut a = FaultInjector::new(plan.clone(), 7);
        let mut b = FaultInjector::new(plan, 7);
        let xs: Vec<bool> = (0..64).map(|_| a.migration_fails()).collect();
        let ys: Vec<bool> = (0..64).map(|_| b.migration_fails()).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn different_salt_changes_draws() {
        let base = FaultPlan::none().with_migration_failures(0.5);
        let mut salted = base.clone();
        salted.seed_salt = 1;
        let xs: Vec<bool> = {
            let mut inj = FaultInjector::new(base, 7);
            (0..64).map(|_| inj.migration_fails()).collect()
        };
        let ys: Vec<bool> = {
            let mut inj = FaultInjector::new(salted, 7);
            (0..64).map(|_| inj.migration_fails()).collect()
        };
        assert_ne!(xs, ys);
    }

    #[test]
    fn zero_probability_never_fires_or_draws() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 7);
        for _ in 0..100 {
            assert!(!inj.migration_fails());
            assert!(!inj.load_report_lost());
        }
        assert_eq!(inj.counters, FaultCounters::default());
    }

    #[test]
    fn probability_one_always_fires() {
        let plan = FaultPlan::none()
            .with_migration_failures(1.0)
            .with_load_info_loss(1.0);
        let mut inj = FaultInjector::new(plan, 7);
        for _ in 0..10 {
            assert!(inj.migration_fails());
            assert!(inj.load_report_lost());
        }
        assert_eq!(inj.counters.migration_failures, 10);
        assert_eq!(inj.counters.lost_load_reports, 10);
    }

    #[test]
    fn crash_schedule_is_time_ordered() {
        let plan = FaultPlan::none()
            .with_crash(5, SimTime::from_secs(30), None)
            .with_crash(1, SimTime::from_secs(10), None)
            .with_crash(2, SimTime::from_secs(30), None);
        let inj = FaultInjector::new(plan, 0);
        let order: Vec<usize> = inj.crash_schedule().iter().map(|c| c.node).collect();
        assert_eq!(order, vec![1, 2, 5]);
    }
}
