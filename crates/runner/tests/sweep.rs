//! End-to-end sweep guarantees: determinism under parallelism, cache
//! correctness, and content-hash sensitivity.

use std::sync::Arc;

use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_faults::FaultPlan;
use vr_runner::{ResultCache, Runner, Scenario, SweepOptions, SweepPlan};
use vr_simcore::time::SimTime;
use vrecon::{encode_report, PolicyKind, SimConfig};

fn small_cluster() -> ClusterParams {
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(4);
    cluster
}

fn plan() -> SweepPlan {
    let trace = Arc::new(vr_workload::synth::blocking_scenario(4, Bytes::from_mb(64)));
    let mut plan = SweepPlan::new();
    for policy in [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration] {
        for seed in [7u64, 11, 13] {
            plan.push(Scenario::new(
                SimConfig::new(small_cluster(), policy).with_seed(seed),
                Arc::clone(&trace),
            ));
        }
    }
    plan
}

fn temp_cache() -> (std::path::PathBuf, ResultCache) {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "vr-runner-test-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    (dir.clone(), ResultCache::at(dir))
}

/// A parallel sweep produces bit-identical reports to a sequential one.
#[test]
fn eight_workers_match_one_worker_bit_for_bit() {
    let sequential = Runner::uncached(1).run(&plan()).expect_reports();
    let parallel = Runner::uncached(8).run(&plan()).expect_reports();
    assert_eq!(sequential.len(), parallel.len());
    for (seq, par) in sequential.iter().zip(&parallel) {
        assert_eq!(seq, par);
        // Not just structurally equal: the serialized bytes (what the cache
        // and any downstream table rendering see) are identical too.
        assert_eq!(encode_report(seq), encode_report(par));
    }
}

/// A second identical sweep is served entirely from the cache and returns
/// byte-identical reports.
#[test]
fn second_sweep_hits_cache_with_identical_output() {
    let (dir, cache) = temp_cache();
    let runner = |cache| {
        Runner::new(SweepOptions {
            jobs: 2,
            cache,
            progress: false,
        })
    };
    let first = runner(cache).run(&plan());
    assert_eq!(first.cache.hits, 0);
    assert_eq!(first.cache.misses, plan().len() as u64);

    let second = runner(ResultCache::at(dir.clone())).run(&plan());
    assert_eq!(second.cache.hits, plan().len() as u64);
    assert_eq!(second.cache.misses, 0);
    let fresh = first.expect_reports();
    let cached = second.expect_reports();
    for (a, b) in fresh.iter().zip(&cached) {
        assert_eq!(a, b);
        assert_eq!(encode_report(a), encode_report(b));
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The content hash reacts to every run-relevant input, so stale cache
/// entries can never be served for a changed experiment.
#[test]
fn fault_plan_and_seed_change_the_content_hash() {
    let trace = Arc::new(vr_workload::synth::blocking_scenario(4, Bytes::from_mb(64)));
    let base = SimConfig::new(small_cluster(), PolicyKind::VReconfiguration).with_seed(7);
    let scenario = |config| Scenario::new(config, Arc::clone(&trace));

    let plain = scenario(base.clone()).content_hash();
    let faulted = scenario(base.clone().with_faults(FaultPlan::none().with_crash(
        1,
        SimTime::from_secs(10),
        None,
    )))
    .content_hash();
    let reseeded = scenario(base.clone().with_seed(8)).content_hash();
    assert_ne!(plain, faulted);
    assert_ne!(plain, reseeded);
    assert_ne!(faulted, reseeded);
    // Relabeling is cosmetic and must NOT split the cache.
    assert_eq!(
        scenario(base.clone()).labeled("renamed").content_hash(),
        plain
    );
}
