//! Regenerates **Figure 2**: average slowdowns (left) and average idle
//! memory volumes (right) for the 5 workload-group-1 traces, plus the
//! paper's sampling-interval insensitivity check (§4.1: 1 s, 10 s, 30 s and
//! 1 min sampling give "almost identical average values").

use vr_bench::render::figure_panel;
use vr_bench::{paper, run_group, Group};
use vr_metrics::table::{fmt_f, TextTable};
use vr_simcore::time::SimSpan;

fn main() {
    println!("Figure 2 — workload group 1 (SPEC 2000) on cluster 1 (32 nodes)\n");
    let pairs = run_group(Group::Spec);
    println!(
        "{}",
        figure_panel(
            "left: average slowdowns",
            &pairs,
            &paper::FIG2_SLOWDOWN,
            2,
            |p| p.slowdown(),
        )
    );
    println!(
        "{}",
        figure_panel(
            "right: average idle memory volumes (MB, non-reserved workstations)",
            &pairs,
            &paper::FIG2_IDLE,
            0,
            |p| p.idle_memory(),
        )
    );

    // §4.1 interval-insensitivity check on the V-R runs.
    let mut table = TextTable::new(vec!["trace", "1s", "10s", "30s", "60s"]);
    for pair in &pairs {
        let series = &pair.vr.gauges.idle_memory_mb;
        let cells: Vec<String> = [1u64, 10, 30, 60]
            .iter()
            .map(|s| fmt_f(series.resample(SimSpan::from_secs(*s)).sample_average(), 1))
            .collect();
        let mut row = vec![pair.trace_name.clone()];
        row.extend(cells);
        table.row(row);
    }
    println!(
        "sampling-interval insensitivity of the average idle memory volume (V-R):\n{}",
        table.render()
    );
}
