//! A minimal HTTP/1.1 request reader and response writer.
//!
//! The offline build environment has no hyper/axum, and the service needs
//! only a sliver of HTTP: one request per connection (`Connection: close`
//! on every response), `POST /run` with a `Content-Length` body, and a
//! couple of diagnostic `GET`s. This module implements exactly that
//! sliver with explicit limits, so every malformed, oversized, or stalled
//! request maps to a well-formed 4xx instead of a hung thread or a panic:
//!
//! * request head (request line + headers) over [`MAX_HEAD_BYTES`] → 431;
//! * body over [`MAX_BODY_BYTES`] → 413;
//! * `POST` without `Content-Length` → 411;
//! * socket read timeout mid-request (slow-loris) → 408;
//! * anything unparsable → 400 with a one-line diagnostic.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted size of the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum accepted `Content-Length`. Scenario specs are a few KB; a
/// megabyte is already absurd, and an explicit cap beats an OOM.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, path, and UTF-8 body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ... (uppercase as received).
    pub method: String,
    /// Request target as received (query strings are not interpreted).
    pub path: String,
    /// Decoded request body (empty for bodyless requests).
    pub body: String,
}

/// Why a request could not be read. Each variant maps to one response
/// status; [`RecvError::status`] is that mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// Unparsable request line, header, or non-UTF-8 body → 400.
    BadRequest(String),
    /// `POST` without a `Content-Length` header → 411.
    LengthRequired,
    /// Declared body larger than [`MAX_BODY_BYTES`] → 413.
    PayloadTooLarge,
    /// Request head larger than [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// The socket read timed out before a full request arrived → 408.
    Timeout,
    /// The peer closed the connection before sending a full request; no
    /// response can be delivered.
    Closed,
}

impl RecvError {
    /// The response status for this error (`Closed` has none).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            RecvError::BadRequest(_) => Some((400, "Bad Request")),
            RecvError::LengthRequired => Some((411, "Length Required")),
            RecvError::PayloadTooLarge => Some((413, "Payload Too Large")),
            RecvError::HeadTooLarge => Some((431, "Request Header Fields Too Large")),
            RecvError::Timeout => Some((408, "Request Timeout")),
            RecvError::Closed => None,
        }
    }

    /// One-line diagnostic for the response body.
    pub fn message(&self) -> String {
        match self {
            RecvError::BadRequest(why) => why.clone(),
            RecvError::LengthRequired => "POST requires a Content-Length header".to_owned(),
            RecvError::PayloadTooLarge => {
                format!("request body exceeds {MAX_BODY_BYTES} bytes")
            }
            RecvError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            RecvError::Timeout => "timed out waiting for the request".to_owned(),
            RecvError::Closed => "connection closed".to_owned(),
        }
    }
}

fn io_recv_error(e: std::io::Error) -> RecvError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => RecvError::Timeout,
        _ => RecvError::Closed,
    }
}

/// Reads one request from the stream. The caller is expected to have set
/// a read timeout on the socket; a timeout mid-request surfaces as
/// [`RecvError::Timeout`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, RecvError> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            if pos > MAX_HEAD_BYTES {
                return Err(RecvError::HeadTooLarge);
            }
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(RecvError::HeadTooLarge);
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk).map_err(io_recv_error)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(RecvError::Closed)
            } else {
                Err(RecvError::BadRequest("truncated request head".to_owned()))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::BadRequest("request head is not UTF-8".to_owned()))?
        .to_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => {
            return Err(RecvError::BadRequest(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::BadRequest(format!(
            "unsupported protocol {version:?}"
        )));
    }

    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::BadRequest(format!("malformed header {line:?}")));
        };
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = value
                .trim()
                .parse::<usize>()
                .map_err(|_| RecvError::BadRequest(format!("bad Content-Length {value:?}")))?;
            content_length = Some(parsed);
        }
    }

    let method = method.to_owned();
    let path = path.to_owned();
    let body_len = match content_length {
        Some(n) => n,
        None if method == "POST" => return Err(RecvError::LengthRequired),
        None => 0,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(RecvError::PayloadTooLarge);
    }

    // The bytes after the head already read, then the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > body_len {
        return Err(RecvError::BadRequest(
            "body longer than Content-Length".to_owned(),
        ));
    }
    while body.len() < body_len {
        let mut chunk = vec![0u8; (body_len - body.len()).min(16 * 1024)];
        let n = stream.read(&mut chunk).map_err(io_recv_error)?;
        if n == 0 {
            return Err(RecvError::BadRequest("truncated request body".to_owned()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(body)
        .map_err(|_| RecvError::BadRequest("request body is not UTF-8".to_owned()))?;

    Ok(Request { method, path, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response about to be written. Every response closes the connection.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value), e.g. `X-Vrecon-Outcome`.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `text/plain` response with no extra headers.
    pub fn text(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// An `application/json` response with no extra headers.
    pub fn json(status: u16, reason: &'static str, body: impl Into<String>) -> Response {
        Response {
            status,
            reason,
            content_type: "application/json",
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// Serialises and writes a response. Write errors are returned for the
/// caller to count; there is nobody left to report them to on the wire.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason,
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Runs `read_request` against raw bytes sent over a real socket.
    fn read_raw(raw: &[u8]) -> Result<Request, RecvError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // The reader may bail (and close) before consuming everything,
            // so a write error here is expected for rejection cases.
            let _ = s.write_all(&raw);
            // Closing the stream ends the request for truncation cases.
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(2)))
            .unwrap();
        let out = read_request(&mut stream);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = read_raw(b"POST /run HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn parses_get_without_length() {
        let req = read_raw(b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/stats");
        assert_eq!(req.body, "");
    }

    #[test]
    fn post_without_length_is_411() {
        let err = read_raw(b"POST /run HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, RecvError::LengthRequired);
        assert_eq!(err.status(), Some((411, "Length Required")));
    }

    #[test]
    fn oversized_declared_body_is_413() {
        let raw = format!(
            "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            2 * 1024 * 1024
        );
        let err = read_raw(raw.as_bytes()).unwrap_err();
        assert_eq!(err, RecvError::PayloadTooLarge);
    }

    #[test]
    fn oversized_head_is_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(MAX_HEAD_BYTES)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        let err = read_raw(&raw).unwrap_err();
        assert_eq!(err, RecvError::HeadTooLarge);
    }

    #[test]
    fn garbage_request_line_is_400() {
        let err = read_raw(b"NONSENSE\r\n\r\n").unwrap_err();
        assert!(matches!(err, RecvError::BadRequest(_)), "{err:?}");
        let err = read_raw(b"GET / SMTP/3\r\n\r\n").unwrap_err();
        assert!(matches!(err, RecvError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn truncated_body_is_400_not_a_hang() {
        let err = read_raw(b"POST /run HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort").unwrap_err();
        assert!(matches!(err, RecvError::BadRequest(_)), "{err:?}");
    }

    #[test]
    fn slow_loris_times_out_as_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            // One drip of a request head, then silence longer than the
            // server's read timeout.
            s.write_all(b"POST /run HTTP/1.1\r\n").unwrap();
            std::thread::sleep(std::time::Duration::from_millis(300));
            drop(s);
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .unwrap();
        let err = read_request(&mut stream).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
        assert_eq!(err.status(), Some((408, "Request Timeout")));
        writer.join().unwrap();
    }

    #[test]
    fn response_wire_format_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        let resp = Response::json(200, "OK", "{\"x\":1}").with_header("X-Vrecon-Outcome", "hot");
        write_response(&mut stream, &resp).unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.contains("X-Vrecon-Outcome: hot\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
    }
}
