//! `vr-lint` — a dependency-free determinism & panic-safety analyzer for
//! the vrecon workspace.
//!
//! The reproduction's headline guarantee is that `(plan, seed)` determines
//! the `RunReport` bit-for-bit. That contract used to rest on convention;
//! this crate makes it machine-checked. A hand-rolled token-level lexer
//! (the container is offline — no `syn`/`quote`; see the
//! `vr_simcore::jsonio` precedent) feeds a small rule engine with
//! per-crate scoping, rustc-style `file:line:col` diagnostics, JSON
//! output, and `// vr-lint::allow(rule, reason = "...")` suppression
//! directives with mandatory reasons and stale-allow reporting.
//!
//! Three entry points:
//!
//! * the `vr-lint` binary (`cargo run -p vr-lint -- --workspace`), used by
//!   CI;
//! * the `vrecon lint` subcommand;
//! * the self-lint integration test in this crate, which makes tier-1
//!   `cargo test -q` fail on any new hazard.
//!
//! See `ARCHITECTURE.md` ("Static analysis") for the rule table.

pub mod analyze;
pub mod callgraph;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod syntax;

use std::path::{Path, PathBuf};

pub use analyze::{analyze_sources, analyze_workspace, AnalysisReport, ANALYZE_RULES};
pub use diag::{Diagnostic, LintReport};
pub use rules::{FileContext, Role, RULES};

/// A parsed `vr-lint::allow` directive.
#[derive(Debug)]
struct Directive {
    rule: String,
    line: u32,
    col: u32,
    /// `Some(why)` when the directive is malformed.
    error: Option<String>,
    used: bool,
}

/// The marker that introduces a directive inside a `//` comment.
const MARKER: &str = "vr-lint::";

/// Parses directives out of a file's comments. A directive is a plain
/// `//` comment whose (trimmed) text *starts with* `vr-lint::`; it must
/// parse as `allow(<rule>, reason = "<text>")` with a known rule name and
/// a non-empty reason, or it becomes a `malformed-directive` diagnostic —
/// a suppression that silently does nothing is worse than a loud one.
/// Doc comments (`///`, `//!`) lex with a leading `/` or `!` in their
/// text, so prose that merely *mentions* the syntax never matches.
fn parse_directives(comments: &[lexer::Comment]) -> Vec<Directive> {
    let mut out = Vec::new();
    for c in comments {
        let trimmed = c.text.trim_start();
        if !trimmed.starts_with(MARKER) {
            continue;
        }
        let rest = &trimmed[MARKER.len()..];
        let mut directive = Directive {
            rule: String::new(),
            line: c.line,
            col: c.col,
            error: None,
            used: false,
        };
        match parse_allow(rest) {
            Ok((rule, _reason)) => {
                if rules::rule_named(&rule).is_none() {
                    directive.error = Some(format!("unknown rule `{rule}`"));
                }
                directive.rule = rule;
            }
            Err(why) => directive.error = Some(why),
        }
        out.push(directive);
    }
    out
}

/// Parses `allow(<rule>, reason = "<text>")`, returning `(rule, reason)`.
fn parse_allow(text: &str) -> Result<(String, String), String> {
    let text = text.trim_start();
    let body = text
        .strip_prefix("allow")
        .ok_or_else(|| "expected `allow(...)` after `vr-lint::`".to_owned())?
        .trim_start();
    let body = body
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_owned())?;
    let close = body
        .rfind(')')
        .ok_or_else(|| "unclosed `allow(` directive".to_owned())?;
    let body = &body[..close];
    let (rule, rest) = body.split_once(',').ok_or_else(|| {
        "expected `allow(rule, reason = \"...\")` — the reason is mandatory".to_owned()
    })?;
    let rule = rule.trim().to_owned();
    if rule.is_empty() {
        return Err("empty rule name".to_owned());
    }
    let rest = rest.trim();
    let value = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| "expected `reason = \"...\"` after the rule name".to_owned())?;
    let reason = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| "reason must be a double-quoted string".to_owned())?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".to_owned());
    }
    Ok((rule, reason.to_owned()))
}

/// The outcome of linting one source file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings, including stale/malformed directive reports.
    pub diagnostics: Vec<Diagnostic>,
    /// Well-formed allow directives seen.
    pub allows: usize,
    /// Of those, how many suppressed nothing.
    pub stale_allows: usize,
}

/// Lints one file's source text under an explicit context. `rel_path` is
/// used both for diagnostics and for path-scoped rules, so pass the real
/// workspace-relative path when there is one.
pub fn lint_source(rel_path: &str, src: &str, ctx: &FileContext) -> FileOutcome {
    let lexed = lexer::lex(src);
    let regions = rules::test_regions(&lexed.tokens);
    let mut directives = parse_directives(&lexed.comments);
    let mut out = FileOutcome::default();

    for rule in RULES {
        if !(rule.applies)(&ctx.krate, rel_path) {
            continue;
        }
        if rule.skip_test_code && ctx.role == Role::Test {
            continue;
        }
        if rule.skip_bin_code && matches!(ctx.role, Role::Bin | Role::Example) {
            continue;
        }
        let mut findings: Vec<(u32, u32, String)> = Vec::new();
        (rule.run)(&lexed.tokens, &mut |line, col, message| {
            findings.push((line, col, message));
        });
        for (line, col, message) in findings {
            if rule.skip_test_code && rules::in_regions(&regions, line) {
                continue;
            }
            // A directive suppresses findings of its rule on its own line
            // and the line directly below it. A directive sitting inside a
            // `#[cfg(test)]` region for a rule that skips test code is
            // never eligible: the rule is exempt there, so the directive
            // is dead weight — and without this check one placed on the
            // region's closing line would silently suppress *live* code on
            // the next line instead of being reported stale.
            let suppressed = directives.iter_mut().any(|d| {
                let hit = d.error.is_none()
                    && d.rule == rule.name
                    && (d.line == line || d.line + 1 == line)
                    && !(rule.skip_test_code && rules::in_regions(&regions, d.line));
                if hit {
                    d.used = true;
                }
                hit
            });
            if suppressed {
                continue;
            }
            out.diagnostics.push(Diagnostic {
                file: rel_path.to_owned(),
                line,
                col,
                rule: rule.name.to_owned(),
                message,
            });
        }
    }

    for d in &directives {
        match &d.error {
            Some(why) => out.diagnostics.push(Diagnostic {
                file: rel_path.to_owned(),
                line: d.line,
                col: d.col,
                rule: "malformed-directive".to_owned(),
                message: format!("{why}; write `vr-lint::allow(rule, reason = \"...\")`"),
            }),
            None => {
                out.allows += 1;
                if !d.used {
                    out.stale_allows += 1;
                    let exempt_region = rules::rule_named(&d.rule)
                        .is_some_and(|r| r.skip_test_code)
                        && rules::in_regions(&regions, d.line);
                    let message = if exempt_region {
                        format!(
                            "allow({}) sits inside `#[cfg(test)]` code where the \
                             rule is already exempt; remove the directive",
                            d.rule
                        )
                    } else {
                        format!("allow({}) suppressed nothing; remove the directive", d.rule)
                    };
                    out.diagnostics.push(Diagnostic {
                        file: rel_path.to_owned(),
                        line: d.line,
                        col: d.col,
                        rule: "stale-allow".to_owned(),
                        message,
                    });
                }
            }
        }
    }
    out.diagnostics.sort_by_key(|d| d.sort_key());
    out
}

/// Classifies a workspace-relative path into its crate and role.
pub fn classify(rel_path: &str) -> FileContext {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let krate = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_owned()
    } else {
        "repro".to_owned()
    };
    let file = parts.last().copied().unwrap_or("");
    let role = if parts.contains(&"tests") || parts.contains(&"benches") {
        Role::Test
    } else if parts.contains(&"examples") {
        Role::Example
    } else if file == "main.rs" || file == "build.rs" || parts.contains(&"bin") {
        Role::Bin
    } else {
        Role::Lib
    };
    FileContext { krate, role }
}

/// Directories never descended into. `compat/` holds vendored stand-ins
/// for absent registry crates (not project code); `fixtures/` holds this
/// crate's seeded-violation test inputs.
const SKIP_DIRS: &[&str] = &[
    ".git",
    ".vr-cache",
    "compat",
    "fixtures",
    "golden",
    "results",
    "target",
];

/// Collects every `.rs` file under `root` that the analyzer owns, as
/// `(absolute, workspace-relative)` pairs sorted by relative path.
pub fn workspace_files(root: &Path) -> Result<Vec<(PathBuf, String)>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .map_err(|e| format!("path {} outside root: {e}", path.display()))?
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                files.push((path, rel));
            }
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let mut report = LintReport::default();
    for (abs, rel) in workspace_files(root)? {
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let ctx = classify(&rel);
        let outcome = lint_source(&rel, &src, &ctx);
        report.diagnostics.extend(outcome.diagnostics);
        report.allows += outcome.allows;
        report.stale_allows += outcome.stale_allows;
        report.files_scanned += 1;
    }
    report.diagnostics.sort_by_key(|d| d.sort_key());
    Ok(report)
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]` — how `vrecon lint` finds the workspace root.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(krate: &str) -> FileContext {
        FileContext {
            krate: krate.to_owned(),
            role: Role::Lib,
        }
    }

    #[test]
    fn allow_directive_grammar() {
        assert!(parse_allow(r#"allow(float-eq, reason = "exact guard")"#).is_ok());
        assert!(parse_allow(r#"allow( float-eq , reason = "x" )"#).is_ok());
        assert!(parse_allow(r#"allow(float-eq)"#).is_err());
        assert!(parse_allow(r#"allow(float-eq, reason = "")"#).is_err());
        assert!(parse_allow(r#"allow(float-eq, reason = unquoted)"#).is_err());
        assert!(parse_allow(r#"deny(float-eq)"#).is_err());
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = "\
// vr-lint::allow(nondeterministic-collection, reason = \"membership only\")
use std::collections::HashMap;
use std::collections::HashSet;
";
        let out = lint_source("crates/core/src/x.rs", src, &lib_ctx("core"));
        // Line 2 suppressed, line 3 not.
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].line, 3);
        assert_eq!(out.allows, 1);
        assert_eq!(out.stale_allows, 0);
    }

    #[test]
    fn trailing_allow_on_same_line() {
        let src = "use std::collections::HashSet; // vr-lint::allow(nondeterministic-collection, reason = \"never iterated\")\n";
        let out = lint_source("crates/simcore/src/x.rs", src, &lib_ctx("simcore"));
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn stale_allow_is_reported() {
        let src = "// vr-lint::allow(wall-clock, reason = \"no longer true\")\nfn f() {}\n";
        let out = lint_source("crates/core/src/x.rs", src, &lib_ctx("core"));
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "stale-allow");
        assert_eq!(out.stale_allows, 1);
    }

    #[test]
    fn malformed_and_unknown_rule_directives() {
        let src = "// vr-lint::allow(nope-rule, reason = \"x\")\n// vr-lint::allow(float-eq)\n";
        let out = lint_source("crates/core/src/x.rs", src, &lib_ctx("core"));
        assert_eq!(out.diagnostics.len(), 2);
        assert!(out
            .diagnostics
            .iter()
            .all(|d| d.rule == "malformed-directive"));
    }

    #[test]
    fn crate_scoping_gates_rules() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            lint_source("crates/core/src/x.rs", src, &lib_ctx("core"))
                .diagnostics
                .len(),
            1
        );
        // The analysis crate is outside the deterministic set.
        assert!(
            lint_source("crates/analysis/src/x.rs", src, &lib_ctx("analysis"))
                .diagnostics
                .is_empty()
        );
    }

    #[test]
    fn panic_rule_exempts_tests_and_bins() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(
            lint_source("crates/core/src/x.rs", src, &lib_ctx("core"))
                .diagnostics
                .len(),
            1
        );
        for role in [Role::Test, Role::Bin, Role::Example] {
            let ctx = FileContext {
                krate: "core".to_owned(),
                role,
            };
            assert!(lint_source("crates/core/src/x.rs", src, &ctx)
                .diagnostics
                .is_empty());
        }
        // ... and in-file #[cfg(test)] modules.
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/core/src/x.rs", src, &lib_ctx("core"))
            .diagnostics
            .is_empty());
    }

    #[test]
    fn wall_clock_has_no_filename_escape_hatch() {
        let src = "use std::time::Instant;\nfn now() -> Instant { Instant::now() }\n";
        // The serve crate is NOT in the orchestration allow-list…
        assert_eq!(
            lint_source("crates/serve/src/server.rs", src, &lib_ctx("serve"))
                .diagnostics
                .len(),
            3
        );
        // …and since the boundary moved to checked `vr-analyze` taint,
        // even the clock-injection file answers to the token rule: every
        // `Instant` there needs its own reasoned allow.
        assert_eq!(
            lint_source("crates/serve/src/clock.rs", src, &lib_ctx("serve"))
                .diagnostics
                .len(),
            3
        );
    }

    #[test]
    fn allow_inside_test_region_for_exempt_rule_is_stale_not_leaky() {
        // The directive trails the region's closing brace, so its
        // line + 1 coverage window lands on *live* code. It must not
        // suppress the live finding, and it must be reported stale.
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn t() {}
} // vr-lint::allow(panic-in-lib, reason = \"exempt in tests anyway\")
fn hot() -> u32 { x.unwrap() }
";
        let out = lint_source("crates/core/src/x.rs", src, &lib_ctx("core"));
        assert_eq!(out.stale_allows, 1, "{:?}", out.diagnostics);
        let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule.as_str()).collect();
        assert_eq!(rules, vec!["stale-allow", "panic-in-lib"]);
        assert!(out.diagnostics[0].message.contains("#[cfg(test)]"));
        // A directive fully inside the region is stale too, with the
        // region-specific explanation.
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    // vr-lint::allow(panic-in-lib, reason = \"tests may unwrap\")
    fn t() -> u32 { y.unwrap() }
}
";
        let out = lint_source("crates/core/src/x.rs", src, &lib_ctx("core"));
        assert_eq!(out.stale_allows, 1);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("already exempt"));
    }

    #[test]
    fn unsafe_block_rule_fires_in_deterministic_crates_only() {
        let src = "fn f(p: *const u32) -> u32 { unsafe { *p } }\n";
        let out = lint_source("crates/simcore/src/x.rs", src, &lib_ctx("simcore"));
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, "unsafe-block");
        // The orchestration layer is outside the rule's scope.
        assert!(
            lint_source("crates/runner/src/x.rs", src, &lib_ctx("runner"))
                .diagnostics
                .is_empty()
        );
        // The reasoned escape hatch works like every other rule.
        let allowed = "// vr-lint::allow(unsafe-block, reason = \"FFI shim audited in review\")\nfn f(p: *const u32) -> u32 { unsafe { *p } }\n";
        let out = lint_source("crates/simcore/src/x.rs", allowed, &lib_ctx("simcore"));
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    }

    #[test]
    fn classify_paths() {
        let c = classify("crates/core/src/sim.rs");
        assert_eq!(c.krate, "core");
        assert_eq!(c.role, Role::Lib);
        assert_eq!(classify("crates/core/tests/proptests.rs").role, Role::Test);
        assert_eq!(
            classify("crates/bench/src/bin/experiments.rs").role,
            Role::Bin
        );
        assert_eq!(classify("crates/cli/src/main.rs").role, Role::Bin);
        assert_eq!(classify("examples/quickstart.rs").role, Role::Example);
        assert_eq!(classify("src/lib.rs").krate, "repro");
        assert_eq!(classify("tests/determinism.rs").role, Role::Test);
    }
}
