//! Property tests for the reservation state machine: arbitrary guarded
//! operation sequences must never double-reserve a workstation, never leak
//! a reservation, and always keep the counter balance
//! `started == released_after_service + released_unused + timed_out +
//! active`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use vr_cluster::job::JobId;
use vr_cluster::node::NodeId;
use vr_simcore::time::{SimSpan, SimTime};
use vrecon::config::ReservationOptions;
use vrecon::reservation::{ReservationManager, ReservationPhase};

const CLUSTER_SIZE: usize = 12;

/// One raw operation; node/job/dt are interpreted modulo the legal range
/// and illegal calls are skipped by the driver (the manager's contract is
/// "check before calling", so the property is over guarded sequences).
#[derive(Debug, Clone, Copy)]
enum Op {
    Begin(u8),
    RecordService(u8, u8),
    NoteCompletion(u8, u8),
    ReleaseUnused(u8),
    SweepTimeouts,
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let node = (a % CLUSTER_SIZE as u64) as u8;
        let job = (b % 6) as u8;
        let dt = (b % 400) as u16;
        match a % 11 {
            0..=2 => Op::Begin(node),
            3 | 4 => Op::RecordService(node, job),
            5 | 6 => Op::NoteCompletion(node, job),
            7 => Op::ReleaseUnused(node),
            8 => Op::SweepTimeouts,
            _ => Op::Advance(dt),
        }
    })
}

/// Replays `ops` with legality guards, checking the invariants after every
/// step (assertions panic on violation, as the vendored proptest's
/// `prop_assert!` does). Returns the manager and the final clock for
/// end-state checks.
fn drive(ops: &[Op]) -> (ReservationManager, SimTime) {
    let options = ReservationOptions {
        reserve_timeout: SimSpan::from_secs(300),
        ..ReservationOptions::default()
    };
    let cap = options.max_reserved(CLUSTER_SIZE);
    let mut mgr = ReservationManager::new(options);
    let mut now = SimTime::ZERO;
    for op in ops {
        match *op {
            Op::Begin(n) => {
                let node = NodeId(n as u32);
                if !mgr.is_reserved(node) && mgr.can_reserve(CLUSTER_SIZE) {
                    mgr.begin(node, now);
                }
            }
            Op::RecordService(n, j) => {
                let node = NodeId(n as u32);
                if mgr.is_reserved(node) {
                    mgr.record_service(node, JobId(j as u64));
                }
            }
            Op::NoteCompletion(n, j) => {
                // Safe on any node, reserved or not.
                mgr.note_completion(NodeId(n as u32), JobId(j as u64));
            }
            Op::ReleaseUnused(n) => {
                mgr.release_unused(NodeId(n as u32));
            }
            Op::SweepTimeouts => {
                mgr.sweep_timeouts(now);
            }
            Op::Advance(dt) => {
                now += SimSpan::from_secs(dt as u64);
            }
        }
        check_invariants(&mgr, cap);
    }
    (mgr, now)
}

fn check_invariants(mgr: &ReservationManager, cap: usize) {
    let stats = mgr.stats();
    let active = mgr.reserved_count() as u64;
    // Balance: every started reservation is accounted for exactly once.
    prop_assert_eq!(
        stats.started,
        stats.released_after_service + stats.released_unused + stats.timed_out + active,
        "balance broken: {:?} with {} active",
        stats,
        active
    );
    // The cap is never exceeded.
    prop_assert!(active as usize <= cap, "{active} reserved over cap {cap}");
    // No workstation appears twice (no double-reserve).
    let mut seen = BTreeSet::new();
    for r in mgr.reservations() {
        prop_assert!(seen.insert(r.node), "{} reserved twice", r.node);
        // A Serving reservation always has a non-empty served set.
        if r.phase == ReservationPhase::Serving {
            prop_assert!(!r.served.is_empty(), "{} serving nothing", r.node);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    /// Invariants hold after every operation of any guarded sequence.
    #[test]
    fn guarded_sequences_preserve_invariants(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        drive(&ops);
    }

    /// Nothing leaks: after draining every reservation by force, the
    /// balance closes with zero active and the books stay consistent.
    #[test]
    fn reservations_never_leak(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let (mut mgr, _now) = drive(&ops);
        for n in 0..CLUSTER_SIZE {
            mgr.release_unused(NodeId(n as u32));
        }
        prop_assert_eq!(mgr.reserved_count(), 0);
        let stats = mgr.stats();
        prop_assert_eq!(
            stats.started,
            stats.released_after_service + stats.released_unused + stats.timed_out
        );
    }

    /// Timed-out reservations are only ever taken from the Reserving phase:
    /// serving nodes survive any sweep.
    #[test]
    fn sweeps_never_abandon_serving_nodes(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let (mut mgr, now) = drive(&ops);
        let serving: Vec<NodeId> = mgr
            .reservations()
            .iter()
            .filter(|r| r.phase == ReservationPhase::Serving)
            .map(|r| r.node)
            .collect();
        let far_future = now + SimSpan::from_secs(1_000_000);
        let expired = mgr.sweep_timeouts(far_future);
        for node in &serving {
            prop_assert!(!expired.contains(node), "{node} abandoned while serving");
            prop_assert!(mgr.is_reserved(*node), "{node} vanished in a sweep");
        }
    }
}

/// `begin` on an already-reserved node is a contract violation and must
/// panic loudly rather than corrupt the books.
#[test]
fn double_begin_panics() {
    let mut mgr = ReservationManager::new(ReservationOptions::default());
    mgr.begin(NodeId(0), SimTime::ZERO);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        mgr.begin(NodeId(0), SimTime::from_secs(1));
    }));
    assert!(result.is_err(), "double begin() must panic");
}
