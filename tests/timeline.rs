//! Integration tests of the event-log timeline analysis: the operational
//! meaning of "quickly resolving the job blocking problem".

use vrecon_repro::analysis::timeline::{
    blocked_episode_durations, cluster_blocking_episodes, completion_throughput,
    pending_queue_timeline, reservation_timeline,
};
use vrecon_repro::prelude::*;

fn run(policy: PolicyKind) -> RunReport {
    let mut cluster = ClusterParams::cluster2();
    cluster.nodes.truncate(16);
    let trace = synth::blocking_scenario(16, Bytes::from_mb(128));
    Simulation::new(SimConfig::new(cluster, policy).with_seed(7)).run(&trace)
}

#[test]
fn vreconfiguration_shortens_total_blocked_time() {
    let gls = run(PolicyKind::GLoadSharing);
    let vr = run(PolicyKind::VReconfiguration);
    let total_blocked =
        |r: &RunReport| -> f64 { blocked_episode_durations(&r.events).iter().sum() };
    assert!(
        total_blocked(&vr) < total_blocked(&gls),
        "V-R total blocked time {:.0}s should be below G-LS {:.0}s",
        total_blocked(&vr),
        total_blocked(&gls)
    );
}

#[test]
fn queue_timeline_starts_and_ends_empty() {
    let report = run(PolicyKind::VReconfiguration);
    let timeline = pending_queue_timeline(&report.events);
    if let Some(&(_, last)) = timeline.last() {
        assert_eq!(last, 0, "queue must drain by the end of the run");
    }
    // The queue length never exceeds the number of jobs.
    for (_, len) in &timeline {
        assert!(*len <= report.summary.jobs);
    }
}

#[test]
fn reservation_timeline_matches_stats_and_ends_at_zero() {
    let report = run(PolicyKind::VReconfiguration);
    let timeline = reservation_timeline(&report.events);
    let peaks = timeline.iter().map(|(_, n)| *n).max().unwrap_or(0);
    let cap = ReservationOptions::default().max_reserved(16);
    assert!(peaks <= cap, "peak {peaks} above cap {cap}");
    assert_eq!(timeline.last().map(|(_, n)| *n), Some(0));
    let begins = timeline.windows(2).filter(|w| w[1].1 > w[0].1).count() as u64
        + u64::from(timeline.first().map(|(_, n)| *n == 1).unwrap_or(false));
    assert_eq!(begins, report.reservations.started);
}

#[test]
fn throughput_accounts_for_every_completion() {
    let report = run(PolicyKind::VReconfiguration);
    let buckets = completion_throughput(&report.events, SimSpan::from_secs(60));
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    assert_eq!(total as usize, report.summary.jobs);
}

#[test]
fn blocking_episodes_exist_under_pressure_and_resolve() {
    let report = run(PolicyKind::VReconfiguration);
    let episodes = cluster_blocking_episodes(&report.events);
    // The scenario is built to block; and every episode closed (the queue
    // drained), which is the adaptive-resolution claim.
    assert!(!episodes.is_empty(), "scenario failed to block");
    for (start, dur) in &episodes {
        assert!(*dur > SimSpan::ZERO, "degenerate episode at {start}");
    }
}
