// Regression shape: the serve shutdown path once notified `queue_cv`
// without touching the paired mutex, so a worker between its predicate
// check and `wait()` could miss the wakeup and park forever.
pub fn worker(queue: &Mutex<Vec<u64>>, queue_cv: &Condvar) {
    let mut guard = queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    while guard.is_empty() {
        guard = queue_cv.wait(guard).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

pub fn shutdown_broken(queue_cv: &Condvar) {
    queue_cv.notify_all();
}

pub fn shutdown_fixed(queue: &Mutex<Vec<u64>>, queue_cv: &Condvar) {
    {
        let _queue = queue.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    queue_cv.notify_all();
}
