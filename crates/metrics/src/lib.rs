//! # vr-metrics — measurement and reporting
//!
//! Everything the paper's §4 measures, computed from simulator state:
//!
//! * [`summary`] — [`WorkloadSummary`]: the §5
//!   execution-time totals (`T_cpu + T_page + T_que + T_mig`), average /
//!   median / p95 slowdowns, migration counts.
//! * [`sampler`] — [`ClusterGauges`]: the 1-second
//!   idle-memory volume and job-balance-skew series of §4.1–§4.2.
//! * [`comparison`] — paired G-LS vs V-R metrics with the paper's
//!   reduction-percentage convention.
//! * [`fairness`] — Jain's index and worst-to-mean ratios over per-job
//!   slowdowns (the §2.2 fairness constraint).
//! * [`table`] — fixed-width / CSV rendering for the figure binaries.
//! * [`utilization`] — per-workstation CPU/paging utilization and
//!   load-imbalance summaries from node counters.
//! * [`throughput`] — [`ThroughputSummary`]: simulator events/second
//!   accounting for the experiment runner's sweep telemetry.
//! * [`latency`] — [`LatencySummary`]: request-latency percentiles and
//!   QPS for the `vrecon serve` load generator's `BENCH_serve.json`.
//!
//! ```
//! use vr_metrics::comparison::MetricComparison;
//!
//! let queue_time = MetricComparison::new(3600.0, 2278.8);
//! assert!((queue_time.reduction() - 36.7).abs() < 0.01); // SPEC-Trace-3, Fig. 1
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod comparison;
pub mod fairness;
pub mod latency;
pub mod sampler;
pub mod summary;
pub mod table;
pub mod throughput;
pub mod utilization;

pub use comparison::MetricComparison;
pub use fairness::{jain_index, worst_to_mean};
pub use latency::LatencySummary;
pub use sampler::{balance_skew, ClusterGauges};
pub use summary::WorkloadSummary;
pub use table::TextTable;
pub use throughput::ThroughputSummary;
pub use utilization::{NodeUtilization, UtilizationSummary};
