//! # vr-simcore — discrete-event simulation substrate
//!
//! The foundation layer of the ICDCS 2002 *Adaptive and Virtual
//! Reconfigurations* reproduction: everything a trace-driven cluster
//! simulator needs that is not cluster-specific.
//!
//! * [`time`] — fixed-point [`SimTime`] /
//!   [`SimSpan`] microsecond clock types.
//! * [`event`] — deterministic, cancellable
//!   [`EventQueue`] ordered by `(time, seq)`.
//! * [`engine`] — the [`Engine`] loop driving a
//!   [`World`].
//! * [`rng`] — seeded [`SimRng`] with normal / lognormal /
//!   exponential samplers (rand 0.8 ships none).
//! * [`stats`] — Welford accumulators, percentiles, and the paper's
//!   reduction-percentage metric.
//! * [`histogram`] — fixed-bucket histograms for heavy-tailed slowdown
//!   distributions.
//! * [`series`] — sampled time series for idle-memory / job-balance gauges.
//! * [`jsonio`] — dependency-free JSON document model with lossless number
//!   round-trips, backing the result cache and sweep telemetry files.
//! * [`hash`] — stable FNV-1a 128-bit content hashing for cache keys.
//!
//! Determinism is the load-bearing property: identical seeds produce
//! identical event orders, draws, and therefore identical simulation reports.
//!
//! ```
//! use vr_simcore::engine::{Engine, Scheduler, World};
//! use vr_simcore::time::{SimSpan, SimTime};
//!
//! struct Countdown(u32);
//!
//! impl World for Countdown {
//!     type Event = u32;
//!     fn handle(&mut self, sched: &mut Scheduler<'_, u32>, left: u32) {
//!         self.0 = left;
//!         if left > 0 {
//!             sched.schedule_in(SimSpan::from_millis(10), left - 1);
//!         }
//!     }
//! }
//!
//! let mut world = Countdown(u32::MAX);
//! let mut engine = Engine::new();
//! engine.scheduler().schedule_at(SimTime::ZERO, 3);
//! engine.run_until(&mut world, SimTime::MAX);
//! assert_eq!(world.0, 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod hash;
pub mod histogram;
pub mod jsonio;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use engine::{Engine, EventHook, HookChain, RunStats, Scheduler, World};
pub use event::{EventHandle, EventQueue};
pub use hash::{fnv1a128, hex128, Fnv128};
pub use histogram::{slowdown_histogram, Histogram};
pub use jsonio::Json;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{percentile, reduction_pct, OnlineStats, Summary};
pub use time::{SimSpan, SimTime};
