//! Per-request observability, mirroring the `vr-trace` hook seam: the
//! server calls a [`RequestHook`] exactly once per answered request with
//! a structured [`RequestRecord`]; sinks decide what to do with it. The
//! bundled sink, [`JsonlRequestLog`], appends one JSON object per line —
//! the same greppable shape `vrecon trace` emits for simulator events.

use std::io::Write;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use vr_simcore::jsonio::Json;

/// How a `/run` request was satisfied (the `X-Vrecon-Outcome` header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Answered from the in-memory hot tier.
    Hot,
    /// Answered from the on-disk result cache.
    Disk,
    /// Ran a fresh simulation.
    Miss,
    /// Joined a simulation another request had in flight.
    Coalesced,
    /// Refused or failed before any cache tier was consulted.
    None,
}

impl Outcome {
    /// Wire spelling, used in the response header and the request log.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Hot => "hot",
            Outcome::Disk => "disk",
            Outcome::Miss => "miss",
            Outcome::Coalesced => "coalesced",
            Outcome::None => "none",
        }
    }
}

/// One answered request, as seen at response-write time.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status code.
    pub status: u16,
    /// How the response body was produced.
    pub outcome: Outcome,
    /// Scenario content hash, when the request got far enough to have one.
    pub hash: Option<String>,
    /// Wall-clock milliseconds from accept to response written.
    pub latency_ms: f64,
    /// Response body size in bytes.
    pub body_bytes: usize,
}

impl RequestRecord {
    /// The record as one JSON object (the JSONL line without newline).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::str(self.method.clone())),
            ("path", Json::str(self.path.clone())),
            ("status", Json::U64(u64::from(self.status))),
            ("outcome", Json::str(self.outcome.as_str())),
            (
                "hash",
                match &self.hash {
                    Some(h) => Json::str(h.clone()),
                    None => Json::Null,
                },
            ),
            ("latency_ms", Json::f64(self.latency_ms)),
            ("body_bytes", Json::U64(self.body_bytes as u64)),
        ])
    }
}

/// A sink for answered requests. Implementations must be cheap and must
/// not panic: they run on the connection thread after the response is
/// already on the wire.
pub trait RequestHook: Send + Sync {
    /// Called once per answered request.
    fn on_request(&self, record: &RequestRecord);
}

/// A hook that discards every record.
#[derive(Debug, Default)]
pub struct NullHook;

impl RequestHook for NullHook {
    fn on_request(&self, _record: &RequestRecord) {}
}

/// Appends one JSON object per request to a file.
#[derive(Debug)]
pub struct JsonlRequestLog {
    file: Mutex<std::fs::File>,
}

impl JsonlRequestLog {
    /// Opens (creating or appending to) the log file.
    ///
    /// # Errors
    ///
    /// Any I/O error opening the file.
    pub fn create(path: &Path) -> std::io::Result<JsonlRequestLog> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(JsonlRequestLog {
            file: Mutex::new(file),
        })
    }
}

impl RequestHook for JsonlRequestLog {
    fn on_request(&self, record: &RequestRecord) {
        let line = format!("{}\n", record.to_json().render());
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        // A failed log write must not take down the connection thread;
        // the response is already delivered.
        // vr-analyze::allow(blocking-while-locked, reason = "the mutex exists to serialize exactly this append; contention is bounded by line length")
        let _ = file.write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_as_one_json_object() {
        let record = RequestRecord {
            method: "POST".to_owned(),
            path: "/run".to_owned(),
            status: 200,
            outcome: Outcome::Coalesced,
            hash: Some("abc123".to_owned()),
            latency_ms: 12.5,
            body_bytes: 420,
        };
        let text = record.to_json().render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("method").unwrap().as_str().unwrap(), "POST");
        assert_eq!(parsed.get("status").unwrap().as_u64().unwrap(), 200);
        assert_eq!(
            parsed.get("outcome").unwrap().as_str().unwrap(),
            "coalesced"
        );
        assert_eq!(parsed.get("hash").unwrap().as_str().unwrap(), "abc123");
        assert_eq!(parsed.get("body_bytes").unwrap().as_u64().unwrap(), 420);
    }

    #[test]
    fn missing_hash_is_json_null() {
        let record = RequestRecord {
            method: "GET".to_owned(),
            path: "/stats".to_owned(),
            status: 200,
            outcome: Outcome::None,
            hash: None,
            latency_ms: 0.1,
            body_bytes: 2,
        };
        let text = record.to_json().render();
        assert!(text.contains("\"hash\":null"), "{text}");
    }

    #[test]
    fn jsonl_log_appends_lines() {
        // Compile-time path: the serve crate may not read the process
        // environment (vr-lint env-read), tests included.
        let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/tmp"));
        std::fs::create_dir_all(dir).unwrap();
        let path = dir.join(format!("vr-serve-reqlog-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let log = JsonlRequestLog::create(&path).unwrap();
        for status in [200u16, 400] {
            log.on_request(&RequestRecord {
                method: "POST".to_owned(),
                path: "/run".to_owned(),
                status,
                outcome: Outcome::Miss,
                hash: None,
                latency_ms: 1.0,
                body_bytes: 0,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"status\":200"));
        assert!(lines[1].contains("\"status\":400"));
        let _ = std::fs::remove_file(&path);
    }
}
