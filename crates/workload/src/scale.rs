//! Scale-out scenario generation: N-node clusters, M-job traces.
//!
//! The paper fixes both clusters at 32 workstations, but nothing in the
//! model requires that. [`ScaleSpec`] synthesizes arbitrarily large
//! scenarios that keep the paper's *statistical shape*: arrivals follow the
//! same lognormal rate function (§3.3.2), programs are drawn uniformly from
//! the SPEC 2000 catalog so the working-set marginal is unchanged, and
//! lifetimes keep their relative proportions — only the catalog-wide
//! lifetime scale is solved for so the cluster lands at a chosen CPU
//! utilization regardless of `(nodes, jobs)`. That last step is the same
//! normalization already applied to the 32-node traces (see
//! [`SPEC_LIFETIME_SCALE`](crate::trace::SPEC_LIFETIME_SCALE)): without it,
//! a 10k-node / 1M-job grid cell would sit in arbitrary chronic overload or
//! dead idleness depending on the ratio, and cells would not be comparable.

use vr_cluster::params::ClusterParams;
use vr_cluster::units::Bytes;
use vr_simcore::rng::SimRng;
use vr_simcore::time::SimSpan;

use crate::arrival::LognormalArrivals;
use crate::trace::{Trace, DEFAULT_JITTER};

/// A scale-out scenario: cluster size, job count, and load shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSpec {
    /// Number of workstations (cluster 1 node type, with
    /// [`ScaleSpec::node_memory`] RAM).
    pub nodes: usize,
    /// Number of submitted jobs.
    pub jobs: usize,
    /// Target mean CPU utilization over the submission window: the
    /// catalog's lifetime scale is solved so total dedicated CPU work is
    /// `target_utilization × nodes × horizon`. Values near 1.0 put the
    /// cluster at saturation; above 1.0 force chronic overload.
    pub target_utilization: f64,
    /// Shared σ = μ of the lognormal arrival-rate function. The paper's
    /// "normal" intensity is 3.0 (see
    /// [`TraceLevel`](crate::trace::TraceLevel)).
    pub sigma_mu: f64,
    /// Submission window.
    pub horizon: SimSpan,
    /// Per-node user memory (swap is sized to match, like both paper
    /// clusters). The default is 1,536 MB — four times the paper's
    /// cluster 1 node. The catalog's working-set *distribution* is
    /// untouched; this knob sets how many jobs share a node before memory
    /// saturates. At the paper's 384 MB, two mean-sized SPEC jobs fill a
    /// node, so the lognormal arrival peak drives any large scenario into
    /// deep chronic blocking and the run measures the (quadratic)
    /// blocked-queue retry dynamics rather than steady-state scheduling;
    /// see `scale_bench` and ARCHITECTURE's Scaling section. Set it back
    /// to 384 MB (builder) to study exactly that regime.
    pub node_memory: Bytes,
}

impl ScaleSpec {
    /// A spec with the paper's "normal" arrival shape (σ = μ = 3.0 over a
    /// ~1-hour window), a near-saturation 0.6 target CPU utilization, and
    /// the default memory headroom.
    pub fn new(nodes: usize, jobs: usize) -> Self {
        ScaleSpec {
            nodes,
            jobs,
            target_utilization: 0.6,
            sigma_mu: 3.0,
            horizon: SimSpan::from_secs(3581),
            node_memory: Bytes::from_mb(1536),
        }
    }

    /// Returns the spec with a different target utilization
    /// (builder-style).
    pub fn with_utilization(mut self, target: f64) -> Self {
        self.target_utilization = target;
        self
    }

    /// Returns the spec with a different per-node memory size
    /// (builder-style).
    pub fn with_node_memory(mut self, memory: Bytes) -> Self {
        self.node_memory = memory;
        self
    }

    /// Checks the spec for nonsensical values.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("scale spec needs at least one workstation".into());
        }
        if self.jobs == 0 {
            return Err("scale spec needs at least one job".into());
        }
        if !(self.target_utilization.is_finite() && self.target_utilization > 0.0) {
            return Err(format!(
                "target utilization must be positive and finite, got {}",
                self.target_utilization
            ));
        }
        if !(self.sigma_mu.is_finite() && self.sigma_mu > 0.0) {
            return Err(format!(
                "sigma/mu must be positive and finite, got {}",
                self.sigma_mu
            ));
        }
        if self.horizon.is_zero() {
            return Err("submission horizon must be non-zero".into());
        }
        if self.node_memory.is_zero() {
            return Err("node memory must be non-zero".into());
        }
        Ok(())
    }

    /// The catalog lifetime scale that hits [`ScaleSpec::target_utilization`]:
    /// `target × nodes × horizon / (jobs × mean catalog lifetime)`.
    pub fn lifetime_scale(&self) -> f64 {
        let catalog = crate::spec2000::programs();
        let mean_lifetime: f64 =
            catalog.iter().map(|p| p.lifetime_secs).sum::<f64>() / catalog.len() as f64;
        self.target_utilization * self.nodes as f64 * self.horizon.as_secs_f64()
            / (self.jobs as f64 * mean_lifetime)
    }

    /// Instantiates the cluster: `nodes` × the paper's cluster 1
    /// workstation on 10 Mbps Ethernet, resized to
    /// [`ScaleSpec::node_memory`] (swap sized to match, like both paper
    /// clusters).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` (see [`ScaleSpec::validate`]).
    // vr-analyze::allow(panic-path, reason = "homogeneous() asserts nodes > 0, which validate() reports as an error first")
    pub fn cluster(&self) -> ClusterParams {
        let mut node = ClusterParams::cluster1().nodes[0];
        node.memory =
            vr_cluster::memory::MemoryParams::with_capacity(self.node_memory, self.node_memory);
        ClusterParams::homogeneous(self.nodes, node, ClusterParams::cluster1().network)
    }

    /// Generates the trace: `jobs` lognormal arrivals over `horizon`,
    /// programs drawn uniformly from the scaled SPEC 2000 catalog with the
    /// standard ±20 % jitter.
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid (see [`ScaleSpec::validate`]).
    // vr-analyze::allow(panic-path, reason = "the arrival and catalog asserts are exactly the conditions validate() reports as errors")
    pub fn trace(&self, rng: &mut SimRng) -> Trace {
        let scale = self.lifetime_scale();
        let catalog: Vec<_> = crate::spec2000::programs()
            .iter()
            .map(|p| p.scale_lifetime(scale))
            .collect();
        let arrivals = LognormalArrivals {
            sigma: self.sigma_mu,
            mu: self.sigma_mu,
            count: self.jobs,
            horizon: self.horizon,
        }
        .generate(rng);
        Trace::build(
            format!("Scale-{}n-{}j", self.nodes, self.jobs),
            &catalog,
            &arrivals,
            rng,
            DEFAULT_JITTER,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::units::Bytes;

    #[test]
    fn generated_scenario_validates_and_hits_utilization() {
        let spec = ScaleSpec::new(128, 2_000);
        spec.validate().unwrap();
        let trace = spec.trace(&mut SimRng::seed_from(42));
        assert_eq!(trace.len(), 2_000);
        trace.validate().unwrap();
        let capacity = spec.nodes as f64 * spec.horizon.as_secs_f64();
        let util = trace.total_cpu_work_secs() / capacity;
        // Jitter is symmetric, so realized utilization lands near target.
        assert!(
            (util - spec.target_utilization).abs() < 0.05,
            "utilization {util} vs target {}",
            spec.target_utilization
        );
    }

    #[test]
    fn utilization_holds_across_the_grid() {
        for (nodes, jobs) in [(32, 500), (256, 10_000), (1024, 20_000)] {
            let spec = ScaleSpec::new(nodes, jobs);
            let trace = spec.trace(&mut SimRng::seed_from(7));
            let util = trace.total_cpu_work_secs() / (nodes as f64 * spec.horizon.as_secs_f64());
            assert!(
                (util - 0.6).abs() < 0.05,
                "{nodes}x{jobs}: utilization {util}"
            );
        }
    }

    #[test]
    fn working_set_marginal_matches_the_32_node_catalog() {
        // Scaling must not touch memory demands: the mean max working set
        // of a large scaled trace matches the unscaled catalog mean.
        let catalog = crate::spec2000::programs();
        let catalog_mean: f64 =
            catalog.iter().map(|p| p.working_set_mb).sum::<f64>() / catalog.len() as f64;
        let trace = ScaleSpec::new(512, 20_000).trace(&mut SimRng::seed_from(3));
        let trace_mean: f64 = trace
            .jobs
            .iter()
            .map(|j| j.max_working_set().as_mb_f64())
            .sum::<f64>()
            / trace.len() as f64;
        assert!(
            (trace_mean - catalog_mean).abs() / catalog_mean < 0.05,
            "trace mean {trace_mean} MB vs catalog mean {catalog_mean} MB"
        );
        assert!(trace.jobs.iter().all(|j| j.max_working_set() > Bytes::ZERO));
    }

    #[test]
    fn cluster_scales_node_count_and_memory() {
        let cluster = ScaleSpec::new(1000, 1).cluster();
        assert_eq!(cluster.size(), 1000);
        assert_eq!(cluster.nodes[0].memory.user, Bytes::from_mb(1536));
        let paper = ScaleSpec::new(32, 1)
            .with_node_memory(Bytes::from_mb(384))
            .cluster();
        assert_eq!(paper.nodes[0].memory.user, Bytes::from_mb(384));
        assert_eq!(paper.nodes[0].memory.swap, Bytes::from_mb(384));
        // CPU and fault-model parameters stay the paper's cluster 1.
        assert_eq!(
            paper.nodes[0].cpu.context_switch,
            ClusterParams::cluster1().nodes[0].cpu.context_switch
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = ScaleSpec::new(64, 1_000);
        let a = spec.trace(&mut SimRng::seed_from(42));
        let b = spec.trace(&mut SimRng::seed_from(42));
        assert_eq!(a, b);
    }

    #[test]
    fn validate_rejects_nonsense() {
        assert!(ScaleSpec::new(0, 10).validate().is_err());
        assert!(ScaleSpec::new(10, 0).validate().is_err());
        assert!(ScaleSpec::new(10, 10)
            .with_utilization(f64::NAN)
            .validate()
            .is_err());
        let mut bad = ScaleSpec::new(10, 10);
        bad.sigma_mu = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = ScaleSpec::new(10, 10);
        bad.horizon = SimSpan::ZERO;
        assert!(bad.validate().is_err());
        assert!(ScaleSpec::new(10, 10)
            .with_node_memory(Bytes::ZERO)
            .validate()
            .is_err());
    }
}
