//! A tiny blocking HTTP/1.1 client, enough to talk to `vrecon serve`:
//! one request per connection, full-response reads, no keep-alive. Used
//! by `vrecon loadgen`, the serve integration tests, and anyone who
//! wants to query the service without reaching for curl.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed response: status code, selected headers, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// All response headers, lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl ClientResponse {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the whole response.
///
/// # Errors
///
/// Connection, write, read, or response-parse failures, as one-line
/// descriptions.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<ClientResponse, String> {
    let mut stream =
        TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: vrecon\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write {path}: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("read {path}: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let text = std::str::from_utf8(raw).map_err(|_| "response is not UTF-8".to_owned())?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err("response has no header/body separator".to_owned());
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    // Content-Length is authoritative when present; `Connection: close`
    // servers may also just end the stream.
    let body = match headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        Some(n) if n <= body.len() => &body[..n],
        _ => body,
    };
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_headers_and_body() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nRetry-After: 1\r\nContent-Length: 5\r\n\r\nbusy\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(resp.body, "busy\n");
    }

    #[test]
    fn malformed_status_line_is_an_error() {
        assert!(parse_response(b"garbage\r\n\r\n").is_err());
        assert!(parse_response(b"no separator at all").is_err());
    }
}
