//! Online and batch summary statistics.
//!
//! [`OnlineStats`] is a Welford accumulator: numerically stable single-pass
//! mean/variance with min/max tracking. [`Summary`] is the frozen result,
//! also computable from a batch via [`Summary::of`]. Percentiles operate on
//! an explicitly sorted slice to keep the cost visible at the call site.

use serde::{Deserialize, Serialize};

/// Single-pass (Welford) accumulator for mean, variance, min, and max.
///
/// ```
/// use vr_simcore::stats::OnlineStats;
///
/// let mut acc = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.mean(), 5.0);
/// assert_eq!(acc.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; a NaN observation would silently poison every
    /// downstream statistic.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "OnlineStats observed NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by n), or 0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by n−1), or 0 with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation, or +∞ when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, or −∞ when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.population_std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = OnlineStats::new();
        acc.extend(iter);
        acc
    }
}

/// Frozen summary statistics of a batch of observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Summary {
    /// Summarizes a batch in one pass.
    ///
    /// ```
    /// use vr_simcore::stats::Summary;
    ///
    /// let s = Summary::of([1.0, 2.0, 3.0]);
    /// assert_eq!(s.mean, 2.0);
    /// assert_eq!(s.count, 3);
    /// ```
    pub fn of<I: IntoIterator<Item = f64>>(values: I) -> Summary {
        values.into_iter().collect::<OnlineStats>().summary()
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
///
/// `q` is in `[0, 1]`; `percentile(&v, 0.5)` is the median.
///
/// # Panics
///
/// Panics if `sorted` is empty, `q` is outside `[0, 1]`, or (in debug builds)
/// the slice is not sorted.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile requires an ascending-sorted slice"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Relative reduction `(base − improved) / base`, in percent.
///
/// This is the metric the paper reports throughout §4 ("reduced the execution
/// times by 29.3%"). Returns 0 when `base` is 0.
pub fn reduction_pct(base: f64, improved: f64) -> f64 {
    // vr-lint::allow(float-eq, reason = "documented contract: returns 0 when base is exactly 0")
    if base == 0.0 {
        0.0
    } else {
        (base - improved) / base * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_zeroed() {
        let acc = OnlineStats::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        assert_eq!(acc.summary().min, 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data = [3.1, -2.0, 14.5, 0.0, 7.7, 7.7, -9.3];
        let acc: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.population_variance() - var).abs() < 1e-12);
        assert_eq!(acc.min(), -9.3);
        assert_eq!(acc.max(), 14.5);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let acc: OnlineStats = [1.0, 3.0].into_iter().collect();
        assert_eq!(acc.sample_variance(), 2.0);
        assert_eq!(acc.population_variance(), 1.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let sequential: OnlineStats = data.iter().copied().collect();
        let mut left: OnlineStats = data[..37].iter().copied().collect();
        let right: OnlineStats = data[37..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean() - sequential.mean()).abs() < 1e-12);
        assert!((left.population_variance() - sequential.population_variance()).abs() < 1e-9);
        assert_eq!(left.min(), sequential.min());
        assert_eq!(left.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut acc: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = acc;
        acc.merge(&OnlineStats::new());
        assert_eq!(acc, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert_eq!(percentile(&v, 0.5), 25.0);
        assert_eq!(percentile(&[5.0], 0.7), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn reduction_pct_matches_paper_convention() {
        assert!((reduction_pct(100.0, 70.7) - 29.3).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 5.0), 0.0);
        assert!(reduction_pct(50.0, 60.0) < 0.0); // regression shows negative
    }

    #[test]
    fn summary_of_batch() {
        let s = Summary::of([2.0, 4.0, 6.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 6.0);
    }
}
