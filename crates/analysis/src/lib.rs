//! # vr-analysis — the paper's §5 analytical model
//!
//! Verifies simulator output against the paper's performance model and
//! encodes the conditions under which virtual reconfiguration helps:
//!
//! * [`model`] — the execution-time decomposition
//!   `T_exe = T_cpu + T_page + T_que + T_mig`, the four §5 comparison
//!   points, and the gain approximation
//!   `T_exe − T̂_exe ≈ ΔT_page + ΔT_que`.
//! * [`queueing`] — the reserved-workstation FIFO bound
//!   `g(Q_r(k)) ≤ Σ (Q_r(k) − j)·w_kj` and the SRPT ordering property.
//! * [`conditions`] — §5's three "potentially unsuccessful" predicates
//!   (light load, equal memory demands, oversized jobs) and §2.1's
//!   accumulated-idle-memory precondition.
//! * [`timeline`] — time-resolved views (queue length, reservation
//!   occupancy, blocking episodes, throughput) reconstructed from a run's
//!   scheduler event log.
//!
//! ```
//! use vr_analysis::queueing::{fifo_queue_time, reserved_queue_bound};
//!
//! // Three migrated jobs served FIFO on a reserved workstation.
//! let service = [120.0, 300.0, 80.0];
//! let exact = fifo_queue_time(&service);
//! assert_eq!(exact, 120.0 + 420.0);
//! // The §5 bound with waits equal to the service times dominates it.
//! assert!(reserved_queue_bound(&[120.0, 300.0, 80.0]) >= 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod conditions;
pub mod model;
pub mod queueing;
pub mod timeline;

pub use conditions::{reservation_precondition, Applicability};
pub use model::{ExecutionTimeModel, ModelCheck};
pub use queueing::{fifo_queue_time, minimizing_order, reserved_queue_bound};
pub use timeline::{
    blocked_episode_durations, cluster_blocking_episodes, completion_throughput,
    node_occupancy_timeline, pending_queue_timeline, reservation_timeline,
    reserved_queue_bound_from_log, reserved_service_episodes,
};
