//! Cluster-wide configuration and the paper's two simulated clusters.
//!
//! §3.3.1: "We have simulated two homogeneous clusters, each of which has 32
//! workstations." Cluster 1 (400 MHz, 384 MB, 380 MB swap) runs workload
//! group 1; cluster 2 (233 MHz, 128 MB, 128 MB swap) runs workload group 2.
//! Since each trace's CPU work is expressed in seconds on its own cluster's
//! node type, both presets use relative CPU speed 1.0.

use serde::{Deserialize, Serialize};
use vr_simcore::time::SimSpan;

use crate::cpu::CpuParams;
use crate::memory::{FaultModel, MemoryParams};
use crate::network::NetworkParams;
use crate::node::{NodeId, NodeParams, Workstation};
use crate::units::Bytes;

/// The default CPU threshold (job slots per workstation).
pub const DEFAULT_CPU_SLOTS: u32 = 8;

/// Full configuration of a simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterParams {
    /// Per-node configuration; the vector length is the cluster size.
    pub nodes: Vec<NodeParams>,
    /// Interconnect model.
    pub network: NetworkParams,
    /// Period of the global load-information exchange.
    pub load_exchange_period: SimSpan,
}

impl ClusterParams {
    /// A homogeneous cluster of `n` identical workstations.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn homogeneous(n: usize, node: NodeParams, network: NetworkParams) -> Self {
        assert!(n > 0, "a cluster needs at least one workstation");
        ClusterParams {
            nodes: vec![node; n],
            network,
            load_exchange_period: SimSpan::from_secs(1),
        }
    }

    /// The paper's cluster 1: 32 × (400 MHz, 384 MB RAM, 380 MB swap) on
    /// 10 Mbps Ethernet. Runs workload group 1 (SPEC 2000).
    // vr-analyze::allow(panic-path, reason = "homogeneous() asserts n > 0 and n is the constant 32")
    pub fn cluster1() -> Self {
        Self::homogeneous(
            32,
            NodeParams {
                cpu: CpuParams::with_slots(DEFAULT_CPU_SLOTS),
                memory: MemoryParams::with_capacity(Bytes::from_mb(384), Bytes::from_mb(380)),
                fault_model: FaultModel::default(),
                protection: Default::default(),
            },
            NetworkParams::ethernet_10mbps(),
        )
    }

    /// The paper's cluster 2: 32 × (233 MHz, 128 MB RAM, 128 MB swap) on
    /// 10 Mbps Ethernet. Runs workload group 2 (scientific applications).
    // vr-analyze::allow(panic-path, reason = "homogeneous() asserts n > 0 and n is the constant 32")
    pub fn cluster2() -> Self {
        Self::homogeneous(
            32,
            NodeParams {
                cpu: CpuParams::with_slots(DEFAULT_CPU_SLOTS),
                memory: MemoryParams::with_capacity(Bytes::from_mb(128), Bytes::from_mb(128)),
                fault_model: FaultModel::default(),
                protection: Default::default(),
            },
            NetworkParams::ethernet_10mbps(),
        )
    }

    /// A heterogeneous cluster mixing large-memory and small-memory nodes
    /// (§2.3 and §6 discuss heterogeneity). `big` nodes get 384 MB, the rest
    /// 128 MB.
    ///
    /// # Panics
    ///
    /// Panics if `big > n` or `n == 0`.
    pub fn heterogeneous(n: usize, big: usize) -> Self {
        assert!(n > 0, "a cluster needs at least one workstation");
        assert!(big <= n, "cannot have more big nodes than nodes");
        let make = |user_mb: u64| NodeParams {
            cpu: CpuParams::with_slots(DEFAULT_CPU_SLOTS),
            memory: MemoryParams::with_capacity(Bytes::from_mb(user_mb), Bytes::from_mb(user_mb)),
            fault_model: FaultModel::default(),
            protection: Default::default(),
        };
        let mut nodes = vec![make(384); big];
        nodes.extend(vec![make(128); n - big]);
        ClusterParams {
            nodes,
            network: NetworkParams::ethernet_10mbps(),
            load_exchange_period: SimSpan::from_secs(1),
        }
    }

    /// Number of workstations.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Instantiates the workstations.
    pub fn build_nodes(&self) -> Vec<Workstation> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, p)| Workstation::new(NodeId(i as u32), *p))
            .collect()
    }

    /// Average user memory per workstation — the virtual-reconfiguration
    /// activation threshold (§2.1).
    pub fn average_user_memory(&self) -> Bytes {
        let total: Bytes = self.nodes.iter().map(|n| n.memory.user).sum();
        Bytes::new(total.as_u64() / self.nodes.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster1_matches_paper() {
        let c = ClusterParams::cluster1();
        assert_eq!(c.size(), 32);
        let node = &c.nodes[0];
        assert_eq!(node.memory.user, Bytes::from_mb(384));
        assert_eq!(node.memory.swap, Bytes::from_mb(380));
        assert_eq!(node.memory.page_size, Bytes::from_kb(4));
        assert_eq!(node.memory.fault_service, SimSpan::from_millis(10));
        assert_eq!(node.cpu.context_switch, SimSpan::from_micros(100));
        assert_eq!(c.network.bandwidth_bps, 10e6);
    }

    #[test]
    fn cluster2_matches_paper() {
        let c = ClusterParams::cluster2();
        assert_eq!(c.size(), 32);
        assert_eq!(c.nodes[0].memory.user, Bytes::from_mb(128));
        assert_eq!(c.nodes[0].memory.swap, Bytes::from_mb(128));
    }

    #[test]
    fn build_nodes_assigns_sequential_ids() {
        let nodes = ClusterParams::cluster1().build_nodes();
        assert_eq!(nodes.len(), 32);
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id(), NodeId(i as u32));
            assert_eq!(n.active_jobs(), 0);
        }
    }

    #[test]
    fn heterogeneous_mixes_memory_sizes() {
        let c = ClusterParams::heterogeneous(8, 2);
        assert_eq!(c.size(), 8);
        assert_eq!(c.nodes[0].memory.user, Bytes::from_mb(384));
        assert_eq!(c.nodes[1].memory.user, Bytes::from_mb(384));
        assert_eq!(c.nodes[2].memory.user, Bytes::from_mb(128));
        // avg = (2*384 + 6*128) / 8 = 192.
        assert_eq!(c.average_user_memory(), Bytes::from_mb(192));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_cluster_panics() {
        let _ = ClusterParams::homogeneous(
            0,
            ClusterParams::cluster1().nodes[0],
            NetworkParams::ethernet_10mbps(),
        );
    }
}
