//! Time-resolved views derived from the scheduler event log.
//!
//! The paper's figures report aggregates; these helpers reconstruct the
//! underlying dynamics from a run's [`EventLog`]: how the blocked-submission
//! queue grew and drained, when workstations were reserved, and how job
//! completions flowed. They are what the blocking problem *looks like* in a
//! run, and what the adaptive reconfiguration's "quick resolution" claim
//! means operationally.

use std::collections::{HashMap, HashSet};

use vr_cluster::job::JobId;
use vr_simcore::time::{SimSpan, SimTime};
use vrecon::events::{EventLog, SchedulerEventKind};

/// Step series of the blocked-submission queue length over time.
///
/// A job joins on [`SchedulerEventKind::Blocked`] and leaves on its next
/// [`Placed`](SchedulerEventKind::Placed),
/// [`TransitStarted`](SchedulerEventKind::TransitStarted) or
/// [`Resumed`](SchedulerEventKind::Resumed).
pub fn pending_queue_timeline(log: &EventLog) -> Vec<(SimTime, usize)> {
    let mut waiting: HashSet<JobId> = HashSet::new();
    let mut out: Vec<(SimTime, usize)> = Vec::new();
    for event in log.entries() {
        let Some(job) = event.job else { continue };
        let changed = match event.kind {
            SchedulerEventKind::Blocked => waiting.insert(job),
            SchedulerEventKind::Placed
            | SchedulerEventKind::TransitStarted
            | SchedulerEventKind::Resumed => waiting.remove(&job),
            _ => false,
        };
        if changed {
            out.push((event.time, waiting.len()));
        }
    }
    out
}

/// Step series of the number of reserved workstations over time.
pub fn reservation_timeline(log: &EventLog) -> Vec<(SimTime, usize)> {
    let mut reserved = 0usize;
    let mut out = Vec::new();
    for event in log.entries() {
        match event.kind {
            SchedulerEventKind::ReservationBegan => {
                reserved += 1;
                out.push((event.time, reserved));
            }
            SchedulerEventKind::ReservationReleased => {
                reserved = reserved.saturating_sub(1);
                out.push((event.time, reserved));
            }
            _ => {}
        }
    }
    out
}

/// Per-episode waiting times in the blocked-submission queue, in seconds.
/// A job blocked multiple times contributes multiple episodes; an episode
/// still open at the end of the log is dropped.
pub fn blocked_episode_durations(log: &EventLog) -> Vec<f64> {
    let mut since: HashMap<JobId, SimTime> = HashMap::new();
    let mut out = Vec::new();
    for event in log.entries() {
        let Some(job) = event.job else { continue };
        match event.kind {
            SchedulerEventKind::Blocked => {
                since.entry(job).or_insert(event.time);
            }
            SchedulerEventKind::Placed
            | SchedulerEventKind::TransitStarted
            | SchedulerEventKind::Resumed => {
                if let Some(start) = since.remove(&job) {
                    out.push(event.time.saturating_since(start).as_secs_f64());
                }
            }
            _ => {}
        }
    }
    out
}

/// Completions per window, as `(window start, jobs completed)` pairs
/// covering the whole log span.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn completion_throughput(log: &EventLog, window: SimSpan) -> Vec<(SimTime, u64)> {
    assert!(!window.is_zero(), "throughput window must be non-zero");
    let completions: Vec<SimTime> = log
        .of_kind(SchedulerEventKind::Completed)
        .map(|e| e.time)
        .collect();
    let Some(&last) = completions.last() else {
        return Vec::new();
    };
    let buckets = last.as_micros() / window.as_micros() + 1;
    let mut out: Vec<(SimTime, u64)> = (0..buckets)
        .map(|i| (SimTime::from_micros(i * window.as_micros()), 0))
        .collect();
    for t in completions {
        let idx = (t.as_micros() / window.as_micros()) as usize;
        out[idx].1 += 1;
    }
    out
}

/// How long each blocking episode at the *cluster* level lasted: the spans
/// during which the pending queue was non-empty. The paper's "quickly
/// resolving the job blocking problem" claim is about shortening exactly
/// these.
pub fn cluster_blocking_episodes(log: &EventLog) -> Vec<(SimTime, SimSpan)> {
    let timeline = pending_queue_timeline(log);
    let mut episodes = Vec::new();
    let mut open_since: Option<SimTime> = None;
    for (t, len) in timeline {
        match (open_since, len) {
            (None, n) if n > 0 => open_since = Some(t),
            (Some(start), 0) => {
                episodes.push((start, t.saturating_since(start)));
                open_since = None;
            }
            _ => {}
        }
    }
    episodes
}

/// Per-node resident-job counts over time, reconstructed from the event
/// log: `+1` on a placement, `−1` on completion, migration departure, or
/// suspension. Returns change-points `(time, counts-per-node)`.
///
/// # Panics
///
/// Panics if the log references a node index `>= nodes` or occupancy would
/// go negative (which would mean the log is inconsistent).
pub fn node_occupancy_timeline(log: &EventLog, nodes: usize) -> Vec<(SimTime, Vec<usize>)> {
    let mut counts = vec![0usize; nodes];
    let mut out = Vec::new();
    for event in log.entries() {
        let Some(node) = event.node else { continue };
        let idx = node.0 as usize;
        assert!(idx < nodes, "event references unknown {node}");
        let changed = match event.kind {
            SchedulerEventKind::Placed => {
                counts[idx] += 1;
                true
            }
            SchedulerEventKind::Completed
            | SchedulerEventKind::MigratedOut
            | SchedulerEventKind::Suspended => {
                assert!(counts[idx] > 0, "occupancy underflow at {node}");
                counts[idx] -= 1;
                true
            }
            _ => false,
        };
        if changed {
            out.push((event.time, counts.clone()));
        }
    }
    out
}

/// The jobs served by each reservation episode, in arrival order:
/// `(node's episode, [(job, service start, completion)])`. Episodes are
/// delimited by [`ReservationBegan`](SchedulerEventKind::ReservationBegan) /
/// [`ReservationReleased`](SchedulerEventKind::ReservationReleased) pairs on
/// the same workstation; a served job's completion falls back to the log's
/// end when it never completed.
pub fn reserved_service_episodes(log: &EventLog) -> Vec<Vec<(JobId, SimTime, SimTime)>> {
    use vr_cluster::node::NodeId;
    let log_end = log
        .entries()
        .last()
        .map(|e| e.time)
        .unwrap_or(SimTime::ZERO);
    // Completion time per job.
    let mut completed: HashMap<JobId, SimTime> = HashMap::new();
    for e in log.of_kind(SchedulerEventKind::Completed) {
        if let Some(job) = e.job {
            completed.insert(job, e.time);
        }
    }
    let mut open: HashMap<NodeId, Vec<(JobId, SimTime, SimTime)>> = HashMap::new();
    let mut episodes = Vec::new();
    for event in log.entries() {
        let Some(node) = event.node else { continue };
        match event.kind {
            SchedulerEventKind::ReservationBegan => {
                open.insert(node, Vec::new());
            }
            SchedulerEventKind::SpecialServiceStarted => {
                if let (Some(served), Some(job)) = (open.get_mut(&node), event.job) {
                    let done = completed.get(&job).copied().unwrap_or(log_end);
                    served.push((job, event.time, done));
                }
            }
            SchedulerEventKind::ReservationReleased => {
                if let Some(served) = open.remove(&node) {
                    episodes.push(served);
                }
            }
            _ => {}
        }
    }
    // Episodes still open at the log end (horizon hit).
    episodes.extend(open.into_values());
    episodes
}

/// The §5 upper bound on the queuing time contributed by the reserved
/// workstations: `Σ_k Σ_j (Q_r(k) − j) · w_kj`, where `w_kj` is "the time
/// interval between the arrival time of job j+1 and the completion time of
/// job j" on reserved workstation `k` (negative intervals clamp to zero —
/// job j finished before j+1 arrived).
pub fn reserved_queue_bound_from_log(log: &EventLog) -> f64 {
    let mut total = 0.0;
    for served in reserved_service_episodes(log) {
        let q = served.len();
        for j in 0..q.saturating_sub(1) {
            let completion_j = served[j].2;
            let arrival_next = served[j + 1].1;
            let w = completion_j.saturating_since(arrival_next).as_secs_f64();
            total += (q - (j + 1)) as f64 * w;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_cluster::node::NodeId;
    use vrecon::events::EventLog;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn log_of(entries: &[(u64, SchedulerEventKind, Option<u64>)]) -> EventLog {
        let mut log = EventLog::new();
        for (secs, kind, job) in entries {
            log.record(t(*secs), *kind, job.map(JobId), Some(NodeId(0)));
        }
        log
    }

    use SchedulerEventKind as K;

    #[test]
    fn pending_timeline_tracks_joins_and_leaves() {
        let log = log_of(&[
            (1, K::Blocked, Some(1)),
            (2, K::Blocked, Some(2)),
            (3, K::Placed, Some(1)),
            (4, K::TransitStarted, Some(2)),
        ]);
        assert_eq!(
            pending_queue_timeline(&log),
            vec![(t(1), 1), (t(2), 2), (t(3), 1), (t(4), 0)]
        );
    }

    #[test]
    fn placement_of_never_blocked_jobs_is_ignored() {
        let log = log_of(&[
            (1, K::Submitted, Some(1)),
            (1, K::Placed, Some(1)),
            (2, K::Blocked, Some(2)),
        ]);
        assert_eq!(pending_queue_timeline(&log), vec![(t(2), 1)]);
    }

    #[test]
    fn reservation_timeline_counts_up_and_down() {
        let log = log_of(&[
            (5, K::ReservationBegan, None),
            (7, K::ReservationBegan, None),
            (9, K::ReservationReleased, None),
        ]);
        assert_eq!(
            reservation_timeline(&log),
            vec![(t(5), 1), (t(7), 2), (t(9), 1)]
        );
    }

    #[test]
    fn episode_durations_measure_block_to_exit() {
        let log = log_of(&[
            (1, K::Blocked, Some(1)),
            (4, K::Placed, Some(1)),
            (10, K::Blocked, Some(1)), // second episode, never resolved
        ]);
        assert_eq!(blocked_episode_durations(&log), vec![3.0]);
    }

    #[test]
    fn throughput_buckets_completions() {
        let log = log_of(&[
            (1, K::Completed, Some(1)),
            (2, K::Completed, Some(2)),
            (25, K::Completed, Some(3)),
        ]);
        let buckets = completion_throughput(&log, SimSpan::from_secs(10));
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0], (t(0), 2));
        assert_eq!(buckets[1], (t(10), 0));
        assert_eq!(buckets[2], (t(20), 1));
        assert!(completion_throughput(&EventLog::new(), SimSpan::from_secs(1)).is_empty());
    }

    #[test]
    fn occupancy_timeline_tracks_arrivals_and_departures() {
        let mut log = EventLog::new();
        let rec = |log: &mut EventLog, secs: u64, kind, job: u64, node: u32| {
            log.record(t(secs), kind, Some(JobId(job)), Some(NodeId(node)));
        };
        rec(&mut log, 1, K::Placed, 1, 0);
        rec(&mut log, 2, K::Placed, 2, 0);
        rec(&mut log, 3, K::MigratedOut, 1, 0);
        rec(&mut log, 3, K::Placed, 1, 1);
        rec(&mut log, 9, K::Completed, 2, 0);
        let timeline = node_occupancy_timeline(&log, 2);
        assert_eq!(
            timeline,
            vec![
                (t(1), vec![1, 0]),
                (t(2), vec![2, 0]),
                (t(3), vec![1, 0]),
                (t(3), vec![1, 1]),
                (t(9), vec![0, 1]),
            ]
        );
    }

    #[test]
    fn reserved_episodes_collect_served_jobs_in_order() {
        let log = log_of(&[
            (5, K::ReservationBegan, None),
            (10, K::SpecialServiceStarted, Some(1)),
            (12, K::SpecialServiceStarted, Some(2)),
            (30, K::Completed, Some(1)),
            (40, K::Completed, Some(2)),
            (40, K::ReservationReleased, None),
        ]);
        let episodes = reserved_service_episodes(&log);
        assert_eq!(episodes.len(), 1);
        let served = &episodes[0];
        assert_eq!(served.len(), 2);
        assert_eq!(served[0], (JobId(1), t(10), t(30)));
        assert_eq!(served[1], (JobId(2), t(12), t(40)));
        // Bound: Q=2; w_1 = completion(1) - arrival(2) = 30-12 = 18;
        // weight (2-1)=1 -> 18.
        assert!((reserved_queue_bound_from_log(&log) - 18.0).abs() < 1e-9);
    }

    #[test]
    fn reserved_bound_clamps_negative_waits() {
        // Job 1 completes before job 2 arrives: no overlap, zero bound.
        let log = log_of(&[
            (5, K::ReservationBegan, None),
            (10, K::SpecialServiceStarted, Some(1)),
            (20, K::Completed, Some(1)),
            (25, K::SpecialServiceStarted, Some(2)),
            (40, K::Completed, Some(2)),
            (40, K::ReservationReleased, None),
        ]);
        assert_eq!(reserved_queue_bound_from_log(&log), 0.0);
    }

    #[test]
    fn open_episode_at_log_end_is_included() {
        let log = log_of(&[
            (5, K::ReservationBegan, None),
            (10, K::SpecialServiceStarted, Some(1)),
        ]);
        let episodes = reserved_service_episodes(&log);
        assert_eq!(episodes.len(), 1);
        // Unfinished job's completion falls back to the log end (10s).
        assert_eq!(episodes[0][0].2, t(10));
    }

    #[test]
    fn cluster_episodes_span_nonempty_queue_periods() {
        let log = log_of(&[
            (1, K::Blocked, Some(1)),
            (2, K::Blocked, Some(2)),
            (5, K::Placed, Some(1)),
            (8, K::Placed, Some(2)), // queue empties at 8: episode 1..8
            (20, K::Blocked, Some(3)),
            (26, K::TransitStarted, Some(3)), // episode 20..26
        ]);
        assert_eq!(
            cluster_blocking_episodes(&log),
            vec![
                (t(1), SimSpan::from_secs(7)),
                (t(20), SimSpan::from_secs(6))
            ]
        );
    }
}
