//! Differential comparison of two [`RunReport`]s.
//!
//! The `vr-check` crate re-implements the memory/queueing model as a
//! deliberately naive oracle and needs a principled way to ask "did the
//! engine and the oracle measure the same run?". A bare `PartialEq` is the
//! wrong tool for that question:
//!
//! * floating-point accumulators (time breakdowns, gauge values, delivered
//!   CPU) may differ in the last ulps when two implementations sum the same
//!   series in a different association, so those fields need a tolerance;
//! * integer-valued fields (event counts, ids, completion timestamps in
//!   integer microseconds) must match **exactly** — any slack there would
//!   hide real scheduling divergences;
//! * some fields are intentionally out of scope for the oracle (the full
//!   event log, engine `run_stats`, audit output) and must be ignored.
//!
//! [`compare_reports`] encodes that field-by-field contract and returns a
//! [`ReportDiff`] listing every mismatch with enough detail to start
//! debugging from the rendered text alone.

use crate::report::RunReport;
use vr_simcore::series::TimeSeries;

/// One mismatching field between two reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDiff {
    /// Dotted path of the mismatching field, e.g. `jobs[3].breakdown.cpu`.
    pub field: String,
    /// Human-readable `engine vs oracle` detail.
    pub detail: String,
}

/// The outcome of comparing two reports: empty means they agree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportDiff {
    /// Every mismatching field, in declaration order of the report.
    pub diffs: Vec<FieldDiff>,
}

impl ReportDiff {
    /// `true` if the reports agreed on every compared field.
    pub fn is_match(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Number of mismatching fields.
    pub fn len(&self) -> usize {
        self.diffs.len()
    }

    /// `true` if there are no mismatches (same as [`is_match`]).
    ///
    /// [`is_match`]: ReportDiff::is_match
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// Renders all mismatches as one line per field.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for diff in &self.diffs {
            out.push_str(&diff.field);
            out.push_str(": ");
            out.push_str(&diff.detail);
            out.push('\n');
        }
        out
    }
}

/// Collects mismatches while walking the two reports.
struct Differ {
    diffs: Vec<FieldDiff>,
    tol: f64,
}

impl Differ {
    fn push(&mut self, field: String, detail: String) {
        self.diffs.push(FieldDiff { field, detail });
    }

    fn exact<T: PartialEq + std::fmt::Debug>(&mut self, field: &str, a: &T, b: &T) {
        if a != b {
            self.push(field.to_owned(), format!("{a:?} vs {b:?}"));
        }
    }

    /// Mixed absolute/relative tolerance: fields are seconds or megabytes,
    /// so `tol * (1 + max(|a|,|b|))` absorbs both tiny-magnitude noise and
    /// last-ulp drift on large accumulators.
    fn approx(&mut self, field: &str, a: f64, b: f64) {
        let scale = 1.0 + a.abs().max(b.abs());
        if (a - b).abs() > self.tol * scale || a.is_nan() != b.is_nan() {
            self.push(field.to_owned(), format!("{a:?} vs {b:?}"));
        }
    }

    fn series(&mut self, field: &str, a: &TimeSeries, b: &TimeSeries) {
        if a.len() != b.len() {
            self.push(
                format!("{field}.len"),
                format!("{} vs {} samples", a.len(), b.len()),
            );
            return;
        }
        for (i, ((ta, va), (tb, vb))) in a.iter().zip(b.iter()).enumerate() {
            self.exact(&format!("{field}[{i}].time"), &ta, &tb);
            self.approx(&format!("{field}[{i}].value"), va, vb);
        }
    }
}

/// Compares an engine report against an oracle report field by field.
///
/// Exactly compared: trace name, policy, seed, job identity fields (id,
/// completion time, migration count, remote-submission flag, state),
/// scheduler counters, reservation stats, fault counters, integer node
/// counters, gauge sample times, `finished_at`, and `unfinished_jobs`.
///
/// Compared within `tol` (mixed absolute/relative): per-job time
/// breakdowns and progress, summary aggregates, floating-point node
/// counters, and gauge values.
///
/// Ignored: the event log, engine `run_stats`, and audit violations —
/// the oracle produces none of these by design.
pub fn compare_reports(engine: &RunReport, oracle: &RunReport, tol: f64) -> ReportDiff {
    let mut d = Differ {
        diffs: Vec::new(),
        tol,
    };

    d.exact("trace_name", &engine.trace_name, &oracle.trace_name);
    d.exact("policy", &engine.policy, &oracle.policy);
    d.exact("seed", &engine.seed, &oracle.seed);

    d.exact("jobs.len", &engine.jobs.len(), &oracle.jobs.len());
    for (i, (a, b)) in engine.jobs.iter().zip(oracle.jobs.iter()).enumerate() {
        d.exact(&format!("jobs[{i}].id"), &a.id(), &b.id());
        d.exact(
            &format!("jobs[{i}].completed_at"),
            &a.completed_at,
            &b.completed_at,
        );
        d.exact(
            &format!("jobs[{i}].migrations"),
            &a.migrations,
            &b.migrations,
        );
        d.exact(
            &format!("jobs[{i}].remote_submitted"),
            &a.remote_submitted,
            &b.remote_submitted,
        );
        d.exact(&format!("jobs[{i}].state"), &a.state, &b.state);
        d.approx(
            &format!("jobs[{i}].progress_secs"),
            a.progress_secs,
            b.progress_secs,
        );
        d.approx(
            &format!("jobs[{i}].breakdown.cpu"),
            a.breakdown.cpu,
            b.breakdown.cpu,
        );
        d.approx(
            &format!("jobs[{i}].breakdown.page"),
            a.breakdown.page,
            b.breakdown.page,
        );
        d.approx(
            &format!("jobs[{i}].breakdown.queue"),
            a.breakdown.queue,
            b.breakdown.queue,
        );
        d.approx(
            &format!("jobs[{i}].breakdown.migration"),
            a.breakdown.migration,
            b.breakdown.migration,
        );
    }

    d.exact("summary.jobs", &engine.summary.jobs, &oracle.summary.jobs);
    d.exact(
        "summary.migrations",
        &engine.summary.migrations,
        &oracle.summary.migrations,
    );
    d.exact(
        "summary.remote_submissions",
        &engine.summary.remote_submissions,
        &oracle.summary.remote_submissions,
    );
    d.approx(
        "summary.totals.cpu",
        engine.summary.totals.cpu,
        oracle.summary.totals.cpu,
    );
    d.approx(
        "summary.totals.page",
        engine.summary.totals.page,
        oracle.summary.totals.page,
    );
    d.approx(
        "summary.totals.queue",
        engine.summary.totals.queue,
        oracle.summary.totals.queue,
    );
    d.approx(
        "summary.totals.migration",
        engine.summary.totals.migration,
        oracle.summary.totals.migration,
    );
    d.approx(
        "summary.avg_slowdown",
        engine.summary.avg_slowdown,
        oracle.summary.avg_slowdown,
    );
    d.approx(
        "summary.median_slowdown",
        engine.summary.median_slowdown,
        oracle.summary.median_slowdown,
    );
    d.approx(
        "summary.p95_slowdown",
        engine.summary.p95_slowdown,
        oracle.summary.p95_slowdown,
    );

    d.series(
        "gauges.idle_memory_mb",
        &engine.gauges.idle_memory_mb,
        &oracle.gauges.idle_memory_mb,
    );
    d.series(
        "gauges.physical_idle_memory_mb",
        &engine.gauges.physical_idle_memory_mb,
        &oracle.gauges.physical_idle_memory_mb,
    );
    d.series(
        "gauges.balance_skew",
        &engine.gauges.balance_skew,
        &oracle.gauges.balance_skew,
    );
    d.series(
        "gauges.reserved_nodes",
        &engine.gauges.reserved_nodes,
        &oracle.gauges.reserved_nodes,
    );
    d.series(
        "gauges.pending_jobs",
        &engine.gauges.pending_jobs,
        &oracle.gauges.pending_jobs,
    );

    d.exact("counters", &engine.counters, &oracle.counters);
    d.exact("reservations", &engine.reservations, &oracle.reservations);
    d.exact("faults", &engine.faults, &oracle.faults);

    d.exact(
        "node_counters.len",
        &engine.node_counters.len(),
        &oracle.node_counters.len(),
    );
    for (i, (a, b)) in engine
        .node_counters
        .iter()
        .zip(oracle.node_counters.iter())
        .enumerate()
    {
        d.exact(
            &format!("node_counters[{i}].admitted"),
            &a.admitted,
            &b.admitted,
        );
        d.exact(
            &format!("node_counters[{i}].completed"),
            &a.completed,
            &b.completed,
        );
        d.exact(
            &format!("node_counters[{i}].migrated_out"),
            &a.migrated_out,
            &b.migrated_out,
        );
        d.approx(
            &format!("node_counters[{i}].delivered_cpu"),
            a.delivered_cpu,
            b.delivered_cpu,
        );
        d.approx(
            &format!("node_counters[{i}].page_stall"),
            a.page_stall,
            b.page_stall,
        );
        d.approx(&format!("node_counters[{i}].io_ops"), a.io_ops, b.io_ops);
    }

    d.exact("finished_at", &engine.finished_at, &oracle.finished_at);
    d.exact(
        "unfinished_jobs",
        &engine.unfinished_jobs,
        &oracle.unfinished_jobs,
    );

    ReportDiff { diffs: d.diffs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
    use vr_cluster::units::Bytes;
    use vr_simcore::time::{SimSpan, SimTime};

    fn sample_report() -> RunReport {
        let mut job = RunningJob::new(JobSpec {
            id: JobId(0),
            name: "j".to_owned(),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs(10),
            memory: MemoryProfile::constant(Bytes::from_mb(16)),
            io_rate: 0.0,
            malleable: None,
        });
        job.breakdown.cpu = 10.0;
        job.completed_at = Some(SimTime::from_secs(10));
        let jobs = vec![job];
        RunReport {
            trace_name: "t".to_owned(),
            policy: PolicyKind::GLoadSharing,
            seed: 7,
            summary: vr_metrics::summary::WorkloadSummary::of_jobs(jobs.iter()),
            jobs,
            gauges: Default::default(),
            counters: Default::default(),
            reservations: Default::default(),
            node_counters: vec![Default::default()],
            events: Default::default(),
            finished_at: SimTime::from_secs(10),
            run_stats: Default::default(),
            unfinished_jobs: 0,
            faults: Default::default(),
            audit_violations: Vec::new(),
        }
    }

    #[test]
    fn identical_reports_match() {
        let a = sample_report();
        let diff = compare_reports(&a, &a.clone(), 1e-9);
        assert!(diff.is_match(), "unexpected diffs:\n{}", diff.render());
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
    }

    #[test]
    fn float_drift_within_tolerance_matches() {
        let a = sample_report();
        let mut b = a.clone();
        b.jobs[0].breakdown.cpu += 1e-12;
        b.summary.totals.cpu += 1e-12;
        assert!(compare_reports(&a, &b, 1e-9).is_match());
    }

    #[test]
    fn float_drift_beyond_tolerance_diffs() {
        let a = sample_report();
        let mut b = a.clone();
        b.jobs[0].breakdown.cpu += 1e-3;
        let diff = compare_reports(&a, &b, 1e-9);
        assert!(!diff.is_match());
        assert_eq!(diff.diffs[0].field, "jobs[0].breakdown.cpu");
        assert!(diff.render().contains("jobs[0].breakdown.cpu"));
    }

    #[test]
    fn integer_fields_have_no_slack() {
        let a = sample_report();
        let mut b = a.clone();
        b.jobs[0].completed_at = Some(SimTime::from_micros(10_000_001));
        assert!(!compare_reports(&a, &b, 1.0).is_match());

        let mut c = a.clone();
        c.counters.local_submissions = 1;
        let diff = compare_reports(&a, &c, 1.0);
        assert_eq!(diff.diffs[0].field, "counters");
    }

    #[test]
    fn event_log_and_run_stats_are_ignored() {
        let a = sample_report();
        let mut b = a.clone();
        b.run_stats.events_processed = 999;
        b.audit_violations.push("ignored".to_owned());
        assert!(compare_reports(&a, &b, 1e-9).is_match());
    }

    #[test]
    fn job_count_mismatch_is_reported() {
        let a = sample_report();
        let mut b = a.clone();
        b.jobs.clear();
        let diff = compare_reports(&a, &b, 1e-9);
        assert!(diff.render().contains("jobs.len"));
    }
}
