//! Jobs: what they demand and how their execution time decomposes.
//!
//! A [`JobSpec`] is the static description taken from a workload trace:
//! total CPU work, a [`MemoryProfile`] describing how the working set evolves
//! with execution *progress* (not wall time — memory phases are tied to what
//! the program has computed so far), and metadata. A [`RunningJob`] wraps a
//! spec with dynamic state: progress, the wall-clock
//! [`TimeBreakdown`], and migration history.
//!
//! The breakdown mirrors the paper's §5 model exactly:
//! `t_exe(i) = t_cpu(i) + t_page(i) + t_que(i) + t_mig(i)`.

use std::fmt;

use serde::{Deserialize, Serialize};
use vr_simcore::time::{SimSpan, SimTime};

use crate::units::Bytes;

/// Identifies a job within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Broad workload class of a program, recorded for reporting; the simulator's
/// timing model is driven by the CPU work and memory profile, not the class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobClass {
    /// Dominated by computation with a modest working set.
    CpuIntensive,
    /// Dominated by memory footprint.
    MemoryIntensive,
    /// Both CPU- and memory-intensive (the SPEC 2000 group).
    CpuMemoryIntensive,
    /// Performs significant file I/O.
    IoActive,
}

impl fmt::Display for JobClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JobClass::CpuIntensive => "cpu-intensive",
            JobClass::MemoryIntensive => "memory-intensive",
            JobClass::CpuMemoryIntensive => "cpu+memory-intensive",
            JobClass::IoActive => "io-active",
        };
        f.write_str(s)
    }
}

/// One constant-working-set segment of a job's memory demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemPhase {
    /// The phase is active while the job's progress is below this many
    /// microseconds of consumed CPU work.
    pub until_progress: SimSpan,
    /// Working-set size during the phase.
    pub working_set: Bytes,
}

/// Piecewise-constant working-set demand as a function of execution progress.
///
/// The final phase's `until_progress` may be [`SimSpan::MAX`]; it covers the
/// remainder of the job regardless.
///
/// ```
/// use vr_cluster::job::MemoryProfile;
/// use vr_cluster::units::Bytes;
/// use vr_simcore::time::SimSpan;
///
/// // Ramp: 10MB for the first 5s of progress, then 100MB.
/// let profile = MemoryProfile::from_phases(vec![
///     (SimSpan::from_secs(5), Bytes::from_mb(10)),
///     (SimSpan::MAX, Bytes::from_mb(100)),
/// ])?;
/// assert_eq!(profile.working_set_at(SimSpan::from_secs(2)), Bytes::from_mb(10));
/// assert_eq!(profile.working_set_at(SimSpan::from_secs(7)), Bytes::from_mb(100));
/// assert_eq!(profile.max_working_set(), Bytes::from_mb(100));
/// # Ok::<(), vr_cluster::job::InvalidProfile>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryProfile {
    phases: Vec<MemPhase>,
}

/// Error constructing a [`MemoryProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidProfile {
    /// No phases were supplied.
    Empty,
    /// Phase boundaries are not strictly increasing.
    NonMonotonic,
}

impl fmt::Display for InvalidProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidProfile::Empty => f.write_str("memory profile has no phases"),
            InvalidProfile::NonMonotonic => {
                f.write_str("memory profile phase boundaries must be strictly increasing")
            }
        }
    }
}

impl std::error::Error for InvalidProfile {}

impl MemoryProfile {
    /// A profile with a single constant working set.
    pub fn constant(working_set: Bytes) -> Self {
        MemoryProfile {
            phases: vec![MemPhase {
                until_progress: SimSpan::MAX,
                working_set,
            }],
        }
    }

    /// Builds a profile from `(until_progress, working_set)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProfile`] if the list is empty or the boundaries are
    /// not strictly increasing.
    pub fn from_phases(phases: Vec<(SimSpan, Bytes)>) -> Result<Self, InvalidProfile> {
        if phases.is_empty() {
            return Err(InvalidProfile::Empty);
        }
        for w in phases.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(InvalidProfile::NonMonotonic);
            }
        }
        Ok(MemoryProfile {
            phases: phases
                .into_iter()
                .map(|(until_progress, working_set)| MemPhase {
                    until_progress,
                    working_set,
                })
                .collect(),
        })
    }

    /// The working set demanded at a given progress point.
    pub fn working_set_at(&self, progress: SimSpan) -> Bytes {
        for phase in &self.phases {
            if progress < phase.until_progress {
                return phase.working_set;
            }
        }
        // Progress past the last boundary: the final phase extends forever.
        self.phases
            .last()
            // vr-lint::allow(panic-in-lib, reason = "MemoryProfile construction rejects empty phase lists")
            .expect("profile is never empty")
            .working_set
    }

    /// The first phase boundary strictly after `progress`, if any phase
    /// change remains.
    pub fn next_boundary_after(&self, progress: SimSpan) -> Option<SimSpan> {
        self.phases
            .iter()
            .map(|p| p.until_progress)
            .find(|b| *b > progress && *b != SimSpan::MAX)
    }

    /// The phase containing `progress`, as `(phase end, working set)` —
    /// `working_set_at` and its validity horizon in one walk. Boundaries are
    /// strictly increasing, so the first phase with `progress` strictly
    /// before its end is the active one; past the last boundary the final
    /// phase extends forever.
    pub fn phase_at(&self, progress: SimSpan) -> (SimSpan, Bytes) {
        for phase in &self.phases {
            if progress < phase.until_progress {
                return (phase.until_progress, phase.working_set);
            }
        }
        let last = self
            .phases
            .last()
            // vr-lint::allow(panic-in-lib, reason = "MemoryProfile construction rejects empty phase lists")
            .expect("profile is never empty");
        (SimSpan::MAX, last.working_set)
    }

    /// The largest working set over the whole profile (the "working set"
    /// column of the paper's Tables 1–2).
    pub fn max_working_set(&self) -> Bytes {
        self.phases
            .iter()
            .map(|p| p.working_set)
            .max()
            // vr-lint::allow(panic-in-lib, reason = "MemoryProfile construction rejects empty phase lists")
            .expect("profile is never empty")
    }

    /// The phases, in order.
    pub fn phases(&self) -> &[MemPhase] {
        &self.phases
    }
}

/// A malleable job's declared slot-width range.
///
/// A malleable job starts at `min_width` slots and may be grown or shrunk
/// by the scheduler within `min_width..=max_width` at load-exchange ticks;
/// a job running at width `w` holds `w` job slots and receives `w`
/// processor-sharing shares. Non-malleable jobs (the default) are
/// equivalent to `min_width == max_width == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MalleableSpec {
    /// Smallest width the job can run at (≥ 1).
    pub min_width: u32,
    /// Largest width the job may be grown to (≥ `min_width`).
    pub max_width: u32,
}

impl MalleableSpec {
    /// Checks `1 <= min_width <= max_width`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_width == 0 {
            return Err("malleable min_width must be at least 1".into());
        }
        if self.max_width < self.min_width {
            return Err(format!(
                "malleable max_width {} is below min_width {}",
                self.max_width, self.min_width
            ));
        }
        Ok(())
    }
}

/// Static description of a job, as read from a workload trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Unique id within the trace.
    pub id: JobId,
    /// Program name (e.g. `"mcf"`, `"r-wing"`).
    pub name: String,
    /// Workload class, for reporting.
    pub class: JobClass,
    /// When the job is submitted to the cluster.
    pub submit: SimTime,
    /// Total CPU work, expressed as seconds on a dedicated reference node of
    /// the cluster the trace targets.
    pub cpu_work: SimSpan,
    /// Working-set demand as a function of progress.
    pub memory: MemoryProfile,
    /// Average I/O operations per second of progress. Metadata only: the
    /// ICDCS 2002 execution-time model has no I/O term (§5 decomposes wall
    /// time into cpu + page + queue + migration), so I/O intensity is carried
    /// through to reports but does not perturb timing.
    pub io_rate: f64,
    /// Optional malleable slot-width range. `None` (the common case) means
    /// a rigid single-slot job; only the malleable scheduling family reads
    /// it.
    #[serde(default)]
    pub malleable: Option<MalleableSpec>,
}

impl JobSpec {
    /// The job's peak memory demand.
    pub fn max_working_set(&self) -> Bytes {
        self.memory.max_working_set()
    }

    /// The slot width the job starts at (its declared minimum, or 1).
    pub fn initial_width(&self) -> u32 {
        self.malleable.map_or(1, |m| m.min_width)
    }
}

/// Wall-clock decomposition of a job's execution, in seconds.
///
/// Matches §5 of the paper: wall time = cpu + page + queue + migration.
/// Components accumulate as `f64` seconds because processor-sharing rates
/// split microseconds fractionally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// CPU service received.
    pub cpu: f64,
    /// Stall time due to page faults.
    pub page: f64,
    /// Time waiting for CPU service (in the multiprogramming round-robin or
    /// in the cluster's pending queue).
    pub queue: f64,
    /// Time frozen during preemptive migrations and remote-submission setup.
    pub migration: f64,
}

impl TimeBreakdown {
    /// Total wall-clock time.
    pub fn wall(&self) -> f64 {
        self.cpu + self.page + self.queue + self.migration
    }

    /// The paper's slowdown metric: wall-clock time over CPU execution time.
    ///
    /// Returns 1.0 for jobs that received no CPU service (degenerate).
    pub fn slowdown(&self) -> f64 {
        if self.cpu <= 0.0 {
            1.0
        } else {
            self.wall() / self.cpu
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &TimeBreakdown) -> TimeBreakdown {
        TimeBreakdown {
            cpu: self.cpu + other.cpu,
            page: self.page + other.page,
            queue: self.queue + other.queue,
            migration: self.migration + other.migration,
        }
    }
}

/// Why a job is not currently progressing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the cluster-level pending queue for a placement.
    Pending,
    /// Resident on a node, sharing its CPU.
    Running,
    /// Frozen mid-transfer to another node.
    Migrating,
    /// Swapped out entirely by the scheduler (the suspension strawman of
    /// the paper's §1); holds no memory and makes no progress.
    Suspended,
    /// Finished.
    Completed,
}

/// Memo of the memory phase a job's progress currently sits in, as
/// `(phase end, working set)`. Purely derived state: progress is monotonic
/// and phases are piecewise-constant with strictly increasing ends, so a
/// cached phase stays the correct answer for every later progress value
/// below its end. Interior-mutable so `&self` readers can fill it; skipped
/// by serde (re-derived on demand) and inert under `PartialEq` (it is not
/// part of the job's value).
#[derive(Debug, Clone, Default)]
pub struct PhaseMemo(std::cell::Cell<Option<(SimSpan, Bytes)>>);

impl PartialEq for PhaseMemo {
    fn eq(&self, _: &Self) -> bool {
        true // a cache never distinguishes two jobs
    }
}

/// A job in flight: spec plus dynamic execution state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningJob {
    /// The static description.
    pub spec: JobSpec,
    /// CPU work consumed so far, in seconds (f64 to avoid integer rounding
    /// drift under fractional processor-sharing rates).
    pub progress_secs: f64,
    /// Wall-clock decomposition so far.
    pub breakdown: TimeBreakdown,
    /// Current lifecycle state.
    pub state: JobState,
    /// Number of preemptive migrations endured.
    pub migrations: u32,
    /// `true` if the first placement was a remote submission.
    pub remote_submitted: bool,
    /// When the job finished, if it has.
    pub completed_at: Option<SimTime>,
    /// Current slot width (processor-sharing weight). Always 1 for rigid
    /// jobs; the malleable family moves it within the job's declared
    /// [`MalleableSpec`] range.
    pub width: u32,
    /// Current-memory-phase memo (see [`PhaseMemo`]).
    #[serde(skip)]
    pub phase_memo: PhaseMemo,
}

impl RunningJob {
    /// Wraps a spec in its initial (pending) state.
    pub fn new(spec: JobSpec) -> Self {
        let width = spec.initial_width();
        RunningJob {
            spec,
            progress_secs: 0.0,
            breakdown: TimeBreakdown::default(),
            state: JobState::Pending,
            migrations: 0,
            remote_submitted: false,
            completed_at: None,
            width,
            phase_memo: PhaseMemo::default(),
        }
    }

    /// Shorthand for the job id.
    pub fn id(&self) -> JobId {
        self.spec.id
    }

    /// Progress expressed as a span.
    // vr-analyze::allow(panic-path, reason = "progress_secs is clamped non-negative and bounded by cpu_work, which already round-tripped through a span")
    pub fn progress(&self) -> SimSpan {
        SimSpan::from_secs_f64(self.progress_secs.max(0.0))
    }

    /// CPU work still to be done, in seconds.
    pub fn remaining_secs(&self) -> f64 {
        (self.spec.cpu_work.as_secs_f64() - self.progress_secs).max(0.0)
    }

    /// `true` once all CPU work is consumed.
    pub fn is_complete(&self) -> bool {
        self.remaining_secs() <= 0.0
    }

    /// The working set the job demands right now.
    pub fn current_working_set(&self) -> Bytes {
        self.current_phase().1
    }

    /// The first memory-phase boundary strictly after the current progress,
    /// if any phase change remains. Equivalent to
    /// `spec.memory.next_boundary_after(progress())`, served from the memo.
    pub fn next_phase_boundary(&self) -> Option<SimSpan> {
        let (until, _) = self.current_phase();
        (until != SimSpan::MAX).then_some(until)
    }

    /// The memoised `(phase end, working set)` for the current progress.
    fn current_phase(&self) -> (SimSpan, Bytes) {
        let progress = self.progress();
        if let Some((until, ws)) = self.phase_memo.0.get() {
            if progress < until {
                return (until, ws);
            }
        }
        let phase = self.spec.memory.phase_at(progress);
        self.phase_memo.0.set(Some(phase));
        phase
    }

    /// The paper's slowdown metric for this job.
    pub fn slowdown(&self) -> f64 {
        self.breakdown.slowdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ws_mb: u64, cpu_secs: u64) -> JobSpec {
        JobSpec {
            id: JobId(1),
            name: "test".to_owned(),
            class: JobClass::CpuIntensive,
            submit: SimTime::ZERO,
            cpu_work: SimSpan::from_secs(cpu_secs),
            memory: MemoryProfile::constant(Bytes::from_mb(ws_mb)),
            io_rate: 0.0,
            malleable: None,
        }
    }

    #[test]
    fn constant_profile_is_flat() {
        let p = MemoryProfile::constant(Bytes::from_mb(50));
        assert_eq!(p.working_set_at(SimSpan::ZERO), Bytes::from_mb(50));
        assert_eq!(
            p.working_set_at(SimSpan::from_secs(999)),
            Bytes::from_mb(50)
        );
        assert_eq!(p.max_working_set(), Bytes::from_mb(50));
        assert_eq!(p.next_boundary_after(SimSpan::ZERO), None);
    }

    #[test]
    fn phased_profile_lookup_and_boundaries() {
        let p = MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(10), Bytes::from_mb(20)),
            (SimSpan::from_secs(30), Bytes::from_mb(80)),
            (SimSpan::MAX, Bytes::from_mb(40)),
        ])
        .unwrap();
        assert_eq!(p.working_set_at(SimSpan::from_secs(5)), Bytes::from_mb(20));
        assert_eq!(p.working_set_at(SimSpan::from_secs(10)), Bytes::from_mb(80));
        assert_eq!(p.working_set_at(SimSpan::from_secs(29)), Bytes::from_mb(80));
        assert_eq!(p.working_set_at(SimSpan::from_secs(31)), Bytes::from_mb(40));
        assert_eq!(p.max_working_set(), Bytes::from_mb(80));
        assert_eq!(
            p.next_boundary_after(SimSpan::ZERO),
            Some(SimSpan::from_secs(10))
        );
        assert_eq!(
            p.next_boundary_after(SimSpan::from_secs(10)),
            Some(SimSpan::from_secs(30))
        );
        assert_eq!(p.next_boundary_after(SimSpan::from_secs(30)), None);
    }

    #[test]
    fn profile_validation() {
        assert_eq!(
            MemoryProfile::from_phases(vec![]).unwrap_err(),
            InvalidProfile::Empty
        );
        let err = MemoryProfile::from_phases(vec![
            (SimSpan::from_secs(10), Bytes::from_mb(1)),
            (SimSpan::from_secs(10), Bytes::from_mb(2)),
        ])
        .unwrap_err();
        assert_eq!(err, InvalidProfile::NonMonotonic);
    }

    #[test]
    fn breakdown_decomposition_and_slowdown() {
        let b = TimeBreakdown {
            cpu: 100.0,
            page: 20.0,
            queue: 70.0,
            migration: 10.0,
        };
        assert_eq!(b.wall(), 200.0);
        assert_eq!(b.slowdown(), 2.0);
        let sum = b.add(&b);
        assert_eq!(sum.wall(), 400.0);
    }

    #[test]
    fn degenerate_slowdown_is_one() {
        assert_eq!(TimeBreakdown::default().slowdown(), 1.0);
    }

    #[test]
    fn running_job_lifecycle_fields() {
        let mut job = RunningJob::new(spec(100, 60));
        assert_eq!(job.state, JobState::Pending);
        assert_eq!(job.remaining_secs(), 60.0);
        assert!(!job.is_complete());
        assert_eq!(job.current_working_set(), Bytes::from_mb(100));
        job.progress_secs = 60.0;
        assert!(job.is_complete());
        assert_eq!(job.remaining_secs(), 0.0);
    }

    #[test]
    fn current_working_set_follows_progress() {
        let mut job = RunningJob::new(JobSpec {
            memory: MemoryProfile::from_phases(vec![
                (SimSpan::from_secs(5), Bytes::from_mb(10)),
                (SimSpan::MAX, Bytes::from_mb(200)),
            ])
            .unwrap(),
            ..spec(0, 100)
        });
        assert_eq!(job.current_working_set(), Bytes::from_mb(10));
        job.progress_secs = 6.0;
        assert_eq!(job.current_working_set(), Bytes::from_mb(200));
    }
}
