//! # vr-runner — experiment orchestration
//!
//! The sweep engine behind the bench binaries and `vrecon sweep`: runs
//! many independent, deterministic simulations in parallel without
//! sacrificing reproducibility.
//!
//! * [`scenario`] — [`Scenario`] descriptors (cluster + trace + policy +
//!   seed + fault plan) with a stable 128-bit content hash, and ordered
//!   [`SweepPlan`]s.
//! * [`pool`] — a dependency-free work-stealing thread pool on
//!   [`std::thread::scope`] with per-item panic isolation and
//!   input-ordered results.
//! * [`cache`] — a content-addressed on-disk [`ResultCache`]
//!   (`.vr-cache/<hash>.json`) with hit/miss accounting and atomic
//!   writes.
//! * [`telemetry`] — live [`SweepEvent`] streaming over `mpsc` to a
//!   progress renderer.
//! * [`runner`] — the [`Runner`] tying it together, plus the
//!   `BENCH_sweep.json` writer.
//!
//! The contract throughout: **results are ordered by scenario index, not
//! completion order**, so any table printed from a sweep is bit-identical
//! whether it ran on one worker or sixteen.
//!
//! ```
//! use std::sync::Arc;
//! use vr_cluster::{params::ClusterParams, units::Bytes};
//! use vr_runner::{Runner, Scenario, SweepPlan};
//! use vrecon::{PolicyKind, SimConfig};
//!
//! let mut cluster = ClusterParams::cluster2();
//! cluster.nodes.truncate(2);
//! let trace = Arc::new(vr_workload::synth::blocking_scenario(2, Bytes::from_mb(64)));
//! let plan: SweepPlan = [PolicyKind::GLoadSharing, PolicyKind::VReconfiguration]
//!     .into_iter()
//!     .map(|p| Scenario::new(SimConfig::new(cluster.clone(), p).with_seed(7), Arc::clone(&trace)))
//!     .collect();
//!
//! let outcome = Runner::uncached(2).run(&plan);
//! let reports = outcome.expect_reports();
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports[0].policy, PolicyKind::GLoadSharing);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod pool;
pub mod runner;
pub mod scenario;
pub mod telemetry;

pub use cache::{default_cache_dir, CacheStats, ResultCache};
pub use pool::{effective_workers, panic_message, run_indexed, PoolOutcome};
pub use runner::{
    bench_json, write_bench_json, Runner, ScenarioResult, SweepOptions, SweepOutcome,
};
pub use scenario::{Scenario, SweepPlan, SCENARIO_HASH_VERSION};
pub use telemetry::SweepEvent;
