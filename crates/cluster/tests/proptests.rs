//! Property-based invariants of the workstation model.

use proptest::prelude::*;
use vr_cluster::cpu::CpuParams;
use vr_cluster::job::{JobClass, JobId, JobSpec, MemoryProfile, RunningJob};
use vr_cluster::memory::{FaultModel, MemoryParams};
use vr_cluster::node::{NodeId, NodeParams, Workstation};
use vr_cluster::units::Bytes;
use vr_simcore::time::{SimSpan, SimTime};

#[derive(Debug, Clone)]
struct JobDesc {
    ws_mb: u64,
    work_secs: f64,
    ramp: bool,
}

fn job_strategy() -> impl Strategy<Value = JobDesc> {
    (4u64..120, 5.0f64..300.0, any::<bool>()).prop_map(|(ws_mb, work_secs, ramp)| JobDesc {
        ws_mb,
        work_secs,
        ramp,
    })
}

fn build_job(id: u64, desc: &JobDesc) -> RunningJob {
    let peak = Bytes::from_mb(desc.ws_mb);
    let memory = if desc.ramp {
        MemoryProfile::from_phases(vec![
            (
                SimSpan::from_secs_f64(desc.work_secs * 0.25),
                peak.mul_f64(0.3),
            ),
            (SimSpan::MAX, peak),
        ])
        .expect("increasing boundaries")
    } else {
        MemoryProfile::constant(peak)
    };
    RunningJob::new(JobSpec {
        id: JobId(id),
        name: format!("p{id}"),
        class: JobClass::CpuIntensive,
        submit: SimTime::ZERO,
        cpu_work: SimSpan::from_secs_f64(desc.work_secs),
        memory,
        io_rate: 0.0,
        malleable: None,
    })
}

fn node(kappa: f64) -> Workstation {
    Workstation::new(
        NodeId(0),
        NodeParams {
            cpu: CpuParams::with_slots(16),
            memory: MemoryParams::with_capacity(Bytes::from_mb(128), Bytes::from_mb(4096)),
            fault_model: FaultModel::LinearOverflow { kappa },
            protection: Default::default(),
        },
    )
}

proptest! {
    /// Each resident job's breakdown always sums to its wall-clock
    /// residency, regardless of load, phases, or fault pressure.
    #[test]
    fn breakdown_equals_residency(
        descs in prop::collection::vec(job_strategy(), 1..10),
        horizon in 1u64..2_000,
        kappa in 0.5f64..8.0,
    ) {
        let mut node = node(kappa);
        for (i, d) in descs.iter().enumerate() {
            node.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        node.advance_to(SimTime::from_secs(horizon));
        for job in node.jobs() {
            let wall = job.breakdown.wall();
            prop_assert!(
                (wall - horizon as f64).abs() < 1e-6,
                "resident job wall {wall} vs horizon {horizon}"
            );
        }
        for job in node.take_completed() {
            let done = job.completed_at.unwrap().as_secs_f64();
            prop_assert!((job.breakdown.wall() - done).abs() < 1e-6);
            // A completed job consumed exactly its CPU work.
            prop_assert!((job.breakdown.cpu - job.spec.cpu_work.as_secs_f64()).abs() < 1e-6);
        }
    }

    /// Advancing in one step or in many arbitrary steps gives identical
    /// progress (the lazy integrator is self-consistent).
    #[test]
    fn advancement_is_step_invariant(
        descs in prop::collection::vec(job_strategy(), 1..6),
        cuts in prop::collection::vec(1u64..500, 1..8),
    ) {
        let total: u64 = cuts.iter().sum();
        let mut one_shot = node(4.0);
        let mut stepped = node(4.0);
        for (i, d) in descs.iter().enumerate() {
            one_shot.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
            stepped.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        one_shot.advance_to(SimTime::from_secs(total));
        let mut t = 0;
        for c in &cuts {
            t += c;
            stepped.advance_to(SimTime::from_secs(t));
        }
        let a = one_shot.take_completed();
        let b = stepped.take_completed();
        prop_assert_eq!(a.len(), b.len());
        for job in one_shot.jobs() {
            let twin = stepped
                .jobs()
                .iter()
                .find(|j| j.id() == job.id())
                .expect("same resident set");
            prop_assert!(
                (job.progress_secs - twin.progress_secs).abs() < 1e-6,
                "progress diverged: {} vs {}",
                job.progress_secs,
                twin.progress_secs
            );
        }
    }

    /// Progress is monotone and never exceeds the job's total work.
    #[test]
    fn progress_is_monotone_and_bounded(
        descs in prop::collection::vec(job_strategy(), 1..6),
        steps in prop::collection::vec(1u64..200, 1..10),
    ) {
        let mut node = node(4.0);
        for (i, d) in descs.iter().enumerate() {
            node.try_admit(build_job(i as u64, d), SimTime::ZERO).unwrap();
        }
        let mut last: std::collections::BTreeMap<JobId, f64> = Default::default();
        let mut t = 0;
        for s in &steps {
            t += s;
            node.advance_to(SimTime::from_secs(t));
            for job in node.jobs() {
                let prev = last.insert(job.id(), job.progress_secs).unwrap_or(0.0);
                prop_assert!(job.progress_secs + 1e-9 >= prev);
                prop_assert!(job.progress_secs <= job.spec.cpu_work.as_secs_f64() + 1e-6);
            }
        }
    }

    /// The fault model's stall factors are non-negative, finite, and scale
    /// monotonically with each job's working-set share.
    #[test]
    fn stall_factors_are_sane(
        ws in prop::collection::vec(1u64..512, 1..12),
        user_mb in 32u64..512,
        kappa in 0.1f64..16.0,
    ) {
        let sets: Vec<Bytes> = ws.iter().map(|m| Bytes::from_mb(*m)).collect();
        let model = FaultModel::LinearOverflow { kappa };
        let factors = model.stall_factors(&sets, Bytes::from_mb(user_mb));
        prop_assert_eq!(factors.len(), sets.len());
        for f in &factors {
            prop_assert!(f.is_finite() && *f >= 0.0);
        }
        // Bigger working set never stalls less.
        for i in 0..sets.len() {
            for j in 0..sets.len() {
                if sets[i] > sets[j] {
                    prop_assert!(factors[i] >= factors[j] - 1e-12);
                }
            }
        }
    }

    /// Migration cost is monotone in image size and bounded below by the
    /// fixed remote-submission cost.
    #[test]
    fn migration_cost_is_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let net = vr_cluster::network::NetworkParams::ethernet_10mbps();
        let ca = net.migration_cost(Bytes::new(a));
        let cb = net.migration_cost(Bytes::new(b));
        prop_assert!(ca >= net.remote_submit_cost);
        if a <= b {
            prop_assert!(ca <= cb);
        }
    }
}

// ---- ordered load-index equivalence -----------------------------------
//
// The O(log n) placement/reservation indices must be *observationally
// equivalent* to the linear scans they replaced: on any snapshot, every
// ordered query returns exactly the entry a filtered min/max scan over the
// same snapshot returns, and the incremental `refresh_targets` lands on
// exactly the state a from-scratch `refresh` produces. Random worlds with
// admission, completion-by-advance, crash/restart churn, and reservations
// drive both claims.

use std::cmp::Reverse;
use vr_cluster::loadinfo::{LoadIndex, NodeLoad};

#[derive(Debug, Clone)]
enum IndexOp {
    Admit {
        node: u32,
        ws_mb: u64,
        work_secs: f64,
    },
    RemoveFirst {
        node: u32,
    },
    Advance {
        secs: u64,
    },
    Crash {
        node: u32,
    },
    Restart {
        node: u32,
    },
    Reserve {
        node: u32,
        on: bool,
    },
}

fn index_op_strategy() -> impl Strategy<Value = IndexOp> {
    (
        0u32..13,
        any::<u32>(),
        4u64..260,
        5.0f64..200.0,
        1u64..90,
        any::<bool>(),
    )
        .prop_map(|(kind, node, ws_mb, work_secs, secs, on)| match kind {
            0..=4 => IndexOp::Admit {
                node,
                ws_mb,
                work_secs,
            },
            5 | 6 => IndexOp::RemoveFirst { node },
            7..=9 => IndexOp::Advance { secs },
            10 => IndexOp::Crash { node },
            11 => IndexOp::Restart { node },
            _ => IndexOp::Reserve { node, on },
        })
}

/// The documented linear-scan equivalent of `best_destination_for` /
/// `best_destination_where`.
fn linear_best<'a>(
    entries: impl Iterator<Item = &'a NodeLoad>,
    demand: Bytes,
    exclude: Option<NodeId>,
    accept: impl Fn(&NodeLoad) -> bool,
) -> Option<&'a NodeLoad> {
    entries
        .filter(|e| {
            Some(e.node) != exclude
                && e.accepts_submissions()
                && e.idle_memory >= demand
                && accept(e)
        })
        .min_by_key(|e| (e.active_jobs, Reverse(e.idle_memory), e.node))
}

/// The documented linear-scan equivalent of `reservation_candidate`.
fn linear_reservation<'a>(entries: impl Iterator<Item = &'a NodeLoad>) -> Option<&'a NodeLoad> {
    entries
        .filter(|e| e.up && !e.reserved)
        .max_by_key(|e| (e.idle_memory, Reverse(e.active_jobs), Reverse(e.node)))
}

fn assert_queries_match(index: &LoadIndex, n_nodes: usize) {
    let demands = [
        Bytes::ZERO,
        Bytes::from_mb(16),
        Bytes::from_mb(100),
        Bytes::from_mb(512),
    ];
    let excludes = [None, Some(NodeId(0)), Some(NodeId(n_nodes as u32 / 2))];
    for demand in demands {
        for exclude in excludes {
            let fast = index.best_destination_for(demand, exclude).map(|e| e.node);
            let slow = linear_best(index.iter(), demand, exclude, |_| true).map(|e| e.node);
            assert_eq!(fast, slow, "best_destination_for d={demand} x={exclude:?}");
            // A caller-side predicate the index knows nothing about, like
            // the commit-aware capacity check.
            let pred = |e: &NodeLoad| e.overflow.is_zero() && e.active_jobs.is_multiple_of(2);
            let fast = index
                .best_destination_where(demand, exclude, pred)
                .map(|e| e.node);
            let slow = linear_best(index.iter(), demand, exclude, pred).map(|e| e.node);
            assert_eq!(
                fast, slow,
                "best_destination_where d={demand} x={exclude:?}"
            );
        }
    }
    let fast = index.reservation_candidate().map(|e| e.node);
    let slow = linear_reservation(index.iter()).map(|e| e.node);
    assert_eq!(fast, slow, "reservation_candidate");
    // The full placement order is the sorted filtered scan.
    let fast: Vec<NodeId> = index.placement_order().map(|e| e.node).collect();
    let mut slow: Vec<&NodeLoad> = index.iter().filter(|e| e.accepts_submissions()).collect();
    slow.sort_by_key(|e| (e.active_jobs, Reverse(e.idle_memory), e.node));
    assert_eq!(fast, slow.iter().map(|e| e.node).collect::<Vec<_>>());
    // Cached sums match a recount.
    assert_eq!(
        index.accumulated_idle_memory(),
        index.iter().map(|e| e.idle_memory).sum::<Bytes>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..Default::default() })]

    /// On a randomly churned world of arbitrary size, every ordered query
    /// equals its linear-scan specification, and incremental
    /// `refresh_targets` over exactly the touched nodes is
    /// indistinguishable from a full rebuild.
    #[test]
    fn ordered_index_is_equivalent_to_linear_scans(
        n_nodes in 1usize..80,
        ops in prop::collection::vec(index_op_strategy(), 1..60),
        kappa in 0.5f64..6.0,
    ) {
        let mut world: Vec<Workstation> = (0..n_nodes)
            .map(|i| {
                let user = [96u64, 128, 256, 384][i % 4];
                Workstation::new(
                    NodeId(i as u32),
                    NodeParams {
                        cpu: CpuParams::with_slots(4),
                        memory: MemoryParams::with_capacity(
                            Bytes::from_mb(user),
                            Bytes::from_mb(user),
                        ),
                        fault_model: FaultModel::LinearOverflow { kappa },
                        protection: Default::default(),
                    },
                )
            })
            .collect();
        let mut now = SimTime::ZERO;
        let mut full = LoadIndex::new();
        let mut incremental = LoadIndex::new();
        full.refresh(world.iter(), now);
        incremental.refresh(world.iter(), now);
        let mut next_job = 1_000u64;
        for op in ops {
            let mut touched: Vec<NodeId> = Vec::new();
            match op {
                IndexOp::Admit { node, ws_mb, work_secs } => {
                    let i = node as usize % world.len();
                    let job = build_job(next_job, &JobDesc { ws_mb, work_secs, ramp: false });
                    next_job += 1;
                    // try_admit advances the node even on rejection, so the
                    // node is touched either way.
                    let _ = world[i].try_admit(job, now);
                    touched.push(NodeId(i as u32));
                }
                IndexOp::RemoveFirst { node } => {
                    let i = node as usize % world.len();
                    if let Some(id) = world[i].jobs().first().map(|j| j.id()) {
                        world[i].remove_job(id, now);
                    }
                    touched.push(NodeId(i as u32));
                }
                IndexOp::Advance { secs } => {
                    now += SimSpan::from_secs(secs);
                    for w in world.iter_mut() {
                        w.advance_to(now);
                        touched.push(w.id());
                    }
                }
                IndexOp::Crash { node } => {
                    let i = node as usize % world.len();
                    if world[i].is_up() {
                        world[i].crash(now);
                    }
                    touched.push(NodeId(i as u32));
                }
                IndexOp::Restart { node } => {
                    let i = node as usize % world.len();
                    if !world[i].is_up() {
                        world[i].restart(now);
                    }
                    touched.push(NodeId(i as u32));
                }
                IndexOp::Reserve { node, on } => {
                    let i = node as usize % world.len();
                    world[i].set_reserved(on);
                    touched.push(NodeId(i as u32));
                }
            }
            full.refresh(world.iter(), now);
            incremental.refresh_targets(&world, touched.iter().copied(), now);
            prop_assert_eq!(&full, &incremental, "incremental refresh diverged from rebuild");
            assert_queries_match(&incremental, n_nodes);
        }
    }
}
