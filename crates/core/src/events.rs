//! The scheduler event log.
//!
//! Every scheduling decision of a run is recorded as a
//! [`SchedulerEvent`] — submissions, placements, blocks, migrations,
//! suspensions, and the reservation lifecycle — so post-hoc analysis (and
//! `vrecon run --log`) can reconstruct exactly how the cluster reacted to
//! the workload. The log is append-only and time-ordered.

use std::fmt;

use serde::{Deserialize, Serialize};
use vr_cluster::job::JobId;
use vr_cluster::node::NodeId;
use vr_simcore::time::SimTime;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerEventKind {
    /// A job arrived at the cluster (its home workstation attached).
    Submitted,
    /// A job was admitted to a workstation (locally or after transit).
    Placed,
    /// A job entered the cluster pending queue.
    Blocked,
    /// A remote submission or migration left for its destination.
    TransitStarted,
    /// The blocking problem was detected at a workstation.
    BlockingDetected,
    /// A preemptive (overload) migration began (node = destination).
    MigrationStarted,
    /// A job left its workstation for a migration or special service
    /// (node = source) — the departure side of
    /// [`MigrationStarted`](SchedulerEventKind::MigrationStarted) /
    /// [`SpecialServiceStarted`](SchedulerEventKind::SpecialServiceStarted),
    /// recorded so per-node occupancy can be reconstructed from the log.
    MigratedOut,
    /// A job was migrated into a reserved workstation for special service.
    SpecialServiceStarted,
    /// A job was suspended (swapped out) by the Suspend-Largest strawman.
    Suspended,
    /// A suspended job was resumed.
    Resumed,
    /// A reserving period began on a workstation.
    ReservationBegan,
    /// A reservation was released (service complete, unused, or timeout).
    ReservationReleased,
    /// A job completed.
    Completed,
    /// A workstation crashed (fault injection); resident jobs drain back to
    /// the pending queue.
    NodeCrashed,
    /// A crashed workstation came back up.
    NodeRestarted,
    /// An in-flight migration failed in transit (fault injection).
    MigrationFailed,
    /// A job was re-queued by fault recovery (crash drain or abandoned
    /// migration).
    Requeued,
    /// A malleable job's slot width was changed (grown or shrunk) in place.
    JobResized,
}

impl SchedulerEventKind {
    /// The stable string token for this kind — the `Display` form, the
    /// JSON encoding, and the trace-record `kind`, all from one table.
    pub fn token(self) -> &'static str {
        match self {
            SchedulerEventKind::Submitted => "submitted",
            SchedulerEventKind::Placed => "placed",
            SchedulerEventKind::Blocked => "blocked",
            SchedulerEventKind::TransitStarted => "transit-started",
            SchedulerEventKind::BlockingDetected => "blocking-detected",
            SchedulerEventKind::MigrationStarted => "migration-started",
            SchedulerEventKind::MigratedOut => "migrated-out",
            SchedulerEventKind::SpecialServiceStarted => "special-service-started",
            SchedulerEventKind::Suspended => "suspended",
            SchedulerEventKind::Resumed => "resumed",
            SchedulerEventKind::ReservationBegan => "reservation-began",
            SchedulerEventKind::ReservationReleased => "reservation-released",
            SchedulerEventKind::Completed => "completed",
            SchedulerEventKind::NodeCrashed => "node-crashed",
            SchedulerEventKind::NodeRestarted => "node-restarted",
            SchedulerEventKind::MigrationFailed => "migration-failed",
            SchedulerEventKind::Requeued => "requeued",
            SchedulerEventKind::JobResized => "job-resized",
        }
    }
}

impl fmt::Display for SchedulerEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One entry of the scheduler event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: SchedulerEventKind,
    /// The job involved, if any.
    pub job: Option<JobId>,
    /// The workstation involved, if any.
    pub node: Option<NodeId>,
}

impl fmt::Display for SchedulerEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>12.3}s  {:<24}",
            self.time.as_secs_f64(),
            self.kind.to_string()
        )?;
        if let Some(job) = self.job {
            write!(f, " {job}")?;
        }
        if let Some(node) = self.node {
            write!(f, " @ {node}")?;
        }
        Ok(())
    }
}

/// An append-only, time-ordered scheduler event log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: Vec<SchedulerEvent>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends an event.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `time` precedes the last entry.
    pub fn record(
        &mut self,
        time: SimTime,
        kind: SchedulerEventKind,
        job: Option<JobId>,
        node: Option<NodeId>,
    ) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time <= time),
            "event log must be time-ordered"
        );
        self.entries.push(SchedulerEvent {
            time,
            kind,
            job,
            node,
        });
    }

    /// All entries, in order.
    pub fn entries(&self) -> &[SchedulerEvent] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries concerning one job, in order.
    pub fn for_job(&self, job: JobId) -> impl Iterator<Item = &SchedulerEvent> {
        self.entries.iter().filter(move |e| e.job == Some(job))
    }

    /// Entries of one kind, in order.
    pub fn of_kind(&self, kind: SchedulerEventKind) -> impl Iterator<Item = &SchedulerEvent> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_and_filters() {
        let mut log = EventLog::new();
        log.record(
            SimTime::from_secs(1),
            SchedulerEventKind::Submitted,
            Some(JobId(1)),
            Some(NodeId(3)),
        );
        log.record(
            SimTime::from_secs(1),
            SchedulerEventKind::Placed,
            Some(JobId(1)),
            Some(NodeId(3)),
        );
        log.record(
            SimTime::from_secs(5),
            SchedulerEventKind::ReservationBegan,
            None,
            Some(NodeId(7)),
        );
        log.record(
            SimTime::from_secs(9),
            SchedulerEventKind::Completed,
            Some(JobId(1)),
            Some(NodeId(3)),
        );
        assert_eq!(log.len(), 4);
        assert_eq!(log.for_job(JobId(1)).count(), 3);
        assert_eq!(log.of_kind(SchedulerEventKind::ReservationBegan).count(), 1);
        assert_eq!(log.for_job(JobId(99)).count(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_panics_in_debug() {
        let mut log = EventLog::new();
        log.record(
            SimTime::from_secs(5),
            SchedulerEventKind::Submitted,
            None,
            None,
        );
        log.record(
            SimTime::from_secs(1),
            SchedulerEventKind::Completed,
            None,
            None,
        );
    }

    #[test]
    fn display_is_informative() {
        let e = SchedulerEvent {
            time: SimTime::from_millis(1500),
            kind: SchedulerEventKind::MigrationStarted,
            job: Some(JobId(4)),
            node: Some(NodeId(2)),
        };
        let s = e.to_string();
        assert!(s.contains("1.500"), "{s}");
        assert!(s.contains("migration-started"), "{s}");
        assert!(s.contains("job#4"), "{s}");
        assert!(s.contains("node#2"), "{s}");
    }
}
