pub fn user() -> Option<String> {
    std::env::var("USER").ok()
}
