//! Quickstart: run one paper trace under both policies and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vrecon_repro::prelude::*;

fn main() {
    // Regenerate the paper's App-Trace-2 ("moderate job submissions",
    // 448 jobs over ~3,589 s) for the 32-node cluster 2.
    let trace = app_trace(TraceLevel::Moderate, &mut SimRng::seed_from(42));
    println!(
        "trace {}: {} jobs, last submission at {}",
        trace.name,
        trace.len(),
        trace.last_submission()
    );

    // Assess whether the paper's §5 model expects virtual reconfiguration
    // to help on this workload.
    let cluster = ClusterParams::cluster2();
    let applicability = Applicability::assess(&trace, &cluster);
    println!(
        "offered load {:.2}, memory-demand CV {:.2}, large-job fraction {:.2} -> expects gain: {}",
        applicability.offered_load,
        applicability.memory_demand_cv,
        applicability.large_job_fraction,
        applicability.expects_gain()
    );

    // Replay under dynamic load sharing alone, then with adaptive virtual
    // reconfiguration.
    let baseline =
        Simulation::new(SimConfig::new(cluster.clone(), PolicyKind::GLoadSharing)).run(&trace);
    let vrecon = Simulation::new(SimConfig::new(cluster, PolicyKind::VReconfiguration)).run(&trace);

    println!("\n{}", baseline.brief());
    println!("{}", vrecon.brief());

    let slowdown = MetricComparison::new(baseline.avg_slowdown(), vrecon.avg_slowdown());
    let queue = MetricComparison::new(baseline.total_queue_secs(), vrecon.total_queue_secs());
    println!(
        "\nV-Reconfiguration reduced the average slowdown by {:.1}% and the \
         total queuing time by {:.1}%",
        slowdown.reduction(),
        queue.reduction()
    );
    println!(
        "reconfigurations: {} reservations started, {} large jobs given \
         dedicated service, {} released unused (adaptive early exit)",
        vrecon.reservations.started,
        vrecon.reservations.jobs_served,
        vrecon.reservations.released_unused
    );
}
